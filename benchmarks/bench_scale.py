"""Machine-readable scale-layer benchmark harness.

Emits two JSON documents that seed the perf trajectory:

- ``BENCH_ctmc.json`` — a state-count sweep over the recovery STG
  comparing the dense and sparse solver backends (steady state,
  uniformization transient, expected hitting times), with per-size
  speedups and the max dense-vs-sparse discrepancy as a built-in
  correctness guard;
- ``BENCH_sim.json`` — a replication-count sweep of the Gillespie
  batch runner comparing 1 worker with K workers, with the pooled
  loss-probability estimate per cell.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --out-dir benchmarks/results

The ``--quick`` mode shrinks sweeps to seconds for the CI smoke job;
the full sweep is what the committed ``BENCH_*.json`` files at the repo
root were generated with.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.markov.passage import expected_hitting_times
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG
from repro.markov.transient import transient_probabilities
from repro.sim.batch import default_workers, run_gillespie_batch

#: Arrival rate used throughout: high enough that loss states carry
#: probability mass and the solves are not trivially concentrated.
ARRIVAL_RATE = 2.0

FULL_CTMC_BUFFERS = [10, 15, 25, 35, 45]
QUICK_CTMC_BUFFERS = [3, 6]

FULL_SIM_REPLICATIONS = [8, 32]
QUICK_SIM_REPLICATIONS = [2, 4]

FULL_SIM_HORIZON = 400.0
QUICK_SIM_HORIZON = 30.0


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_ctmc(buffers: List[int], repeats: int) -> Dict[str, object]:
    """Dense-vs-sparse sweep over STG sizes."""
    results = []
    for buffer_size in buffers:
        stg = RecoverySTG.paper_default(
            arrival_rate=ARRIVAL_RATE, buffer_size=buffer_size
        )
        chain = stg.ctmc()
        pi0 = stg.initial_distribution()
        targets = stg.loss_states()

        pi_dense = steady_state(chain, backend="dense")
        pi_sparse = steady_state(chain, backend="sparse")
        steady_diff = float(np.abs(pi_dense - pi_sparse).max())

        tr_dense = transient_probabilities(chain, pi0, 2.0,
                                           backend="dense")
        tr_sparse = transient_probabilities(chain, pi0, 2.0,
                                            backend="sparse")
        transient_diff = float(np.abs(tr_dense - tr_sparse).max())

        h_dense = expected_hitting_times(chain, targets, backend="dense")
        h_sparse = expected_hitting_times(chain, targets,
                                          backend="sparse")
        finite = np.isfinite(h_dense)
        passage_diff = float(
            np.abs(h_dense[finite] - h_sparse[finite]).max()
        )

        entry = {
            "buffer": buffer_size,
            "states": chain.n_states,
            "transitions": chain.nnz,
            "max_abs_diff": {
                "steady_state": steady_diff,
                "transient": transient_diff,
                "passage": passage_diff,
            },
        }
        for op, dense_fn, sparse_fn in (
            ("steady_state",
             lambda: steady_state(chain, backend="dense"),
             lambda: steady_state(chain, backend="sparse")),
            ("transient",
             lambda: transient_probabilities(chain, pi0, 2.0,
                                             backend="dense"),
             lambda: transient_probabilities(chain, pi0, 2.0,
                                             backend="sparse")),
            ("passage",
             lambda: expected_hitting_times(chain, targets,
                                            backend="dense"),
             lambda: expected_hitting_times(chain, targets,
                                            backend="sparse")),
        ):
            dense_s = _best_of(dense_fn, repeats)
            sparse_s = _best_of(sparse_fn, repeats)
            entry[op] = {
                "dense_s": dense_s,
                "sparse_s": sparse_s,
                "speedup": dense_s / sparse_s if sparse_s > 0 else None,
            }
        results.append(entry)
        print(f"  buffer {buffer_size:>3} ({chain.n_states} states): "
              f"steady {entry['steady_state']['speedup']:.1f}x, "
              f"transient {entry['transient']['speedup']:.1f}x, "
              f"passage {entry['passage']['speedup']:.1f}x, "
              f"max diff {max(entry['max_abs_diff'].values()):.2e}")
    largest = results[-1]
    return {
        "benchmark": "ctmc_backends",
        "arrival_rate": ARRIVAL_RATE,
        "repeats": repeats,
        "results": results,
        "largest_stg": {
            "buffer": largest["buffer"],
            "states": largest["states"],
            "steady_state_speedup": largest["steady_state"]["speedup"],
        },
    }


def bench_sim(
    replication_counts: List[int],
    horizon: float,
    workers: int,
) -> Dict[str, object]:
    """1-vs-K-workers sweep over replication counts.

    Each batch rides a health monitor; besides the trajectory-identity
    check, the merged conformance verdict must be bit-identical between
    the serial and the parallel run — the worker-count invariance the
    deterministic merge promises.
    """
    from repro.obs.health import ModelPrediction

    stg = RecoverySTG.paper_default(
        arrival_rate=ARRIVAL_RATE, buffer_size=8
    )
    prediction = ModelPrediction.from_stg(stg)
    results = []
    for n in replication_counts:
        serial = run_gillespie_batch(
            stg, horizon=horizon, replications=n, workers=1, seed=0,
            health=prediction,
        )
        parallel = run_gillespie_batch(
            stg, horizon=horizon, replications=n, workers=workers,
            seed=0, health=prediction,
        )
        identical = (
            serial.seeds == parallel.seeds
            and all(
                a.occupancy == b.occupancy and a.jumps == b.jumps
                for a, b in zip(serial.results, parallel.results)
            )
        )
        conformance = parallel.conformance
        conformance_identical = serial.conformance == conformance
        entry = {
            "replications": n,
            "horizon": horizon,
            "workers": workers,
            "serial_s": serial.elapsed,
            "parallel_s": parallel.elapsed,
            "speedup": (serial.elapsed / parallel.elapsed
                        if parallel.elapsed > 0 else None),
            "results_identical": identical,
            "conformance_identical": conformance_identical,
            "conformance_verdict": conformance.verdict.value,
            "drift_count": conformance.drift_count,
            "loss_time_fraction": parallel.loss_time_fraction,
            "loss_time_stderr": parallel.loss_time_stderr,
            "total_jumps": parallel.jumps,
        }
        results.append(entry)
        print(f"  {n:>4} replications: serial {serial.elapsed:.2f}s, "
              f"{workers} workers {parallel.elapsed:.2f}s "
              f"({entry['speedup']:.1f}x), identical={identical}, "
              f"conformance {conformance.verdict.value} "
              f"(identical={conformance_identical})")
    return {
        "benchmark": "sim_batch",
        "arrival_rate": ARRIVAL_RATE,
        "buffer": 8,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scale-layer benchmarks (JSON output)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweeps for CI smoke runs")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker count for the sim sweep "
                             "(default: min(cpu_count, 8))")
    args = parser.parse_args(argv)

    # The sim sweep compares 1-vs-K workers; K must be at least 2 for
    # the pool path to run at all, even on a single-core box.
    workers = args.workers if args.workers else max(2, default_workers())
    if args.quick:
        buffers, repeats = QUICK_CTMC_BUFFERS, 1
        replication_counts = QUICK_SIM_REPLICATIONS
        horizon = QUICK_SIM_HORIZON
    else:
        buffers, repeats = FULL_CTMC_BUFFERS, 3
        replication_counts = FULL_SIM_REPLICATIONS
        horizon = FULL_SIM_HORIZON

    meta = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
    }

    print("CTMC backend sweep:")
    ctmc_doc = bench_ctmc(buffers, repeats)
    ctmc_doc["meta"] = meta
    print("Simulation batch sweep:")
    sim_doc = bench_sim(replication_counts, horizon, workers)
    sim_doc["meta"] = meta

    args.out_dir.mkdir(parents=True, exist_ok=True)
    for name, doc in (("BENCH_ctmc.json", ctmc_doc),
                      ("BENCH_sim.json", sim_doc)):
        path = args.out_dir / name
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
