"""Extension E — bursty arrivals vs the Poisson assumption.

Section IV-D acknowledges that real intrusions arrive in bursts but
adopts Poisson arrivals for tractability; Section VI compensates by
advising designers to size the alert buffer "according to the peak rate
the system wants to handle".  This bench quantifies the gap: the same
recovery pipeline is driven by a Poisson stream and by MMPP streams of
*identical mean rate* but increasing peak-to-mean ratio, across buffer
sizes.

Expected shape: at equal mean load, burstier streams lose strictly more
alerts.  Moreover, with the realistic ``1/k`` degradation the Figure
4(b) effect compounds the problem: *larger buffers do not reduce bursty
loss* — a burst fills the queue, processing degrades, and the loss
episode lasts longer.  Both observations support the Section VI
guideline to size for the peak rate (and to improve algorithms) rather
than to grow buffers for the mean rate.
"""

from __future__ import annotations

import random

import pytest

from repro.markov.stg import RecoverySTG
from repro.report.series import Series, format_series
from repro.sim.bursty import BurstModel, BurstySimulator
from repro.sim.ctmc_sim import GillespieSimulator

MEAN_RATE = 1.0
PEAK_TO_MEAN = [3.0, 8.0]
BUFFERS = [4, 8, 12]
HORIZON = 40_000.0
SEEDS = 3


def compute_bursty_comparison():
    series = {"poisson": Series("poisson")}
    for ptm in PEAK_TO_MEAN:
        series[ptm] = Series(f"bursty peak/mean={ptm:g}")
    for buffer in BUFFERS:
        stg = RecoverySTG.paper_default(
            arrival_rate=MEAN_RATE, buffer_size=buffer
        )
        loss = 0.0
        for seed in range(SEEDS):
            sim = GillespieSimulator(stg, random.Random(seed))
            loss += sim.run(HORIZON).loss_time_fraction
        series["poisson"].add(buffer, loss / SEEDS)
        for ptm in PEAK_TO_MEAN:
            model = BurstModel.with_mean(
                MEAN_RATE, peak_to_mean=ptm, mean_burst_length=4.0
            )
            loss = 0.0
            for seed in range(SEEDS):
                sim = BurstySimulator(stg, model, random.Random(seed))
                loss += sim.run(HORIZON).loss_time_fraction
            series[ptm].add(buffer, loss / SEEDS)
    return series


def test_bursty_arrivals(save_table, benchmark):
    series = benchmark.pedantic(
        compute_bursty_comparison, rounds=1, iterations=1
    )

    for buffer in BUFFERS:
        poisson = series["poisson"].y_at(buffer)
        for ptm in PEAK_TO_MEAN:
            assert series[ptm].y_at(buffer) > poisson, (buffer, ptm)
        # Burstier ⇒ lossier at equal mean rate.
        assert series[8.0].y_at(buffer) >= series[3.0].y_at(buffer)

    # Growing the buffer does NOT cure bursty loss under 1/k
    # degradation (the Figure 4(b) effect): the gap to Poisson stays
    # wide at the largest buffer.
    for ptm in PEAK_TO_MEAN:
        assert series[ptm].y_at(BUFFERS[-1]) >= series[ptm].y_at(
            BUFFERS[0]
        ) * 0.5  # no order-of-magnitude improvement from buffers
    assert series[8.0].y_at(BUFFERS[-1]) > 10 * max(
        series["poisson"].y_at(BUFFERS[-1]), 1e-6
    )

    save_table(
        "bursty_arrivals",
        format_series(
            "Extension E: loss-time fraction, Poisson vs bursty "
            f"arrivals (mean rate {MEAN_RATE:g}, horizon {HORIZON:g})",
            list(series.values()),
            x_label="buffer",
        ),
    )
