"""Extension I — repair cost as a function of detection latency.

The paper argues its recovery "does not depend on timely reporting from
the IDS" — correctness survives late detection (Section IV-D).  But
*cost* does not: the longer the IDS (or administrator) takes, the more
legitimate work reads the corrupted data and must be repaired.  This
bench quantifies that: one attack commits, then ``d`` further workflows
run before the heal; half of them touch the contaminated object.

Asserted shapes:

- dependency-based repair work grows with the delay (more victims);
- …but stays well below checkpoint rollback, which discards *all*
  post-attack work regardless of dependence;
- the untouched half of the late workflows is preserved at every delay
  (the point of dependency tracking);
- correctness is delay-independent: every heal audits strictly correct.
"""

from __future__ import annotations

import pytest

from repro.core.axioms import audit_strict_correctness
from repro.core.healer import Healer
from repro.ids.attacks import AttackCampaign
from repro.report.tables import Table
from repro.sim.baselines import (
    checkpoint_rollback_cost,
    dependency_recovery_cost,
)
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import workflow

DELAYS = [0, 2, 4, 8, 16]


def producer_spec():
    return (
        workflow("producer")
        .task("publish", reads=["seed"], writes=["feed"],
              compute=lambda d: {"feed": d["seed"] * 3})
        .build()
    )


def consumer_spec(i: int, infected: bool):
    """Even consumers read the contaminated feed; odd ones don't."""
    reads = ["feed"] if infected else [f"private_{i}"]
    return (
        workflow(f"c{i}")
        .task("work", reads=reads, writes=[f"out_{i}"],
              compute=lambda d: {
                  f"out_{i}": sum(int(v) for v in d.values()) + i
              })
        .build()
    )


def run_with_delay(delay: int):
    initial = {"seed": 7, "feed": 0}
    for i in range(max(DELAYS)):
        initial[f"private_{i}"] = i + 1
        initial[f"out_{i}"] = 0
    store, log = DataStore(initial), SystemLog()
    engine = Engine(store, log)
    campaign = AttackCampaign().corrupt_task("publish", feed=666_666)
    engine.run_to_completion(
        engine.new_run(producer_spec(), "producer"), tamper=campaign
    )
    for i in range(delay):
        engine.run_to_completion(
            engine.new_run(consumer_spec(i, infected=(i % 2 == 0)),
                           f"c{i}")
        )
    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal(campaign.malicious_uids)
    audit = audit_strict_correctness(
        engine.specs_by_instance, initial, report.final_history,
        store.snapshot(),
    )
    dep = dependency_recovery_cost(report)
    ckpt = checkpoint_rollback_cost(log, campaign.malicious_uids)
    return report, audit, dep, ckpt


def test_detection_delay_cost(save_table, benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (d, *run_with_delay(d)) for d in DELAYS
        ],
        rounds=1, iterations=1,
    )

    table = Table(
        "Extension I: repair cost vs detection delay "
        "(1 attack; half the late workflows touch the corrupted feed)",
        ["delay (workflows)", "dep undone", "dep preserved",
         "checkpoint undone", "checkpoint preserved", "audit"],
    )
    undone_counts = []
    for delay, report, audit, dep, ckpt in rows:
        assert audit.ok, audit.problems
        # Exactly the infected half (plus the attack) is repaired.
        expected_victims = 1 + (delay + 1) // 2
        assert dep.undone == expected_victims
        # The clean half survives untouched.
        assert dep.preserved == delay - (delay + 1) // 2
        # Checkpoint discards everything after the attack.
        assert ckpt.undone == 1 + delay
        assert dep.undone <= ckpt.undone
        undone_counts.append(dep.undone)
        table.add_row(delay, dep.undone, dep.preserved, ckpt.undone,
                      ckpt.preserved, "ok")
    # Cost grows with delay, but at half the checkpoint's slope.
    assert undone_counts == sorted(undone_counts)
    assert undone_counts[-1] < 1 + DELAYS[-1]
    save_table("detection_delay", table.render())
