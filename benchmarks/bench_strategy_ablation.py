"""Extension D — ablation of the Section III-D recovery strategies.

Strict correctness buys safety by *delaying normal tasks* whenever
damage analysis or repair is in flight; the multi-version strategy buys
concurrency with *storage*; full concurrency forfeits the termination
guarantee.  This bench quantifies the trade on both axes:

- **normal-task blocking** (analytic): under strict correctness, the
  fraction of time normal tasks are inadmissible equals 1 − P(NORMAL)
  of the steady state, swept over attack rates; risk strategies never
  block.
- **storage overhead** (empirical): versions retained by a
  multi-version store serving pinned snapshot reads for the same
  workload, relative to the live objects of a single-copy store.
"""

from __future__ import annotations

import random

import pytest

from repro.core.strategies import RecoveryStrategy
from repro.markov.metrics import category_probabilities
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.report.tables import Table
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator
from repro.workflow.data import MultiVersionDataStore

LAMBDAS = [0.25, 0.5, 1.0, 2.0]


def blocking_analysis():
    """1 − P(NORMAL): the strict strategy's normal-task blocking."""
    blocked = {}
    for lam in LAMBDAS:
        stg = RecoverySTG.paper_default(arrival_rate=lam)
        pi = steady_state(stg.ctmc())
        blocked[lam] = 1.0 - category_probabilities(stg, pi)[
            StateCategory.NORMAL
        ]
    return blocked


def storage_analysis(seed=0):
    """Version-storage cost of the multi-version strategy."""
    gen = WorkloadGenerator(
        WorkloadConfig(n_workflows=3, tasks_per_workflow=12,
                       branch_probability=0.4),
        random.Random(seed),
    )
    workload = gen.generate()
    result = run_pipeline(workload, None, heal=False, seed=seed)

    # Replay the same write history into a multi-version store, pinning
    # every reader to its snapshot (what the strategy must retain).
    mv = MultiVersionDataStore(workload.initial_data)
    for record in result.log.normal_records():
        for name in record.reads:
            mv.pin(record.uid, name)
        for name, _ver in sorted(record.writes.items()):
            mv.write(name, result.store.version(
                name, record.writes[name]).value, writer=record.uid)
    single_copy_objects = len(list(result.store.names()))
    return single_copy_objects, mv.storage_cost()


def run_ablation():
    return blocking_analysis(), storage_analysis()


def test_strategy_ablation(save_table, benchmark):
    blocked, (objects, versions) = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    # Strict blocking grows with the attack rate and hits ~100 % in
    # overload; risk strategies never block.
    vals = [blocked[lam] for lam in LAMBDAS]
    assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))
    assert blocked[0.25] < 0.1
    assert blocked[2.0] > 0.9

    # Multi-version storage strictly exceeds single-copy storage.
    assert versions > objects

    # Termination guarantees per strategy.
    assert RecoveryStrategy.STRICT.recovery_guaranteed_terminating
    assert RecoveryStrategy.RISK_NORMAL_ONLY.recovery_guaranteed_terminating
    assert not RecoveryStrategy.RISK_ALL.recovery_guaranteed_terminating

    table = Table(
        "Extension D: strategy ablation",
        ["strategy", "blocks normal tasks", "storage",
         "recovery terminates", "recovery stays correct"],
    )
    for strategy in RecoveryStrategy:
        if strategy is RecoveryStrategy.STRICT:
            block_desc = "; ".join(
                f"lam={lam}: {blocked[lam]:.0%}" for lam in LAMBDAS
            )
        else:
            block_desc = "never"
        storage = (
            f"{versions} versions vs {objects} objects"
            if strategy is RecoveryStrategy.RISK_NORMAL_ONLY
            else f"{objects} objects"
        )
        table.add_row(
            strategy.value,
            block_desc,
            storage,
            "yes" if strategy.recovery_guaranteed_terminating else "NO",
            "yes" if strategy.recovery_stays_correct else "NO",
        )
    save_table("strategy_ablation", table.render())
