"""Extension A — discrete-event cross-validation of the CTMC.

The paper's evaluation is purely analytic.  Here an exact stochastic
(Gillespie) simulation of the same state process runs for a long
horizon and its empirical occupancies are compared with the analytic
steady state — category by category and on the loss probability —
for a healthy and an overloaded configuration.
"""

from __future__ import annotations

import random

import pytest

from repro.markov.metrics import category_probabilities, loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.report.tables import Table
from repro.sim.ctmc_sim import GillespieSimulator

CONFIGS = [
    ("healthy", dict(arrival_rate=0.8, mu1=15.0, xi1=20.0, buffer_size=6)),
    ("critical", dict(arrival_rate=2.0, mu1=15.0, xi1=20.0, buffer_size=6)),
    ("overloaded", dict(arrival_rate=1.0, mu1=2.0, xi1=3.0, buffer_size=6)),
]
HORIZON = 30_000.0


def cross_validate():
    rows = []
    for name, params in CONFIGS:
        stg = RecoverySTG.paper_default(**params)
        pi = steady_state(stg.ctmc())
        analytic_cats = category_probabilities(stg, pi)
        analytic_loss = loss_probability(stg, pi)
        sim = GillespieSimulator(stg, random.Random(1234))
        result = sim.run(horizon=HORIZON)
        rows.append(
            (name, analytic_cats, analytic_loss, result)
        )
    return rows


def test_simulation_validates_ctmc(save_table, benchmark):
    rows = benchmark.pedantic(cross_validate, rounds=1, iterations=1)

    table = Table(
        f"Extension A: Gillespie simulation vs CTMC (horizon {HORIZON:g})",
        ["config", "metric", "analytic", "simulated", "abs err"],
    )
    for name, cats, loss, result in rows:
        for cat in StateCategory:
            a = cats[cat]
            s = result.category_occupancy.get(cat, 0.0)
            assert abs(a - s) < 0.02, (name, cat, a, s)
            table.add_row(name, f"P({cat.value})", a, s, abs(a - s))
        s_loss = result.loss_time_fraction
        assert abs(loss - s_loss) < 0.02, (name, loss, s_loss)
        table.add_row(name, "loss prob", loss, s_loss, abs(loss - s_loss))
        # The overloaded system must actually drop alerts in simulation.
        if name == "overloaded":
            assert result.arrivals_lost > 0
    save_table("sim_vs_ctmc", table.render())
