"""Figure 5(a)/(b) — steady-state behaviour vs. attack rate λ.

μ₁=15, ξ₁=20, μ_k=μ₁/k, ξ_k=ξ₁/k, buffer size 15; λ sweeps 0..4.

Asserted shapes (the paper's Case 2 remarks):

- λ < 1 ⇒ P(NORMAL) > 0.8, negligible loss, expected queues < 1;
- λ > 1.5 ⇒ loss probability and P(SCAN) rise sharply; performance for
  normal tasks degrades almost completely;
- the recovery-task queue saturates (it is the critical buffer).
"""

from __future__ import annotations

import pytest

from repro.markov.metrics import (
    category_probabilities,
    expected_alerts,
    expected_recovery_units,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.report.series import Series, format_series

LAMBDAS = [0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
MU1, XI1, BUFFER = 15.0, 20.0, 15


def compute_fig5_lambda():
    """Category probabilities, loss and expected queue lengths vs λ."""
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("loss probability"),
        "E[alerts]": Series("E[alerts]"),
        "E[units]": Series("E[recovery units]"),
    }
    for lam in LAMBDAS:
        stg = RecoverySTG.paper_default(
            arrival_rate=lam, mu1=MU1, xi1=XI1, buffer_size=BUFFER
        )
        pi = steady_state(stg.ctmc())
        cats = category_probabilities(stg, pi)
        out["P(NORMAL)"].add(lam, cats[StateCategory.NORMAL])
        out["P(SCAN)"].add(lam, cats[StateCategory.SCAN])
        out["P(RECOVERY)"].add(lam, cats[StateCategory.RECOVERY])
        out["loss"].add(lam, loss_probability(stg, pi))
        out["E[alerts]"].add(lam, expected_alerts(stg, pi))
        out["E[units]"].add(lam, expected_recovery_units(stg, pi))
    return out


@pytest.fixture(scope="module")
def fig5(request):
    return compute_fig5_lambda()


def test_fig5_lambda_reproduction(fig5, save_table, benchmark):
    benchmark.pedantic(compute_fig5_lambda, rounds=1, iterations=1)

    # λ < 1: healthy system.
    for lam in (0.1, 0.25, 0.5, 0.75, 1.0):
        assert fig5["P(NORMAL)"].y_at(lam) > 0.8, lam
        assert fig5["loss"].y_at(lam) < 0.05, lam
        assert fig5["E[alerts]"].y_at(lam) < 1.0
        assert fig5["E[units]"].y_at(lam) < 1.0

    # λ > 1.5: collapse — loss and SCAN probability rise very quickly.
    for lam in (2.0, 3.0, 4.0):
        assert fig5["P(NORMAL)"].y_at(lam) < 0.01, lam
        assert fig5["P(SCAN)"].y_at(lam) > 0.9, lam
        assert fig5["loss"].y_at(lam) > 0.5, lam

    # The recovery queue is the saturating buffer.
    assert fig5["E[units]"].y_at(4.0) > 0.9 * BUFFER

    # Monotone degradation in λ.
    normals = fig5["P(NORMAL)"].ys
    assert all(a >= b - 1e-9 for a, b in zip(normals, normals[1:]))
    losses = fig5["loss"].ys
    assert all(a <= b + 1e-9 for a, b in zip(losses, losses[1:]))

    save_table(
        "fig5_lambda",
        format_series(
            "Figure 5(a,b): steady state vs lambda "
            f"(mu1={MU1}, xi1={XI1}, buffer={BUFFER})",
            list(fig5.values()),
            x_label="lambda",
        ),
    )
