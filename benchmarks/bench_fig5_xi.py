"""Figure 5(e)/(f) — steady-state behaviour vs. the base recovery rate ξ₁.

λ=1, μ₁=15, μ_k=μ₁/k, ξ_k=ξ₁/k, buffer 15; ξ₁ sweeps (0, 20].

Asserted shapes (Case 4 remarks): ξ₁ behaves like μ₁ — large enough
values (≳15) give P(NORMAL) > 0.8 with a cost-effective range beyond
which improvements vanish; a slow scheduler collapses the system.
"""

from __future__ import annotations

import pytest

from repro.markov.metrics import (
    category_probabilities,
    expected_alerts,
    expected_recovery_units,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.report.series import Series, format_series

XIS = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0, 18.0, 20.0]
LAM, MU1, BUFFER = 1.0, 15.0, 15


def compute_fig5_xi():
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("loss probability"),
        "E[alerts]": Series("E[alerts]"),
        "E[units]": Series("E[recovery units]"),
    }
    for xi1 in XIS:
        stg = RecoverySTG.paper_default(
            arrival_rate=LAM, mu1=MU1, xi1=xi1, buffer_size=BUFFER
        )
        pi = steady_state(stg.ctmc())
        cats = category_probabilities(stg, pi)
        out["P(NORMAL)"].add(xi1, cats[StateCategory.NORMAL])
        out["P(SCAN)"].add(xi1, cats[StateCategory.SCAN])
        out["P(RECOVERY)"].add(xi1, cats[StateCategory.RECOVERY])
        out["loss"].add(xi1, loss_probability(stg, pi))
        out["E[alerts]"].add(xi1, expected_alerts(stg, pi))
        out["E[units]"].add(xi1, expected_recovery_units(stg, pi))
    return out


@pytest.fixture(scope="module")
def fig5xi():
    return compute_fig5_xi()


def test_fig5_xi_reproduction(fig5xi, save_table, benchmark):
    benchmark.pedantic(compute_fig5_xi, rounds=1, iterations=1)

    # Large ξ₁: healthy system.  (In our STG instantiation the healthy
    # threshold sits at ξ₁ ≈ 17 rather than the paper's ≈15 — the drain
    # ξ₁/k must beat λ even with a full queue of k=15 units; the shape,
    # a sharp transition followed by diminishing returns, is the same.)
    for xi1 in (18.0, 20.0):
        assert fig5xi["P(NORMAL)"].y_at(xi1) > 0.8, xi1
        assert fig5xi["loss"].y_at(xi1) < 0.05, xi1

    # Slow scheduler: recovery units pile up, loss rises.
    assert fig5xi["P(NORMAL)"].y_at(0.5) < 0.4
    assert fig5xi["E[units]"].y_at(0.5) > 0.5 * BUFFER
    assert fig5xi["loss"].y_at(12.0) > 0.5

    # Diminishing returns past the transition (cost-effective range).
    gain = (
        fig5xi["P(NORMAL)"].y_at(20.0) - fig5xi["P(NORMAL)"].y_at(18.0)
    )
    assert gain < 0.1

    # μ₁ and ξ₁ have similar effects (Case 3 vs Case 4): both exhibit
    # the collapse→healthy transition, agreeing at the sweep's ends.
    from benchmarks.bench_fig5_mu import compute_fig5_mu

    mu_view = compute_fig5_mu()
    assert abs(
        fig5xi["P(NORMAL)"].y_at(20.0) - mu_view["P(NORMAL)"].y_at(20.0)
    ) < 0.15
    assert fig5xi["P(NORMAL)"].y_at(0.5) < 0.2
    assert mu_view["P(NORMAL)"].y_at(0.5) < 0.2

    save_table(
        "fig5_xi",
        format_series(
            f"Figure 5(e,f): steady state vs xi1 (lambda={LAM}, "
            f"mu1={MU1}, buffer={BUFFER})",
            list(fig5xi.values()),
            x_label="xi1",
        ),
    )
