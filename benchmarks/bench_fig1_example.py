"""Figure 1 — the motivating example as a measurable benchmark.

Reproduces the worked example exactly (log ``L1 = t1 t7 t2 t8 t3 t4 t9
t6 t10``, malicious ``t1``), measures the healing time, and prints the
per-task recovery disposition matching Section III's narrative.
"""

from __future__ import annotations

import pytest

from repro.report.tables import Table
from repro.scenarios.figure1 import Figure1Scenario, build_figure1


def heal_figure1():
    scenario = build_figure1(attacked=True)
    scenario.heal_now()
    return scenario


def test_fig1_motivating_example(save_table, benchmark):
    scenario = benchmark.pedantic(heal_figure1, rounds=3, iterations=1)
    report = scenario.heal

    T = Figure1Scenario.task_ids
    assert T(report.undone) == scenario.EXPECTED_UNDONE
    assert T(report.redone) == scenario.EXPECTED_REDONE
    assert T(report.abandoned) == scenario.EXPECTED_ABANDONED
    assert T(report.new_executions) == scenario.EXPECTED_NEW
    assert T(report.kept) == scenario.EXPECTED_KEPT
    assert scenario.audit.ok, scenario.audit.problems

    disposition = {}
    for uid in report.undone:
        disposition[uid] = "undo"
    for uid in report.redone:
        disposition[uid] = disposition.get(uid, "") + "+redo"
    for uid in report.abandoned:
        disposition[uid] = "undo (not redone)"
    for uid in report.new_executions:
        disposition[uid] = "new execution"
    for uid in report.kept:
        disposition[uid] = "kept"

    table = Table(
        "Figure 1: recovery disposition per task instance "
        "(malicious: wf1/t1#1)",
        ["instance", "disposition"],
    )
    for r in scenario.log.normal_records():
        table.add_row(r.uid, disposition.get(r.uid, "?"))
    for uid in report.new_executions:
        table.add_row(uid, "new execution")
    save_table("fig1_example", table.render())
