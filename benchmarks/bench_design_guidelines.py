"""Section VI — the design-guideline procedure, automated.

Sizes recovery systems for several (λ, ε) targets, checks the
procedure's promises (feasible configurations meet ε with the smallest
adequate buffer; hopeless configurations are reported infeasible), and
measures peak resilience at the chosen design points.
"""

from __future__ import annotations

import pytest

from repro.markov.degradation import inverse_k, power_law
from repro.markov.design import design_system, peak_resilience
from repro.markov.stg import RecoverySTG
from repro.report.tables import Table

TARGETS = [
    # (lambda, epsilon, mu1, xi1, alpha)  — alpha: degradation exponent
    (0.5, 1e-3, 15.0, 20.0, 1.0),
    (1.0, 1e-2, 15.0, 20.0, 1.0),
    (1.0, 1e-3, 15.0, 20.0, 0.5),
    (2.0, 1e-2, 15.0, 20.0, 0.5),
    (2.0, 1e-4, 2.0, 3.0, 1.0),     # hopeless: must be infeasible
]


def run_design_procedure():
    rows = []
    for lam, eps, mu1, xi1, alpha in TARGETS:
        result = design_system(
            arrival_rate=lam,
            epsilon=eps,
            scan=power_law(mu1, alpha),
            recovery=power_law(xi1, alpha),
            max_buffer=30,
        )
        if result.feasible:
            stg = RecoverySTG(
                arrival_rate=lam,
                scan=power_law(mu1, alpha),
                recovery=power_law(xi1, alpha),
                recovery_buffer=result.buffer_size,
            )
            resist = peak_resilience(
                stg, epsilon=max(eps, 0.01), horizon=20.0, step=0.5
            )
        else:
            resist = 0.0
        rows.append((lam, eps, mu1, xi1, alpha, result, resist))
    return rows


def test_design_guidelines(save_table, benchmark):
    rows = benchmark.pedantic(run_design_procedure, rounds=1, iterations=1)

    feasible = {i: r[5].feasible for i, r in enumerate(rows)}
    assert feasible[0] and feasible[1] and feasible[2] and feasible[3]
    assert not feasible[4]  # λ=2 with μ₁=2, ξ₁=3 cannot reach ε=1e-4

    for lam, eps, *_rest, result, resist in [
        (r[0], r[1], r[2], r[3], r[4], r[5], r[6]) for r in rows
    ]:
        if result.feasible:
            assert result.achieved_epsilon <= eps
            # Smallest adequate buffer: every smaller size missed ε.
            for n, loss in result.swept.items():
                if n < result.buffer_size:
                    assert loss > eps
            # A well-designed system absorbs its own design rate.
            assert resist >= 10.0

    table = Table(
        "Section VI: design procedure outcomes",
        ["lambda", "epsilon", "mu1", "xi1", "alpha",
         "feasible", "buffer", "achieved eps", "peak resilience"],
    )
    for lam, eps, mu1, xi1, alpha, result, resist in rows:
        table.add_row(
            lam, eps, mu1, xi1, alpha,
            "yes" if result.feasible else "NO",
            result.buffer_size, result.achieved_epsilon, resist,
        )
    save_table("design_guidelines", table.render())
