"""Extension C — empirical degradation of the recovery analyzer.

The CTMC postulates μ_k = f(μ₁, k): alert processing slows as work
queues up, because the analyzer re-checks dependences over the log.
This bench *measures* that on the real analyzer: damage analysis time
as a function of log size, and per-alert analysis time as a function of
how many alerts are batched — the operational justification for the
``1/k``-style families used in Figures 4–6.

Expected shape: super-linear growth of total analysis time with log
size; per-alert cost growing with batch size (so the *rate* μ_k falls).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.analyzer import RecoveryAnalyzer
from repro.report.tables import Table
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

LOG_SIZES = [40, 80, 160, 320]
BATCHES = [1, 2, 4, 8]


def build_attacked_system(n_tasks_total, seed=0):
    per_wf = max(4, n_tasks_total // 4)
    gen = WorkloadGenerator(
        WorkloadConfig(n_workflows=4, tasks_per_workflow=per_wf,
                       branch_probability=0.3),
        random.Random(seed),
    )
    workload = gen.generate()
    campaign = gen.pick_attacks(workload, n_attacks=8)
    result = run_pipeline(workload, campaign, heal=False, seed=seed)
    return result


def measure_scaling():
    rows = []
    for size in LOG_SIZES:
        attacked = build_attacked_system(size)
        analyzer = RecoveryAnalyzer(
            attacked.log, attacked.specs_by_instance
        )
        alerts = list(attacked.malicious_ground_truth) or [
            attacked.log.normal_records()[0].uid
        ]
        t0 = time.perf_counter()
        analyzer.analyze(alerts[:1])
        single = time.perf_counter() - t0
        per_alert = {}
        for batch in BATCHES:
            chosen = (alerts * batch)[:batch]
            t0 = time.perf_counter()
            analyzer.analyze(chosen)
            per_alert[batch] = (time.perf_counter() - t0) / batch
        rows.append(
            (size, len(attacked.log.normal_records()), single, per_alert)
        )
    return rows


def test_analyzer_scaling(save_table, benchmark):
    rows = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)

    table = Table(
        "Extension C: recovery-analyzer cost vs log size and batch size",
        ["target size", "log records", "analyze 1 alert (s)"]
        + [f"per-alert, batch {b} (s)" for b in BATCHES],
    )
    for size, n_records, single, per_alert in rows:
        table.add_row(
            size, n_records, single, *[per_alert[b] for b in BATCHES]
        )

    # Total analysis time grows with the log (the μ-degradation driver):
    singles = [r[2] for r in rows]
    assert singles[-1] > singles[0]
    save_table("analyzer_scaling", table.render())
