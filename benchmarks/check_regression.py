#!/usr/bin/env python
"""Benchmark regression gate.

Compares freshly produced ``BENCH_ctmc.json`` / ``BENCH_sim.json``
(from ``benchmarks/bench_scale.py --out-dir ...``) and, when present,
``BENCH_fleet.json`` (from ``benchmarks/bench_fleet.py``) and
``BENCH_profile.json`` (from ``benchmarks/bench_profile.py``) against
the committed baselines at the repository root and fails (exit 1) when:

- either file is structurally invalid (wrong benchmark name, empty
  results);
- a correctness invariant broke: any CTMC backend disagreement
  (``max_abs_diff``) above ``--max-abs-diff``, any simulation row
  with ``results_identical: false`` (workers=K must reproduce
  workers=1 bit-exactly), any fleet row with
  ``workers_identical: false`` / ``audits_ok: false``, or any profile
  row below its attribution floor / with an unstable structure digest;
- on rows present in *both* files (matched by ``buffer`` for the CTMC
  sweep, ``replications`` for the simulation batch), a speedup fell by
  more than ``--tolerance`` (default 25%) relative to the committed
  value.

Quick CI sweeps use smaller problem sizes than the committed full
sweep, so their rows may not overlap at all — the correctness checks
still run, and the speedup comparison simply has nothing to compare
(reported, not failed: timing comparisons across different machines
are noise anyway).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

#: Operations timed per CTMC row.
CTMC_OPS = ("steady_state", "transient", "passage")


def _load(path: pathlib.Path, expected_benchmark: str) -> dict:
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"FAIL: {path} does not exist")
    except ValueError as exc:
        raise SystemExit(f"FAIL: {path} is not valid JSON: {exc}")
    if doc.get("benchmark") != expected_benchmark:
        raise SystemExit(
            f"FAIL: {path}: benchmark is {doc.get('benchmark')!r}, "
            f"expected {expected_benchmark!r}"
        )
    if not isinstance(doc.get("results"), list) or not doc["results"]:
        raise SystemExit(f"FAIL: {path}: empty or missing results array")
    return doc


def check_ctmc(fresh: dict, baseline: dict, tolerance: float,
               max_abs_diff: float) -> List[str]:
    """Failures found in the CTMC backend sweep."""
    failures: List[str] = []
    for row in fresh["results"]:
        for op, diff in row.get("max_abs_diff", {}).items():
            if diff > max_abs_diff:
                failures.append(
                    f"ctmc buffer={row['buffer']}: dense and sparse "
                    f"backends disagree on {op} "
                    f"(max_abs_diff {diff:g} > {max_abs_diff:g})"
                )
    base_by_buffer: Dict[int, dict] = {
        row["buffer"]: row for row in baseline["results"]
    }
    compared = 0
    for row in fresh["results"]:
        base = base_by_buffer.get(row["buffer"])
        if base is None:
            continue
        for op in CTMC_OPS:
            if op not in row or op not in base:
                continue
            fresh_speedup = row[op].get("speedup")
            base_speedup = base[op].get("speedup")
            if not fresh_speedup or not base_speedup:
                continue
            compared += 1
            if fresh_speedup < base_speedup * (1.0 - tolerance):
                failures.append(
                    f"ctmc buffer={row['buffer']} {op}: speedup "
                    f"regressed {base_speedup:.2f}x -> "
                    f"{fresh_speedup:.2f}x "
                    f"(> {tolerance:.0%} below baseline)"
                )
    print(f"ctmc: {len(fresh['results'])} rows checked, "
          f"{compared} speedups compared against baseline")
    return failures


def check_sim(fresh: dict, baseline: dict, tolerance: float) -> List[str]:
    """Failures found in the simulation batch sweep.

    Rows may carry fields newer than the committed baseline (e.g. the
    health-monitor ``conformance_*`` columns) — unknown keys are
    ignored, and invariants on new keys only apply to rows that have
    them, so a fresh sweep stays comparable to an older baseline.
    """
    failures: List[str] = []
    for row in fresh["results"]:
        if not row.get("results_identical", False):
            failures.append(
                f"sim replications={row['replications']}: parallel "
                "results differ from serial (worker-count invariance "
                "broke)"
            )
        if "conformance_identical" in row \
                and not row["conformance_identical"]:
            failures.append(
                f"sim replications={row['replications']}: merged "
                "conformance verdict differs between serial and "
                "parallel (deterministic merge broke)"
            )
    base_by_reps: Dict[int, dict] = {
        row["replications"]: row for row in baseline["results"]
    }
    compared = 0
    for row in fresh["results"]:
        base = base_by_reps.get(row["replications"])
        if base is None:
            continue
        fresh_speedup = row.get("speedup")
        base_speedup = base.get("speedup")
        if not fresh_speedup or not base_speedup:
            continue
        compared += 1
        if fresh_speedup < base_speedup * (1.0 - tolerance):
            failures.append(
                f"sim replications={row['replications']}: speedup "
                f"regressed {base_speedup:.2f}x -> {fresh_speedup:.2f}x "
                f"(> {tolerance:.0%} below baseline)"
            )
    print(f"sim: {len(fresh['results'])} rows checked, "
          f"{compared} speedups compared against baseline")
    return failures


def check_fleet(fresh: dict, baseline: Optional[dict],
                tolerance: float) -> List[str]:
    """Failures found in the fleet control-plane sweep.

    Correctness invariants (worker-count independence, end-to-end
    strict-correctness audits) always apply.  Throughput comparison
    needs a committed ``BENCH_fleet.json`` baseline with overlapping
    tenant counts; an absent baseline (older checkouts) is tolerated —
    the fleet benchmark is newer than the other two.
    """
    failures: List[str] = []
    for row in fresh["results"]:
        if not row.get("workers_identical", False):
            failures.append(
                f"fleet tenants={row['tenants']}: parallel per-tenant "
                "results differ from serial (worker-count invariance "
                "broke)"
            )
        if not row.get("audits_ok", True):
            failures.append(
                f"fleet tenants={row['tenants']}: a tenant failed its "
                "end-to-end strict-correctness audit"
            )
    compared = 0
    if baseline is not None:
        base_by_tenants: Dict[int, dict] = {
            row["tenants"]: row for row in baseline["results"]
        }
        for row in fresh["results"]:
            base = base_by_tenants.get(row["tenants"])
            if base is None:
                continue
            fresh_thr = row.get("throughput_alerts_per_s")
            base_thr = base.get("throughput_alerts_per_s")
            if not fresh_thr or not base_thr:
                continue
            compared += 1
            if fresh_thr < base_thr * (1.0 - tolerance):
                failures.append(
                    f"fleet tenants={row['tenants']}: throughput "
                    f"regressed {base_thr:.0f} -> {fresh_thr:.0f} "
                    f"alerts/s (> {tolerance:.0%} below baseline)"
                )
    print(f"fleet: {len(fresh['results'])} rows checked, "
          f"{compared} throughputs compared against baseline")
    return failures


def check_profile(fresh: dict, baseline: Optional[dict],
                  attribution_slack: float = 0.05) -> List[str]:
    """Failures found in the profiling-layer benchmark.

    Hard invariants (always): every row with an ``attribution_floor``
    meets it, every row's structure digest was stable across its two
    runs, the fullstack row names per-alert closure recomputation and
    the parallel-batch row names fan-out overhead as measured line
    items.  Baseline comparison (tolerated absent — the profile
    benchmark is the newest of the set) matches rows by scenario with
    identical ``params`` and fails only when attribution dropped more
    than ``attribution_slack`` absolute below the committed value;
    digests are *not* compared across commits (any behavior change
    legitimately moves them) and wall times are machine noise.
    """
    failures: List[str] = []
    by_scenario: Dict[str, dict] = {}
    for row in fresh["results"]:
        by_scenario[row["scenario"]] = row
        floor = row.get("attribution_floor")
        if floor and row.get("attribution", 0.0) < floor:
            failures.append(
                f"profile {row['scenario']}: attribution "
                f"{row.get('attribution', 0.0):.3f} below the "
                f"{floor:.2f} floor (un-instrumented driver time)"
            )
        if not row.get("digest_stable", False):
            failures.append(
                f"profile {row['scenario']}: structure digest differs "
                "between two identical runs (breakdown shape is "
                "nondeterministic)"
            )
    fullstack = by_scenario.get("fullstack")
    if fullstack is None:
        failures.append("profile: no fullstack row")
    elif fullstack.get("line_items", {}).get(
            "closure_recomputations", 0) < 1:
        failures.append(
            "profile fullstack: closure_recomputations line item "
            "missing or zero — the per-alert recomputation cost "
            "(ROADMAP 2b) is no longer measured"
        )
    parallel = by_scenario.get("batch-parallel")
    if parallel is None:
        failures.append("profile: no batch-parallel row")
    elif "fan_out_overhead_s" not in parallel.get("line_items", {}):
        failures.append(
            "profile batch-parallel: fan_out_overhead_s line item "
            "missing — the parallel overhead (ROADMAP 2a) is no "
            "longer measured"
        )
    compared = 0
    if baseline is not None:
        base_by_scenario = {row["scenario"]: row
                            for row in baseline["results"]}
        for scenario, row in by_scenario.items():
            base = base_by_scenario.get(scenario)
            if base is None or base.get("params") != row.get("params"):
                continue
            base_attr = base.get("attribution")
            fresh_attr = row.get("attribution")
            if base_attr is None or fresh_attr is None:
                continue
            compared += 1
            if fresh_attr < base_attr - attribution_slack:
                failures.append(
                    f"profile {scenario}: attribution regressed "
                    f"{base_attr:.3f} -> {fresh_attr:.3f} "
                    f"(> {attribution_slack:.2f} absolute drop)"
                )
    print(f"profile: {len(fresh['results'])} rows checked, "
          f"{compared} attributions compared against baseline")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir", type=pathlib.Path, required=True,
        help="directory holding the freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="directory holding the committed BENCH_*.json "
             "(default: the repository root)")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup drop on comparable rows "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--max-abs-diff", type=float, default=1e-6,
        help="ceiling on dense-vs-sparse CTMC disagreement "
             "(default 1e-6)")
    args = parser.parse_args(argv)

    fresh_ctmc = _load(args.fresh_dir / "BENCH_ctmc.json",
                       "ctmc_backends")
    fresh_sim = _load(args.fresh_dir / "BENCH_sim.json", "sim_batch")
    base_ctmc = _load(args.baseline_dir / "BENCH_ctmc.json",
                      "ctmc_backends")
    base_sim = _load(args.baseline_dir / "BENCH_sim.json", "sim_batch")

    failures = (
        check_ctmc(fresh_ctmc, base_ctmc, args.tolerance,
                   args.max_abs_diff)
        + check_sim(fresh_sim, base_sim, args.tolerance)
    )

    # The fleet sweep is optional on both sides: a fresh run may skip
    # it, and older baselines predate it entirely.
    fresh_fleet_path = args.fresh_dir / "BENCH_fleet.json"
    if fresh_fleet_path.exists():
        fresh_fleet = _load(fresh_fleet_path, "fleet")
        base_fleet_path = args.baseline_dir / "BENCH_fleet.json"
        base_fleet = (_load(base_fleet_path, "fleet")
                      if base_fleet_path.exists() else None)
        failures += check_fleet(fresh_fleet, base_fleet, args.tolerance)
    else:
        print("fleet: no fresh BENCH_fleet.json, skipped")

    # Same for the profiling benchmark, the newest of the set.
    fresh_profile_path = args.fresh_dir / "BENCH_profile.json"
    if fresh_profile_path.exists():
        fresh_profile = _load(fresh_profile_path, "profile")
        base_profile_path = args.baseline_dir / "BENCH_profile.json"
        base_profile = (_load(base_profile_path, "profile")
                        if base_profile_path.exists() else None)
        failures += check_profile(fresh_profile, base_profile)
    else:
        print("profile: no fresh BENCH_profile.json, skipped")
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
