"""Shared machinery for the figure-reproduction benchmarks.

Every benchmark regenerates the data behind one of the paper's figures
(or an extension experiment), asserts the paper's qualitative claims
about its shape, prints the series as a text table, and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can quote the numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Print a rendered table and persist it under results/."""

    def _save(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture
def save_metrics(results_dir):
    """Persist an observability snapshot next to a benchmark's table.

    Accepts either a :class:`repro.obs.metrics.MetricsRegistry` (dumped
    in Prometheus text form, so loss counters and queue high-water
    marks ride along with the figure data) or a plain mapping of
    ``name -> value`` lines.  Written to ``results/<name>.metrics.txt``.
    """
    from repro.obs.export import render_prometheus
    from repro.obs.metrics import MetricsRegistry

    def _save(name: str, snapshot) -> None:
        if isinstance(snapshot, MetricsRegistry):
            text = render_prometheus(snapshot)
        else:
            text = "\n".join(
                f"{key} {value}" for key, value in sorted(snapshot.items())
            ) + "\n"
        (results_dir / f"{name}.metrics.txt").write_text(text)

    return _save
