"""Figure 5(c)/(d) — steady-state behaviour vs. the base scan rate μ₁.

λ=1, ξ₁=20, μ_k=μ₁/k, ξ_k=ξ₁/k, buffer 15; μ₁ sweeps (0, 20].

Asserted shapes (Case 3 remarks): large enough μ₁ (≳15) gives
P(NORMAL) > 0.8 (degradation < 20 %); beyond that, increasing μ₁ brings
no significant further improvement (a cost-effective range exists);
a starved analyzer (small μ₁) collapses the system.
"""

from __future__ import annotations

import pytest

from repro.markov.metrics import (
    category_probabilities,
    expected_alerts,
    expected_recovery_units,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.report.series import Series, format_series

MUS = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0, 18.0, 20.0]
LAM, XI1, BUFFER = 1.0, 20.0, 15


def compute_fig5_mu():
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("loss probability"),
        "E[alerts]": Series("E[alerts]"),
        "E[units]": Series("E[recovery units]"),
    }
    for mu1 in MUS:
        stg = RecoverySTG.paper_default(
            arrival_rate=LAM, mu1=mu1, xi1=XI1, buffer_size=BUFFER
        )
        pi = steady_state(stg.ctmc())
        cats = category_probabilities(stg, pi)
        out["P(NORMAL)"].add(mu1, cats[StateCategory.NORMAL])
        out["P(SCAN)"].add(mu1, cats[StateCategory.SCAN])
        out["P(RECOVERY)"].add(mu1, cats[StateCategory.RECOVERY])
        out["loss"].add(mu1, loss_probability(stg, pi))
        out["E[alerts]"].add(mu1, expected_alerts(stg, pi))
        out["E[units]"].add(mu1, expected_recovery_units(stg, pi))
    return out


@pytest.fixture(scope="module")
def fig5mu():
    return compute_fig5_mu()


def test_fig5_mu_reproduction(fig5mu, save_table, benchmark):
    benchmark.pedantic(compute_fig5_mu, rounds=1, iterations=1)

    # Large μ₁ (≥ 15): system healthy, degradation < 20 %.
    for mu1 in (15.0, 18.0, 20.0):
        assert fig5mu["P(NORMAL)"].y_at(mu1) > 0.8, mu1
        assert fig5mu["loss"].y_at(mu1) < 0.05, mu1

    # Starved analyzer: collapse.
    assert fig5mu["P(NORMAL)"].y_at(0.5) < 0.4
    assert fig5mu["loss"].y_at(0.5) > 0.3

    # Diminishing returns past ≈15 — no significant improvement.
    gain = (
        fig5mu["P(NORMAL)"].y_at(20.0) - fig5mu["P(NORMAL)"].y_at(15.0)
    )
    assert gain < 0.05

    # Monotone improvement with μ₁.
    normals = fig5mu["P(NORMAL)"].ys
    assert all(a <= b + 1e-9 for a, b in zip(normals, normals[1:]))

    save_table(
        "fig5_mu",
        format_series(
            f"Figure 5(c,d): steady state vs mu1 (lambda={LAM}, "
            f"xi1={XI1}, buffer={BUFFER})",
            list(fig5mu.values()),
            x_label="mu1",
        ),
    )
