"""Figure 6(c)/(d) — transient behaviour of a *poor* system.

Case 6: λ=1, μ₁=2, ξ₁=3, buffer 15, starting from NORMAL, observed for
100 time units.  The attack rate is ~9× what the configuration was
designed for (it is perfectly adequate at λ=0.1).

Asserted shapes (the paper's remarks):

- performance degrades almost 100 % — P(NORMAL) → ≈0;
- the loss probability climbs quickly (< 30 time units) and stays in
  the 0.9–1.0 band;
- the system resists about 5 time units before the loss takes off;
- most of the cumulative time is spent losing alerts (right edge);
- at its design rate λ=0.1 the very same configuration is good.
"""

from __future__ import annotations

import pytest

from repro.markov.metrics import category_probabilities, loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.markov.transient import cumulative_times, transient_probabilities
from repro.report.series import Series, format_series

TIMES = [1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0]
MU1, XI1 = 2.0, 3.0


def compute_fig6_poor():
    stg = RecoverySTG.paper_default(mu1=MU1, xi1=XI1)
    chain = stg.ctmc()
    pi0 = stg.initial_distribution()
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("loss probability"),
        "time@loss": Series("cumulative time on right edge"),
        "time@r=R": Series("cumulative time recovery queue full"),
    }
    loss_idx = [chain.index_of(s) for s in stg.loss_states()]
    full_r_idx = [
        chain.index_of(s)
        for s in stg.states
        if s.units == stg.recovery_buffer
    ]
    for t in TIMES:
        pi_t = transient_probabilities(chain, pi0, t)
        cats = category_probabilities(stg, pi_t)
        out["P(NORMAL)"].add(t, cats[StateCategory.NORMAL])
        out["P(SCAN)"].add(t, cats[StateCategory.SCAN])
        out["P(RECOVERY)"].add(t, cats[StateCategory.RECOVERY])
        out["loss"].add(t, loss_probability(stg, pi_t))
        lt = cumulative_times(chain, pi0, t)
        out["time@loss"].add(t, float(sum(lt[i] for i in loss_idx)))
        out["time@r=R"].add(t, float(sum(lt[i] for i in full_r_idx)))
    return stg, out


@pytest.fixture(scope="module")
def fig6poor():
    return compute_fig6_poor()


def test_fig6_poor_system(fig6poor, save_table, benchmark):
    benchmark.pedantic(compute_fig6_poor, rounds=1, iterations=1)
    stg, series = fig6poor

    # Degradation of performance is almost 100 %.
    assert series["P(NORMAL)"].y_at(100.0) < 0.01

    # Loss goes up quickly (< 30 time units) and stays in 0.9–1.0.
    assert series["loss"].y_at(30.0) > 0.5
    assert 0.85 <= series["loss"].y_at(100.0) <= 1.0

    # The system resists ≈5 time units before losing alerts.
    assert series["loss"].y_at(5.0) < 0.05
    assert series["loss"].y_at(20.0) > 0.2

    # Most cumulative time ends up on the right edge of the STG.
    assert series["time@loss"].y_at(100.0) > 0.5 * 100.0

    # The same configuration is GOOD at its design rate λ=0.1.
    design = RecoverySTG.paper_default(arrival_rate=0.1, mu1=MU1, xi1=XI1)
    pi = steady_state(design.ctmc())
    assert category_probabilities(design, pi)[StateCategory.NORMAL] > 0.8
    assert loss_probability(design, pi) < 1e-3

    save_table(
        "fig6_transient_poor",
        format_series(
            "Figure 6(c,d): transient behaviour, poor system "
            f"(lambda=1, mu1={MU1}, xi1={XI1}, buffer 15, start NORMAL)",
            list(series.values()),
            x_label="t",
        ),
    )
