"""Figure 6(a)/(b) — transient behaviour of a *good* system.

Case 5: λ=1, μ₁=15, ξ₁=20, buffer 15, starting from NORMAL, observed
for 4 time units (Equation 2 for probabilities, Equation 3 for
cumulative state times).

Asserted shapes: the system enters its steady state very quickly
(within ~1 time unit); the loss probability is not noticeable
(indistinguishable from the x-axis); most of the time is spent in
NORMAL — attacks are handled at little cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.metrics import (
    category_probabilities,
    convergence_time,
    epsilon_convergence,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory
from repro.markov.transient import cumulative_times, transient_probabilities
from repro.report.series import Series, format_series

TIMES = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]


def compute_fig6_good():
    stg = RecoverySTG.paper_default()
    chain = stg.ctmc()
    pi0 = stg.initial_distribution()
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("loss probability"),
        "time@NORMAL": Series("cumulative time in NORMAL"),
        "time@loss": Series("cumulative time on right edge"),
    }
    loss_idx = [chain.index_of(s) for s in stg.loss_states()]
    normal_idx = chain.index_of(stg.normal_state)
    for t in TIMES:
        pi_t = transient_probabilities(chain, pi0, t)
        cats = category_probabilities(stg, pi_t)
        out["P(NORMAL)"].add(t, cats[StateCategory.NORMAL])
        out["P(SCAN)"].add(t, cats[StateCategory.SCAN])
        out["P(RECOVERY)"].add(t, cats[StateCategory.RECOVERY])
        out["loss"].add(t, loss_probability(stg, pi_t))
        lt = cumulative_times(chain, pi0, t)
        out["time@NORMAL"].add(t, float(lt[normal_idx]))
        out["time@loss"].add(t, float(sum(lt[i] for i in loss_idx)))
    return stg, out


@pytest.fixture(scope="module")
def fig6good():
    return compute_fig6_good()


def test_fig6_good_system(fig6good, save_table, save_metrics, benchmark):
    benchmark.pedantic(compute_fig6_good, rounds=1, iterations=1)
    stg, series = fig6good

    # Rapid convergence: by t=1 the distribution matches the steady
    # state on the NORMAL probability.
    pi_inf = steady_state(stg.ctmc())
    p_normal_inf = category_probabilities(stg, pi_inf)[
        StateCategory.NORMAL
    ]
    assert abs(series["P(NORMAL)"].y_at(1.0) - p_normal_inf) < 0.02

    # Loss probability "cannot be distinguished from the x axis".
    assert max(series["loss"].ys) < 1e-4
    assert max(series["time@loss"].ys) < 1e-3

    # The system spends most of its time executing normal tasks.
    assert series["P(NORMAL)"].y_at(4.0) > 0.8
    assert series["time@NORMAL"].y_at(4.0) > 0.8 * 4.0

    save_table(
        "fig6_transient_good",
        format_series(
            "Figure 6(a,b): transient behaviour, good system "
            "(lambda=1, mu1=15, xi1=20, buffer 15, start NORMAL)",
            list(series.values()),
            x_label="t",
        ),
    )

    # Definition 4 alongside the loss series: the ε the steady state
    # promises, and how long the transient takes to honour it.  The
    # bulk distribution settles within ~1 time unit (asserted above),
    # but the loss tail mixes on a far slower timescale — the sweep
    # must reach into the thousands to see it land.
    eps = epsilon_convergence(stg)
    t_conv = convergence_time(stg, tol=1e-3, horizon=8000.0, step=100.0)
    assert t_conv is not None, (
        "good system's loss tail should settle within the sweep horizon"
    )
    save_metrics("fig6_transient_good", {
        "repro_model_epsilon_convergence": eps,
        "repro_model_convergence_time": t_conv,
    })
