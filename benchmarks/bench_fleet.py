"""Fleet control-plane benchmark: throughput and latency at scale.

Emits ``BENCH_fleet.json``: a tenant-count sweep of the multi-tenant
recovery control plane (:mod:`repro.fleet`), reporting per row

- **sustained alert throughput** — attacks fully detected, analyzed
  and healed per wall-clock second of the run;
- **detect→heal latency** — p50/p99/max of the per-alert simulated
  time from IDS detection to the start of its batch heal;
- the serial-vs-parallel wall clock and the ``workers_identical``
  correctness guard: ``workers=K`` must produce per-tenant verdicts
  and latencies bit-identical to ``workers=1`` (the control plane's
  determinism contract, also pinned by ``tests/test_fleet.py``).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --out-dir benchmarks/results

The full sweep covers 100 / 1 000 / 10 000 tenants (larger fleets run
shorter sim durations to keep total attack volume — and memory —
bounded); ``--quick`` shrinks to seconds for the CI smoke job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.fleet import FleetConfig, FleetControlPlane, percentile

#: (tenants, simulated duration) per row; larger fleets run shorter so
#: every row stays within the same order of total attack volume.
FULL_SIZES: List[Tuple[int, float]] = [
    (100, 40.0), (1_000, 15.0), (10_000, 5.0),
]
QUICK_SIZES: List[Tuple[int, float]] = [(20, 10.0), (100, 5.0)]


def run_fleet(tenants: int, duration: float, workers: int, seed: int):
    """One timed fleet run; returns ``(report, wall_seconds)``."""
    config = FleetConfig(tenants=tenants, duration=duration,
                         workers=workers, seed=seed)
    plane = FleetControlPlane(config)
    t0 = time.perf_counter()
    report = plane.run()
    return report, time.perf_counter() - t0


def bench_fleet(sizes: List[Tuple[int, float]],
                workers: int, seed: int) -> Dict[str, object]:
    """Tenant-count sweep, serial vs ``workers`` threads."""
    results = []
    for tenants, duration in sizes:
        serial, serial_s = run_fleet(tenants, duration, 1, seed)
        parallel, parallel_s = run_fleet(tenants, duration, workers,
                                         seed)
        identical = (
            serial.verdicts_by_tenant == parallel.verdicts_by_tenant
            and [t.latencies for t in serial.health.tenants]
            == [t.latencies for t in parallel.health.tenants]
            and serial.alerts_lost == parallel.alerts_lost
            and serial.heals == parallel.heals
        )
        lat = sorted(parallel.health.latencies)
        health = parallel.health
        entry = {
            "tenants": tenants,
            "duration": duration,
            "ticks": parallel.ticks,
            "workers": workers,
            "attacks": parallel.attacks,
            "alerts_accepted": parallel.alerts_accepted,
            "alerts_lost": parallel.alerts_lost,
            "central_deferrals": parallel.central_deferrals,
            "heals": parallel.heals,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": (serial_s / parallel_s
                        if parallel_s > 0 else None),
            # healed alerts per wall-clock second, end to end
            "throughput_alerts_per_s": (
                parallel.attacks / parallel_s if parallel_s > 0
                else None
            ),
            "latency_samples": len(lat),
            "latency_p50": percentile(lat, 50),
            "latency_p99": percentile(lat, 99),
            "latency_max": lat[-1] if lat else 0.0,
            "verdict": health.verdict.value,
            "breach_tenants": health.by_state["BREACH"],
            "audits_ok": all(t.audits_ok for t in health.tenants),
            "workers_identical": identical,
        }
        results.append(entry)
        print(f"  {tenants:>6} tenants (duration {duration:g}): "
              f"{entry['attacks']} attacks, "
              f"{entry['throughput_alerts_per_s']:.0f} alerts/s, "
              f"latency p50 {entry['latency_p50']:.3f} "
              f"p99 {entry['latency_p99']:.3f}, "
              f"serial {serial_s:.2f}s / {workers} workers "
              f"{parallel_s:.2f}s, identical={identical}")
    return {
        "benchmark": "fleet",
        "workers": workers,
        "seed": seed,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fleet control-plane benchmark (JSON output)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep for CI smoke runs")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory for BENCH_fleet.json "
                             "(default: cwd)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread count for the parallel runs "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    print(f"fleet sweep ({'quick' if args.quick else 'full'}): "
          f"{', '.join(str(t) for t, _ in sizes)} tenants, "
          f"{args.workers} workers")
    doc = bench_fleet(sizes, workers=args.workers, seed=args.seed)
    doc["meta"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
    }

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "BENCH_fleet.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    bad = [row for row in doc["results"]
           if not row["workers_identical"] or not row["audits_ok"]]
    if bad:
        print("FAIL: correctness guard tripped on "
              f"{len(bad)} row(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
