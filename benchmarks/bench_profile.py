"""Profiling-layer benchmark: latency attribution quality and cost.

Emits ``BENCH_profile.json``: one profiled run per scenario of the
:mod:`repro.obs.perf` attribution layer, reporting per row

- **attribution** — the fraction of the profiled wall interval covered
  by top-level phases (the acceptance quantity: ≥95 % on the fullstack
  and fleet scenarios, recorded as ``attribution_floor``);
- **structure determinism** — each scenario runs twice and must produce
  the identical structure digest (phase paths, ordering, call counts,
  sim totals, counters — everything but the wall times);
- **named line items** — the measured cost drivers the paper's scaling
  embarrassments hide behind: per-alert Theorem 1/2 closure
  recomputation (ROADMAP item 2b) and the parallel batch's fan-out
  overhead (ROADMAP item 2a, the <1 speedup), as real numbers, not
  prose.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_profile.py           # full
    PYTHONPATH=src python benchmarks/bench_profile.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_profile.py --out-dir benchmarks/results

``benchmarks/check_regression.py`` gates the output: attribution
floors, digest stability, and the presence of both named line items
are hard failures; the wall-time columns are informational (cross-
machine timing comparisons are noise).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.fleet import FleetConfig, FleetControlPlane
from repro.obs.perf import PhaseProfiler
from repro.sim.batch import run_fullstack_batch
from repro.sim.fullstack import FullStackConfig, run_replication

#: Scenario shapes: (fullstack horizon, batch replications/horizon,
#: fleet tenants/duration).  Quick shrinks everything for CI smoke.
FULL = {"horizon": 60.0, "reps": 4, "batch_horizon": 20.0,
        "tenants": 6, "duration": 40.0}
QUICK = {"horizon": 30.0, "reps": 2, "batch_horizon": 8.0,
         "tenants": 4, "duration": 15.0}


def _row_map(report) -> Dict[str, dict]:
    return {r["path"]: r for r in report.rows}


def profile_fullstack(horizon: float, seed: int) -> List[dict]:
    """One instrumented replication, twice (digest stability)."""

    def once():
        config = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                                 recovery_buffer=4)
        prof = PhaseProfiler().start()
        run_replication(config, horizon=horizon, seed=seed,
                        profiler=prof)
        prof.stop()
        return prof.report("fullstack")

    first, second = once(), once()
    rows = _row_map(first)
    alerts = rows.get("analyze", {}).get("calls", 0) or 1
    closure = first.counters.get("closure_recomputations", 0)
    return [{
        "scenario": "fullstack",
        "params": {"horizon": horizon, "seed": seed,
                   "arrival_rate": 6.0},
        "total_wall_s": first.total_wall,
        "attribution": first.attribution,
        "attribution_floor": 0.95,
        "digest": first.structure_digest(),
        "digest_stable": (first.structure_digest()
                          == second.structure_digest()),
        "counters": first.counters,
        "line_items": {
            # ROADMAP item 2b: the closure is re-derived from scratch
            # on every alert's scan — this is that cost, measured.
            "closure_recomputations": closure,
            "closure_recomputations_per_alert": closure / alerts,
            "closure_wall_s": rows.get(
                "analyze;analyze.closure", {}).get("wall", 0.0),
        },
    }]


def profile_batch(replications: int, horizon: float,
                  seed: int) -> List[dict]:
    """Inline (profiled deep) and pooled (fan-out accounted) batches."""
    out: List[dict] = []
    config = FullStackConfig(arrival_rate=6.0, alert_buffer=4,
                             recovery_buffer=4)
    for workers in (1, 2):
        prof = PhaseProfiler().start()
        batch = run_fullstack_batch(
            config, horizon=horizon, replications=replications,
            workers=workers, seed=seed, profiler=prof,
        )
        prof.stop()
        report = prof.report(
            "batch-inline" if workers == 1 else "batch-parallel")
        rows = _row_map(report)
        entry = {
            "scenario": report.scenario,
            "params": {"replications": replications,
                       "horizon": horizon, "workers": workers,
                       "seed": seed},
            "total_wall_s": report.total_wall,
            "attribution": report.attribution,
            "attribution_floor": 0.95 if workers == 1 else None,
            "digest": report.structure_digest(),
            "digest_stable": True,
            "counters": report.counters,
            "line_items": {
                # ROADMAP item 2a: wall time the parallel harness adds
                # on top of each worker's fair share of the compute —
                # the measured explanation of the <1 speedup rows.
                "fan_out_overhead_s": batch.fan_out_overhead,
                "speedup": batch.speedup,
                "speedup_lt_1": batch.speedup_lt_1,
                "spawn_wall_s": rows.get(
                    "batch.spawn", {}).get("wall", 0.0),
                "pickle_bytes": report.counters.get("pickle_bytes", 0),
            },
        }
        out.append(entry)
    return out


def profile_fleet(tenants: int, duration: float, seed: int,
                  workers: int) -> List[dict]:
    """The control plane, profiled after construction (setup solves
    CTMC steady states — that belongs to calibration, not the run)."""

    def once():
        config = FleetConfig(tenants=tenants, duration=duration,
                             workers=workers, seed=seed)
        prof = PhaseProfiler()
        plane = FleetControlPlane(config, profiler=prof)
        prof.start()
        plane.run()
        prof.stop()
        return plane.profile_report()

    first, second = once(), once()
    rows = _row_map(first)
    tenant_roots = {r["path"].split(";")[1] for r in first.rows
                    if r["path"].startswith("workers;")}
    return [{
        "scenario": "fleet",
        "params": {"tenants": tenants, "duration": duration,
                   "workers": workers, "seed": seed},
        "total_wall_s": first.total_wall,
        "attribution": first.attribution,
        "attribution_floor": 0.95,
        "digest": first.structure_digest(),
        "digest_stable": (first.structure_digest()
                          == second.structure_digest()),
        "counters": first.counters,
        "line_items": {
            "grants": rows.get("grant", {}).get("calls", 0),
            "central_queue_wait_sim": rows.get(
                "central-queue-wait", {}).get("sim", 0.0),
            "tick_wall_s": rows.get("tick", {}).get("wall", 0.0),
            "tenants_profiled": len(tenant_roots),
        },
    }]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profiling-layer benchmark (JSON output)")
    parser.add_argument("--quick", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory for BENCH_profile.json "
                             "(default: cwd)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fleet-workers", type=int, default=4)
    args = parser.parse_args(argv)

    shape = QUICK if args.quick else FULL
    t0 = time.perf_counter()
    results: List[dict] = []
    results += profile_fullstack(shape["horizon"], args.seed)
    results += profile_batch(shape["reps"], shape["batch_horizon"],
                             args.seed)
    results += profile_fleet(shape["tenants"], shape["duration"],
                             args.seed, args.fleet_workers)
    for row in results:
        floor = row["attribution_floor"]
        print(f"  {row['scenario']:<15} attribution "
              f"{row['attribution']:.3f}"
              f"{f' (floor {floor})' if floor else ''} "
              f"digest_stable={row['digest_stable']}")

    doc = {
        "benchmark": "profile",
        "seed": args.seed,
        "results": results,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
            "elapsed_s": time.perf_counter() - t0,
        },
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "BENCH_profile.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    bad = [r["scenario"] for r in results
           if (r["attribution_floor"]
               and r["attribution"] < r["attribution_floor"])
           or not r["digest_stable"]]
    if bad:
        print(f"FAIL: attribution/determinism gate tripped: {bad}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
