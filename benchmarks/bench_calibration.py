"""Extension F — closing the loop: CTMC parameters measured from code.

Section VI, step one, tells designers to *evaluate* μ_k and ξ_k of
their actual analyzing/scheduling algorithms before any buffer sizing.
This bench does exactly that for this repository's implementation:

1. measure the real recovery analyzer's alert-processing rate and the
   real healer's unit-execution rate at growing batch sizes;
2. fit ``rate_k = r₁ / k^α`` power laws (the CTMC's degradation family);
3. instantiate the CTMC with the *fitted shapes* (bases normalized to
   the paper's μ₁=15, ξ₁=20 scale so results are comparable) and run
   the Section VI design procedure on it.

Asserted: both fitted schedules degrade (α > 0) — the empirical
justification for the paper's decreasing μ_k/ξ_k assumption — and the
calibrated model admits a feasible design at λ=1.
"""

from __future__ import annotations

import pytest

from repro.markov.calibration import (
    fit_power_law,
    measure_recovery_rates,
    measure_scan_rates,
)
from repro.markov.degradation import power_law
from repro.markov.design import design_system
from repro.report.tables import Table

BATCHES = (1, 2, 4, 8)


def calibrate():
    scan_rates = measure_scan_rates(batch_sizes=BATCHES, repeats=2)
    recovery_rates = measure_recovery_rates(unit_counts=BATCHES,
                                            repeats=2)
    scan_fit = fit_power_law(scan_rates)
    recovery_fit = fit_power_law(recovery_rates)
    return scan_rates, recovery_rates, scan_fit, recovery_fit


def test_calibrated_model(save_table, benchmark):
    scan_rates, recovery_rates, scan_fit, recovery_fit = (
        benchmark.pedantic(calibrate, rounds=1, iterations=1)
    )

    table = Table(
        "Extension F: measured processing rates and power-law fits",
        ["k", "scan rate (alerts/s)", "recovery rate (units/s)"],
    )
    for k in BATCHES:
        table.add_row(k, scan_rates[k], recovery_rates[k])
    fit_note = (
        f"\nfits: mu_k = {scan_fit.base:.1f}/k^{scan_fit.alpha:.2f} "
        f"(rms {scan_fit.residual:.3f}), "
        f"xi_k = {recovery_fit.base:.1f}/k^{recovery_fit.alpha:.2f} "
        f"(rms {recovery_fit.residual:.3f})"
    )

    # Both real algorithms degrade with queue size — the paper's
    # assumption, measured.
    assert scan_fit.alpha > 0.0
    assert recovery_fit.alpha > 0.0

    # Instantiate the model with the fitted *shapes* at the paper's
    # rate scale and size a system for lambda=1, epsilon=1e-2.
    result = design_system(
        arrival_rate=1.0,
        epsilon=1e-2,
        scan=power_law(15.0, min(scan_fit.alpha, 1.5)),
        recovery=power_law(20.0, min(recovery_fit.alpha, 1.5)),
        max_buffer=30,
    )
    assert result.feasible, result.summary()
    design_note = f"\ncalibrated design: {result.summary()}"

    save_table(
        "calibration", table.render() + fit_note + design_note
    )
