"""Extension G — the design toolkit: sensitivities and passage times.

Two quantitative instruments the paper's Section VI guidelines imply
but never compute:

- **elasticities** of the steady-state loss probability with respect to
  each design parameter — *where to spend* (faster analyzer vs faster
  scheduler vs more buffer);
- **mean time to first alert loss** — the exact form of Case 6's
  "resists about 5 time-units" reading, across attack rates.

Asserted shapes: attack rate raises loss and rates lower it (signs);
under ``1/k`` degradation the marginal buffer slot *increases* loss
(Figure 4(b)'s regime); time-to-loss falls monotonically with the
attack rate and explodes for the well-provisioned system.
"""

from __future__ import annotations

import pytest

from repro.markov.passage import mean_time_to_loss
from repro.markov.sensitivity import loss_sensitivities
from repro.markov.stg import RecoverySTG
from repro.report.tables import Table

DESIGN_POINTS = [
    # (lambda, mu1, xi1, buffer)
    (0.5, 15.0, 20.0, 10),
    (1.0, 15.0, 20.0, 10),
    (1.0, 2.0, 3.0, 10),      # the paper's "poor" configuration
]
RATES_FOR_PASSAGE = [0.5, 1.0, 2.0, 4.0]


def compute_toolkit():
    sens_rows = []
    for lam, mu1, xi1, buffer_size in DESIGN_POINTS:
        sens = loss_sensitivities(
            lam=lam, mu1=mu1, xi1=xi1, buffer_size=buffer_size
        )
        sens_rows.append(((lam, mu1, xi1, buffer_size), sens))
    passage_rows = []
    for lam in RATES_FOR_PASSAGE:
        good = RecoverySTG.paper_default(arrival_rate=lam, buffer_size=8)
        poor = RecoverySTG.paper_default(
            arrival_rate=lam, mu1=2.0, xi1=3.0, buffer_size=8
        )
        passage_rows.append(
            (lam, mean_time_to_loss(good), mean_time_to_loss(poor))
        )
    return sens_rows, passage_rows


def test_design_toolkit(save_table, benchmark):
    sens_rows, passage_rows = benchmark.pedantic(
        compute_toolkit, rounds=1, iterations=1
    )

    sens_table = Table(
        "Extension G: elasticity of loss probability per parameter",
        ["lambda", "mu1", "xi1", "buffer", "E[lambda]", "E[mu1]",
         "E[xi1]", "d(loss)/slot"],
    )
    for (lam, mu1, xi1, buffer_size), sens in sens_rows:
        by = {s.parameter: s.elasticity for s in sens}
        # Signs: attacks hurt, processing rates help.
        assert by["lambda"] > 0
        assert by["mu1"] < 0 and by["xi1"] < 0
        sens_table.add_row(
            lam, mu1, xi1, buffer_size,
            by["lambda"], by["mu1"], by["xi1"], by["buffer"],
        )
    # The Figure 4(b) regime: one extra slot raises loss for the
    # healthy design under 1/k degradation.
    healthy = dict(
        (s.parameter, s.elasticity) for s in sens_rows[1][1]
    )
    assert healthy["buffer"] > 0

    passage_table = Table(
        "Extension G: mean time to first alert loss (buffer 8)",
        ["lambda", "good system (mu1=15, xi1=20)",
         "poor system (mu1=2, xi1=3)"],
    )
    for lam, good_t, poor_t in passage_rows:
        passage_table.add_row(lam, good_t, poor_t)
        assert good_t > poor_t  # provisioning buys survival time
    goods = [g for _, g, __ in passage_rows]
    poors = [p for _, __, p in passage_rows]
    assert goods == sorted(goods, reverse=True)
    assert poors == sorted(poors, reverse=True)
    # The well-provisioned system at its design rate effectively never
    # loses an alert; the poor one measures its life in tens of units.
    assert goods[0] > 1e5
    assert poors[1] < 100.0

    save_table(
        "design_toolkit",
        sens_table.render() + "\n\n" + passage_table.render(),
    )
