"""Extension H — the operational system exhibits the model's phases.

Figure 5's λ sweep, re-run on the *full stack*: Poisson attack arrivals
execute real attacked workflows, the real analyzer scans alerts, and
real audited heals commit the repairs.  No exponential abstractions —
the queueing behaviour emerges from the architecture and the actual
recovery code.

Asserted shapes (the operational mirror of Figure 5(a)):

- P(NORMAL) decreases monotonically with λ; high at light load;
- the SCAN fraction and the alert-loss fraction rise with λ and
  dominate in overload;
- at every load level, all committed heals audit strictly correct and
  every injected attack is eventually repaired — the self-healing
  guarantee holds under sustained pressure, not just in single-shot
  scenarios.
"""

from __future__ import annotations

import random

import pytest

from repro.markov.stg import StateCategory
from repro.obs.events import EventBus
from repro.obs.metrics import PipelineMetrics
from repro.report.series import Series, format_series
from repro.sim.fullstack import FullStackConfig, FullStackSimulator

LAMBDAS = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
HORIZON = 60.0


def sweep_fullstack():
    out = {
        "P(NORMAL)": Series("P(NORMAL)"),
        "P(SCAN)": Series("P(SCAN)"),
        "P(RECOVERY)": Series("P(RECOVERY)"),
        "loss": Series("alert loss fraction"),
        "repaired": Series("instances repaired"),
    }
    audits = []
    snapshot = None
    for lam in LAMBDAS:
        cfg = FullStackConfig(
            arrival_rate=lam, scan_time=1 / 15,
            unit_recovery_time=1 / 20, alert_buffer=6, recovery_buffer=6,
        )
        # Observe the overload point through the obs layer so the
        # persisted snapshot records loss counts and queue high-water
        # marks alongside the figure series.
        bus = metrics = None
        if lam == LAMBDAS[-1]:
            bus = EventBus()
            metrics = PipelineMetrics().attach(bus)
            metrics.start(0.0)
        result = FullStackSimulator(cfg, random.Random(7),
                                    bus=bus).run(HORIZON)
        if metrics is not None:
            metrics.finalize(HORIZON)
            snapshot = metrics
        out["P(NORMAL)"].add(lam, result.category_occupancy[
            StateCategory.NORMAL])
        out["P(SCAN)"].add(lam, result.category_occupancy[
            StateCategory.SCAN])
        out["P(RECOVERY)"].add(lam, result.category_occupancy[
            StateCategory.RECOVERY])
        out["loss"].add(lam, result.loss_fraction)
        out["repaired"].add(lam, result.repaired_instances)
        audits.append(
            result.all_heals_audited_ok
            and result.repaired_instances >= result.attacks
        )
    return out, audits, snapshot


def test_fullstack_phases(save_table, save_metrics, benchmark):
    series, audits, snapshot = benchmark.pedantic(
        sweep_fullstack, rounds=1, iterations=1
    )

    assert all(audits)  # correctness held at every load level
    assert snapshot is not None and snapshot.alerts_lost.value > 0

    normals = series["P(NORMAL)"].ys
    assert normals[0] > 0.9
    assert all(a >= b - 0.02 for a, b in zip(normals, normals[1:]))
    assert normals[-1] < 0.05

    assert series["P(SCAN)"].y_at(LAMBDAS[-1]) > 0.85
    assert series["loss"].y_at(0.25) == 0.0
    assert series["loss"].y_at(8.0) > 0.2
    losses = series["loss"].ys
    assert all(a <= b + 0.02 for a, b in zip(losses, losses[1:]))

    save_table(
        "fullstack_phases",
        format_series(
            "Extension H: full-stack operational sweep "
            f"(horizon {HORIZON:g}, real heals, all audited)",
            list(series.values()),
            x_label="lambda",
        ),
    )
    save_metrics("fullstack_phases", snapshot.registry)
