"""Figure 4 — steady-state loss probability vs. buffer size.

Four panels, λ=1, μ₁=15, ξ₁=20, buffer size 2..30:

- (a) very slow degradation of both rates;
- (b) both rates degrade as ``1/k``;
- (c) only ξ degrades (the adverse case);
- (d) only μ degrades (better than (c)).

Asserted shapes (the paper's remarks):

- (a): larger buffers reduce the loss probability significantly;
- (b), (c): the loss probability decreases, then *increases* again as
  queues grow and processing degrades;
- (d) beats (c): degrading μ (the producer of recovery units) is better
  than degrading ξ (the drain).
"""

from __future__ import annotations

import pytest

from repro.markov.degradation import fig4_cases
from repro.markov.design import sweep_buffer_sizes
from repro.report.series import Series, format_series

LAMBDA, MU1, XI1 = 1.0, 15.0, 20.0
SIZES = list(range(2, 31))


def compute_fig4():
    """Loss-probability series for all four (f, g) panels."""
    series = []
    for panel, (f, g) in sorted(fig4_cases(MU1, XI1).items()):
        losses = sweep_buffer_sizes(LAMBDA, f, g, sizes=SIZES)
        s = Series(f"({panel}) mu={f.name}, xi={g.name}")
        for n in SIZES:
            s.add(n, losses[n])
        series.append(s)
    return series


@pytest.fixture(scope="module")
def fig4_series():
    return compute_fig4()


def test_fig4_reproduction(fig4_series, save_table, benchmark):
    benchmark.pedantic(compute_fig4, rounds=1, iterations=1)
    panel = {s.label[1]: s for s in fig4_series}

    # (a) slow degradation: bigger buffers keep reducing the loss.
    a = panel["a"].ys
    assert a[0] > a[-1]
    assert a[-1] < 1e-3
    assert all(x >= y - 1e-12 for x, y in zip(a, a[1:]))

    # (b) 1/k degradation on both rates: U-shape — an interior optimum
    # strictly better than both small and very large buffers.
    b = panel["b"].ys
    best = min(b)
    assert best < b[0]
    assert b[-1] > best

    # (c) only ξ degrades: same qualitative U / rise for large buffers.
    c = panel["c"].ys
    assert min(c) < c[0]

    # (d) μ degrades faster than ξ — better than the contrary case (c):
    # slowing the producer of recovery units keeps the drain fast, so
    # the loss stays orders of magnitude lower as buffers grow.
    d = panel["d"].ys
    assert d[-1] < c[-1] / 10
    assert max(d) < max(c)

    save_table(
        "fig4_loss_vs_buffer",
        format_series(
            "Figure 4: steady-state loss probability vs buffer size "
            f"(lambda={LAMBDA}, mu1={MU1}, xi1={XI1})",
            fig4_series,
            x_label="buffer",
        ),
    )
