"""Extension B — dependency-based recovery vs the baselines it replaces.

The paper's introduction argues checkpoints "lose all work after the
rollback point, malicious and normal alike".  This bench quantifies
that: random workloads are attacked at increasing damage fractions and
repaired by (1) the dependency-based healer, (2) best-case checkpoint
rollback, (3) redo-everything.  For each strategy we count task
executions preserved, re-executed and undone.

Expected shape: the healer preserves the most work at every damage
level; its advantage shrinks as the damage fraction grows (with
everything corrupted, every strategy must redo everything).
"""

from __future__ import annotations

import random

import pytest

from repro.report.tables import Table
from repro.sim.baselines import (
    checkpoint_rollback_cost,
    dependency_recovery_cost,
    full_redo_cost,
)
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

ATTACK_COUNTS = [1, 2, 4, 8]
SEEDS = range(5)


def compare_strategies():
    rows = []
    for n_attacks in ATTACK_COUNTS:
        totals = {
            "dependency": [0, 0, 0],
            "checkpoint": [0, 0, 0],
            "redo-all": [0, 0, 0],
        }
        runs = 0
        for seed in SEEDS:
            gen = WorkloadGenerator(
                WorkloadConfig(n_workflows=4, tasks_per_workflow=12,
                               branch_probability=0.4),
                random.Random(seed),
            )
            workload = gen.generate()
            campaign = gen.pick_attacks(workload, n_attacks=n_attacks)
            result = run_pipeline(workload, campaign, seed=seed)
            assert result.healthy, result.audit.problems
            dep = dependency_recovery_cost(result.heal)
            ckpt = checkpoint_rollback_cost(
                result.log, result.malicious_ground_truth
            )
            full = full_redo_cost(result.log)
            for key, cost in (
                ("dependency", dep), ("checkpoint", ckpt),
                ("redo-all", full),
            ):
                totals[key][0] += cost.preserved
                totals[key][1] += cost.re_executed
                totals[key][2] += cost.undone
            runs += 1
        rows.append((n_attacks, runs, totals))
    return rows


def test_baseline_comparison(save_table, benchmark):
    rows = benchmark.pedantic(compare_strategies, rounds=1, iterations=1)

    table = Table(
        "Extension B: recovery cost by strategy "
        "(totals over 5 seeds, 4 workflows x 12 tasks)",
        ["attacks", "strategy", "preserved", "re-executed", "undone"],
    )
    for n_attacks, runs, totals in rows:
        dep, ckpt, full = (
            totals["dependency"], totals["checkpoint"], totals["redo-all"]
        )
        # The headline claim: dependency recovery preserves the most.
        assert dep[0] >= ckpt[0]
        assert dep[0] > full[0]
        # And undoes no more than the checkpoint discards.
        assert dep[2] <= ckpt[2]
        # Redo-everything preserves nothing.
        assert full[0] == 0
        for name, t in (("dependency", dep), ("checkpoint", ckpt),
                        ("redo-all", full)):
            table.add_row(n_attacks, name, t[0], t[1], t[2])

    # Advantage shrinks with damage: the healer's preserved fraction is
    # non-increasing in the attack count (allowing sampling noise).
    preserved = [t["dependency"][0] for _, __, t in rows]
    assert preserved[0] >= preserved[-1]
    save_table("baseline_comparison", table.render())
