"""Persisting whole workflow systems: store, log and specifications.

With expression-based specifications (:mod:`repro.workflow.serialize`)
every part of a workflow system is data, so an *attacked* system can be
dumped to JSON, shipped to a forensics host, and healed there — the
post-mortem recovery workflow a real deployment needs.

The snapshot captures:

- the data store's full version history (values must be JSON-safe:
  numbers, strings, booleans, ``None``);
- every log record (instances, read/write versions, branch decisions,
  record kinds — recovery records included);
- the workflow documents and which instance ran which document.

``load_system`` reconstructs live objects; healing the reconstruction
behaves identically to healing the original (tested in
``tests/test_persistence.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.workflow.data import DataStore
from repro.workflow.log import RecordKind, SystemLog
from repro.workflow.serialize import WorkflowDocument
from repro.workflow.spec import WorkflowSpec
from repro.workflow.task import TaskInstance

__all__ = ["PersistenceError", "SystemSnapshot", "dump_system",
           "load_system"]

_FORMAT = "repro-system-snapshot"
_VERSION = 1

_JSON_SAFE = (int, float, str, bool, type(None))


class PersistenceError(ReproError):
    """A system could not be serialized or deserialized."""


@dataclass
class SystemSnapshot:
    """Reconstructed live objects of a persisted system."""

    store: DataStore
    log: SystemLog
    documents: Dict[str, WorkflowDocument]
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, Any]


def dump_system(
    store: DataStore,
    log: SystemLog,
    documents: Mapping[str, WorkflowDocument],
    instance_documents: Mapping[str, str],
    initial_data: Mapping[str, Any],
    indent: Optional[int] = None,
) -> str:
    """Serialize a workflow system to a JSON string.

    Parameters
    ----------
    store, log:
        The live system state.
    documents:
        Workflow documents by name.
    instance_documents:
        Mapping ``workflow instance id → document name``.
    initial_data:
        Pre-execution store contents (needed for later audits).
    indent:
        Optional JSON indentation.
    """
    for wf, doc_name in instance_documents.items():
        if doc_name not in documents:
            raise PersistenceError(
                f"instance {wf!r} references unknown document "
                f"{doc_name!r}"
            )
    histories: Dict[str, List[Dict[str, Any]]] = {}
    for name in store.names():
        versions = []
        for v in store.history(name):
            if not isinstance(v.value, _JSON_SAFE):
                raise PersistenceError(
                    f"object {name!r} version {v.number} holds a "
                    f"non-JSON-safe value of type "
                    f"{type(v.value).__name__}"
                )
            versions.append(
                {"number": v.number, "value": v.value,
                 "writer": v.writer}
            )
        histories[name] = versions
    records = []
    for r in log.records():
        records.append({
            "workflow_instance": r.instance.workflow_instance,
            "task_id": r.instance.task_id,
            "number": r.instance.number,
            "reads": dict(r.reads),
            "writes": dict(r.writes),
            "chosen": r.chosen,
            "kind": r.kind,
        })
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "initial_data": dict(initial_data),
        "store": histories,
        "log": records,
        "documents": {
            name: doc.to_dict() for name, doc in documents.items()
        },
        "instances": dict(instance_documents),
    }
    return json.dumps(payload, indent=indent)


def load_system(text: str) -> SystemSnapshot:
    """Reconstruct a system from :func:`dump_system` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid snapshot JSON: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise PersistenceError(
            f"not a system snapshot (format={payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise PersistenceError(
            f"unsupported snapshot version {payload.get('version')!r}"
        )

    store = DataStore()
    for name, versions in payload["store"].items():
        ordered = sorted(versions, key=lambda v: v["number"])
        for i, v in enumerate(ordered):
            if v["number"] != i:
                raise PersistenceError(
                    f"object {name!r} has a gap in its version history "
                    f"at {v['number']}"
                )
            got = store.write(name, v["value"], writer=v["writer"])
            if got != v["number"]:  # pragma: no cover - defensive
                raise PersistenceError(
                    f"version renumbering mismatch for {name!r}"
                )
    # Initial (writer-less) versions written via store.write carry the
    # recorded writer of None, preserving baseline semantics.

    log = SystemLog()
    for r in payload["log"]:
        if r["kind"] not in RecordKind.ALL:
            raise PersistenceError(f"unknown record kind {r['kind']!r}")
        log.commit(
            TaskInstance(r["workflow_instance"], r["task_id"],
                         r["number"]),
            reads=r["reads"],
            writes=r["writes"],
            chosen=r["chosen"],
            kind=r["kind"],
        )

    documents = {
        name: WorkflowDocument.from_dict(doc)
        for name, doc in payload["documents"].items()
    }
    specs: Dict[str, WorkflowSpec] = {}
    built: Dict[str, WorkflowSpec] = {}
    for wf, doc_name in payload["instances"].items():
        if doc_name not in documents:
            raise PersistenceError(
                f"instance {wf!r} references unknown document "
                f"{doc_name!r}"
            )
        if doc_name not in built:
            built[doc_name] = documents[doc_name].build()
        specs[wf] = built[doc_name]

    return SystemSnapshot(
        store=store,
        log=log,
        documents=documents,
        specs_by_instance=specs,
        initial_data=dict(payload["initial_data"]),
    )
