"""Opt-in Eraser-style dynamic lockset sanitizer (RACE101/RACE102).

The static pass (:mod:`repro.lint.races`) proves lock discipline for
classes that own locks; phase-confined state — the fleet's shard
stores and bounded queues, touched by worker threads in the process
phase and by the main thread in ingest/harvest — is invisible to it.
This module is the second line of defense: instrument the real locks
and the real accesses, refine per-variable candidate locksets at
runtime (Savage et al.'s Eraser algorithm), and report violations as
typed :class:`~repro.lint.diagnostics.Diagnostic` records with thread
and stack provenance.

State machine per shared variable::

    VIRGIN -> EXCLUSIVE (first access, owner thread recorded)
           -> SHARED (second thread reads)
           -> SHARED_MODIFIED (second thread writes, or write in SHARED)

The candidate lockset ``C(v)`` starts undefined, is initialized at the
first cross-thread access and intersected with the held lockset on
every cross-thread access after that; an empty ``C(v)`` in
SHARED_MODIFIED is a RACE101 violation.  Because the verdict depends
only on the *locksets*, not on an actual unlucky interleaving, the
removed-lock canary is detected deterministically even when the two
threads run back to back.

Happens-before at phase boundaries is modelled with :meth:`barrier`:
the fleet control plane fences between its serial ingest/schedule,
parallel process, and serial harvest rounds (the ``pool.map`` join is
a real synchronization point), which resets variable states so
phase-confined single-owner state stays clean while genuine same-phase
races (two workers on one registry) are still caught.

Lock attribution: instrumented objects acquire their locks *inside*
their methods (``Counter.inc`` takes ``self._lock`` itself), so an
access hook wrapping the method cannot see the lock in the held set at
entry.  :class:`TrackedLock` therefore journals acquisitions per
thread, and the hook attributes to the access every lock acquired
*during* the wrapped call as well as those held at entry.

Everything here is opt-in: no repro class imports this module; the
``--sanitize`` CLI flag and the tests wire it up explicitly.
"""

from __future__ import annotations

import functools
import threading
import traceback
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic, LintReport, RULES

__all__ = ["TrackedLock", "RaceSanitizer"]

_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MODIFIED = "shared-modified"


def _call_site() -> Tuple[str, int, str]:
    """(file, line, 'file:line in fn') of the nearest non-sanitizer frame."""
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename
        if fname.endswith("sanitizer.py") or "threading" in fname:
            continue
        return fname, frame.lineno or 0, \
            f"{fname}:{frame.lineno} in {frame.name}"
    return "<unknown>", 0, "<unknown>"


class TrackedLock:
    """Proxy around a real lock that journals acquire/release.

    Supports the subset of the ``threading.Lock`` API the repro uses
    (``acquire``/``release``/context manager) and notifies the owning
    sanitizer so held locksets, the per-thread acquisition journal and
    the runtime lock-order graph stay current.
    """

    def __init__(self, sanitizer: "RaceSanitizer", name: str,
                 inner: Optional[Any] = None, reentrant: bool = False) -> None:
        self._san = sanitizer
        self.name = name
        self.reentrant = reentrant
        self._inner = inner if inner is not None else (
            threading.RLock() if reentrant else threading.Lock())

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san._on_acquire(self)
        return got

    def release(self) -> None:
        self._san._on_release(self)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedLock({self.name!r})"


class _VarState:
    __slots__ = ("state", "owner", "lockset", "last")

    def __init__(self, owner: int, last: Tuple[str, str]) -> None:
        self.state = _EXCLUSIVE
        self.owner = owner
        self.lockset: Optional[FrozenSet[str]] = None
        self.last = last  # (thread name, call site)


class RaceSanitizer:
    """Dynamic lockset refinement over instrumented objects.

    Thread-safe; its own bookkeeping lock is a leaf (nothing else is
    ever acquired while holding it), so instrumenting cannot introduce
    the deadlocks it is hunting.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()
        self._tls = threading.local()
        self._states: Dict[str, _VarState] = {}
        self._reported: Set[str] = set()
        self._order_pairs: Set[Tuple[str, str]] = set()
        self._order_sites: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._order_reported: Set[FrozenSet[str]] = set()
        self._violations: List[Diagnostic] = []
        self._next_tid = 0
        self.accesses = 0
        self.barriers = 0
        self.locks_tracked = 0

    # -- per-thread state ---------------------------------------------------

    def _thread_id(self) -> int:
        """A never-reused id for the current thread.

        ``threading.get_ident()`` is recycled as soon as a thread
        exits, which would make a back-to-back successor look like the
        EXCLUSIVE owner and silently skip refinement — the detector
        must not depend on allocator luck.
        """
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            with self._meta:
                self._next_tid += 1
                tid = self._next_tid
            self._tls.tid = tid
        return tid

    def _held(self) -> List[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _journal(self) -> List[str]:
        log = getattr(self._tls, "journal", None)
        if log is None:
            log = self._tls.journal = []
        return log

    # -- lock hooks ---------------------------------------------------------

    def _on_acquire(self, lock: TrackedLock) -> None:
        held = self._held()
        name = lock.name
        prior = [h for h in held if h != name]
        if not (lock.reentrant and name in held):
            with self._meta:
                for h in prior:
                    pair = (h, name)
                    if pair not in self._order_pairs:
                        self._order_pairs.add(pair)
                        self._order_sites[pair] = (
                            threading.current_thread().name, _call_site()[2])
                    rev = (name, h)
                    key = frozenset((h, name))
                    if rev in self._order_pairs and \
                            key not in self._order_reported:
                        self._order_reported.add(key)
                        here = self._order_sites[pair]
                        there = self._order_sites[rev]
                        fname, lineno, _ = _call_site()
                        self._violations.append(Diagnostic(
                            rule="RACE102",
                            severity=RULES["RACE102"].severity,
                            message=(
                                f"lock-order inversion at runtime: "
                                f"'{h}' held while acquiring '{name}' "
                                f"[{here[0]} at {here[1]}] but '{name}' "
                                f"held while acquiring '{h}' "
                                f"[{there[0]} at {there[1]}]"),
                            where=f"{h} <-> {name}",
                            file=fname, line=lineno,
                            fix="acquire locks in hierarchy order "
                                "(docs/LINT.md)",
                        ))
        held.append(name)
        self._journal().append(name)

    def _on_release(self, lock: TrackedLock) -> None:
        held = self._held()
        if lock.name in held:
            # Remove the innermost hold (LIFO discipline assumed).
            for i in range(len(held) - 1, -1, -1):
                if held[i] == lock.name:
                    del held[i]
                    break

    # -- public wiring -------------------------------------------------------

    def wrap_lock(self, name: str, inner: Optional[Any] = None,
                  reentrant: bool = False) -> TrackedLock:
        """A tracked lock; pass the existing lock object as ``inner``."""
        with self._meta:
            self.locks_tracked += 1
        return TrackedLock(self, name, inner=inner, reentrant=reentrant)

    def wrap_method(self, obj: Any, method: str, var: str,
                    write: bool = True,
                    only_if_locked: bool = False) -> None:
        """Shadow ``obj.method`` with an access-hooked wrapper.

        The wrapper attributes to the access every lock held at entry
        plus every tracked lock acquired during the call (see module
        docstring).  Instance-dict shadowing keeps the class untouched.

        ``only_if_locked`` skips the access note when the call acquired
        no tracked lock and none was held at entry — for methods with a
        fast path that never touches the protected state (the bus's
        ``publish`` returns before reading the handler map when nothing
        is subscribed; charging ``var`` with an empty lockset there
        would be a false positive, not a found race).
        """
        orig: Callable[..., Any] = getattr(obj, method)
        san = self

        @functools.wraps(orig)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            journal = san._journal()
            depth = getattr(san._tls, "depth", 0)
            san._tls.depth = depth + 1
            marker = len(journal)
            try:
                return orig(*args, **kwargs)
            finally:
                acquired = frozenset(journal[marker:])
                san._tls.depth = depth
                if depth == 0:
                    del journal[:]
                if not only_if_locked or acquired or san._held():
                    san.note_access(var, write=write,
                                    extra_locks=acquired)

        setattr(obj, method, wrapper)

    def note_access(self, var: str, write: bool,
                    extra_locks: FrozenSet[str] = frozenset()) -> None:
        """Record one access to ``var`` under the current lockset."""
        lockset = frozenset(self._held()) | extra_locks
        tid = self._thread_id()
        me = (threading.current_thread().name, _call_site()[2])
        with self._meta:
            self.accesses += 1
            st = self._states.get(var)
            if st is None:
                self._states[var] = _VarState(owner=tid, last=me)
                return
            if st.state == _EXCLUSIVE and st.owner == tid:
                st.last = me
                return
            # A second thread is involved: refine the candidate lockset.
            st.lockset = lockset if st.lockset is None \
                else (st.lockset & lockset)
            if write:
                st.state = _SHARED_MODIFIED
            elif st.state == _EXCLUSIVE:
                st.state = _SHARED
            if st.state == _SHARED_MODIFIED and not st.lockset \
                    and var not in self._reported:
                self._reported.add(var)
                fname, lineno, _ = _call_site()
                self._violations.append(Diagnostic(
                    rule="RACE101",
                    severity=RULES["RACE101"].severity,
                    message=(
                        f"candidate lockset of '{var}' is empty: "
                        f"{'write' if write else 'read'} by {me[0]} at "
                        f"{me[1]} races prior access by {st.last[0]} at "
                        f"{st.last[1]} with no common lock"),
                    where=var, file=fname, line=lineno,
                    fix="guard every access with one lock, or fence the "
                        "phases with sanitizer.barrier()",
                ))
            st.last = me

    def barrier(self, label: str = "") -> None:
        """Happens-before fence: all variable states reset to VIRGIN.

        Call where the program genuinely synchronizes (the fleet's
        ``pool.map`` join between phases); accesses on opposite sides
        of a barrier are ordered and must not refine locksets against
        each other.
        """
        with self._meta:
            self.barriers += 1
            self._states.clear()

    # -- canned instrumentation for the repro's shared objects ---------------

    def instrument_metrics(self, registry: Any, name: str = "registry") -> None:
        """Track the registry lock, its map, and every instrument."""
        registry._lock = self.wrap_lock(
            f"MetricsRegistry._lock", inner=registry._lock)
        san = self

        orig_goc = registry._get_or_create

        @functools.wraps(orig_goc)
        def get_or_create(*args: Any, **kwargs: Any) -> Any:
            journal = san._journal()
            depth = getattr(san._tls, "depth", 0)
            san._tls.depth = depth + 1
            marker = len(journal)
            try:
                metric = orig_goc(*args, **kwargs)
            finally:
                acquired = frozenset(journal[marker:])
                san._tls.depth = depth
                if depth == 0:
                    del journal[:]
                san.note_access(f"{name}._metrics", write=True,
                                extra_locks=acquired)
            san.instrument_metric(metric)
            return metric

        registry._get_or_create = get_or_create
        for metric in registry.metrics():
            self.instrument_metric(metric)

    def instrument_metric(self, metric: Any) -> None:
        """Track one Counter/Gauge/Histogram instance."""
        if isinstance(metric._lock, TrackedLock):
            return
        metric._lock = self.wrap_lock(
            f"_Metric._lock[{metric.name}]", inner=metric._lock)
        var = f"metric[{metric.name}]"
        for method in ("inc", "dec", "set", "observe", "reset"):
            if hasattr(type(metric), method):
                self.wrap_method(metric, method, var, write=True)

    def instrument_bus(self, bus: Any, name: str = "bus") -> None:
        """Track the event bus lock, subscriptions, and dispatch."""
        bus._lock = self.wrap_lock("EventBus._lock", inner=bus._lock)
        self.wrap_method(bus, "subscribe", f"{name}.handlers", write=True)
        self.wrap_method(bus, "unsubscribe", f"{name}.handlers", write=True)
        self.wrap_method(bus, "publish", f"{name}.handlers", write=False,
                         only_if_locked=True)

    def instrument_queue(self, queue: Any, name: str = "queue") -> None:
        """Track a BoundedQueue/PriorityBoundedQueue's store.

        The queues are deliberately lock-free (serial-phase
        discipline); the sanitizer proves that discipline holds at
        runtime — any cross-thread access inside one phase empties the
        lockset immediately.
        """
        var = f"queue[{name}]"
        for method in ("offer", "push", "pop"):
            if hasattr(type(queue), method):
                self.wrap_method(queue, method, var, write=True)

    def instrument_shard(self, shard: Any) -> None:
        """Track a TenantShard's phase-confined state."""
        var = f"shard[{shard.tenant}]"
        for method in ("ingest", "process", "sweep"):
            if hasattr(type(shard), method):
                self.wrap_method(shard, method, var, write=True)

    def instrument_fleet(self, plane: Any) -> None:
        """Wire up a FleetControlPlane's shared objects in one call."""
        if getattr(plane, "registry", None) is not None:
            self.instrument_metrics(plane.registry)
        if getattr(plane, "bus", None) is not None:
            self.instrument_bus(plane.bus)
        central = getattr(plane, "central", None)
        if central is not None:
            self.instrument_queue(central, name="central")
        for shard in getattr(plane, "shards", ()):
            self.instrument_shard(shard)

    # -- results -------------------------------------------------------------

    @property
    def violations(self) -> Tuple[Diagnostic, ...]:
        with self._meta:
            return tuple(self._violations)

    def report(self) -> LintReport:
        """All violations as a standard lint report (exit 2 on ERROR)."""
        return LintReport(self.violations)

    def summary(self) -> Dict[str, int]:
        with self._meta:
            return {
                "accesses": self.accesses,
                "tracked_vars": len(self._states) + len(self._reported),
                "locks": self.locks_tracked,
                "barriers": self.barriers,
                "violations": len(self._violations),
            }
