"""Pure-static lint rules over workflow specifications.

These checks need no log and no execution: they read the graph shape
and the declared read/write sets of one or more
:class:`~repro.workflow.spec.WorkflowSpec` objects (a *system* of
workflows — cross-workflow rules look at shared object names, the
single-copy data of Theorem 4).

Structural defects (SPEC001) are reported for
:class:`~repro.workflow.serialize.WorkflowDocument` inputs by
attempting the build and converting each collected constructor problem
into a diagnostic — lint output and constructor errors agree by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import WorkflowSpecError
from repro.lint.diagnostics import Diagnostic, RULES, Severity
from repro.workflow.expr import ExprError
from repro.workflow.analysis import damage_radius
from repro.workflow.dependency import ControlDependencies
from repro.workflow.serialize import WorkflowDocument
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "SpecLintConfig",
    "config_from_document",
    "lint_specs",
    "lint_documents",
]


@dataclass(frozen=True)
class SpecLintConfig:
    """Tunables for the spec lint pass.

    Attributes
    ----------
    allow:
        Rule ids to suppress entirely (per-workflow allowlists travel
        inside the workflow document's ``lint`` mapping).
    blast_warn_fraction:
        SPEC106 warns when one task's prospective damage radius covers
        more than this fraction of all tasks in the system.
    blast_error_fraction:
        When set, SPEC106 escalates to ERROR past this fraction
        (``None`` disables escalation).
    """

    allow: FrozenSet[str] = frozenset()
    blast_warn_fraction: float = 0.6
    blast_error_fraction: Optional[float] = None


def config_from_document(
    doc: WorkflowDocument,
    base: Optional[SpecLintConfig] = None,
) -> SpecLintConfig:
    """Merge a document's ``lint`` metadata over ``base``.

    Recognized keys: ``allow`` (list of rule ids),
    ``blast_warn_fraction``, ``blast_error_fraction``.  Unknown keys
    are ignored (forward compatibility).
    """
    base = base if base is not None else SpecLintConfig()
    meta: Mapping[str, Any] = getattr(doc, "lint", None) or {}
    allow = base.allow | frozenset(
        str(r) for r in meta.get("allow", ())
    )
    warn = meta.get("blast_warn_fraction", base.blast_warn_fraction)
    error = meta.get("blast_error_fraction", base.blast_error_fraction)
    return SpecLintConfig(
        allow=allow,
        blast_warn_fraction=float(warn),
        blast_error_fraction=None if error is None else float(error),
    )


def _where(wf: str, task: Optional[str] = None) -> str:
    if task is None:
        return f"workflow '{wf}'"
    return f"workflow '{wf}' task '{task}'"


def _diag(rule: str, where: str, message: str, fix: str = "",
          severity: Optional[Severity] = None) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=severity if severity is not None else RULES[rule].severity,
        message=message,
        where=where,
        fix=fix,
    )


# -- rule implementations -----------------------------------------------------


def _reaches_end(spec: WorkflowSpec) -> FrozenSet[str]:
    """Tasks from which at least one end node is reachable."""
    can: Set[str] = set(spec.ends)
    changed = True
    while changed:
        changed = False
        for task in spec.tasks:
            if task in can:
                continue
            if any(s in can for s in spec.successors(task)):
                can.add(task)
                changed = True
    return frozenset(can)


def _dead_end_tasks(spec: WorkflowSpec) -> List[Diagnostic]:
    """SPEC101: tasks that cannot reach any end node."""
    can = _reaches_end(spec)
    out = []
    for task in sorted(set(spec.tasks) - can):
        out.append(_diag(
            "SPEC101", _where(spec.workflow_id, task),
            f"task '{task}' cannot reach any end node — the instance "
            "would loop forever once control enters it",
            fix="add an exit edge from the cycle region or remove "
                "the task",
        ))
    return out


def _data_flow_index(
    specs: Sequence[WorkflowSpec],
) -> Tuple[Dict[str, List[Tuple[str, str]]],
           Dict[str, List[Tuple[str, str]]]]:
    """Writers and readers of every object name, across the system."""
    writers: Dict[str, List[Tuple[str, str]]] = {}
    readers: Dict[str, List[Tuple[str, str]]] = {}
    for spec in specs:
        for task_id in sorted(spec.tasks):
            task = spec.task(task_id)
            for name in sorted(task.writes):
                writers.setdefault(name, []).append(
                    (spec.workflow_id, task_id)
                )
            for name in sorted(task.reads):
                readers.setdefault(name, []).append(
                    (spec.workflow_id, task_id)
                )
    return writers, readers


def _dead_and_phantom_data(
    specs: Sequence[WorkflowSpec],
) -> List[Diagnostic]:
    """SPEC102 (written, never read) and SPEC103 (read, never written)."""
    writers, readers = _data_flow_index(specs)
    out = []
    for name in sorted(set(writers) - set(readers)):
        who = ", ".join(f"{wf}/{t}" for wf, t in writers[name])
        wf, task = writers[name][0]
        out.append(_diag(
            "SPEC102", _where(wf, task),
            f"object '{name}' is written (by {who}) but read by no "
            "task in the system",
            fix="treat it as a declared workflow output, or drop the "
                "write",
        ))
    for name in sorted(set(readers) - set(writers)):
        who = ", ".join(f"{wf}/{t}" for wf, t in readers[name])
        wf, task = readers[name][0]
        out.append(_diag(
            "SPEC103", _where(wf, task),
            f"object '{name}' is read (by {who}) but written by no "
            "task — it must exist as initial data",
            fix="seed it in the initial store, or fix the object name",
        ))
    return out


def _branch_contention(
    specs: Sequence[WorkflowSpec],
) -> List[Diagnostic]:
    """SPEC104: branch decisions reading single-copy shared data."""
    writers, _ = _data_flow_index(specs)
    out = []
    for spec in specs:
        for branch in sorted(spec.branch_nodes):
            task = spec.task(branch)
            for name in sorted(task.reads):
                foreign = [
                    (wf, t) for wf, t in writers.get(name, ())
                    if wf != spec.workflow_id
                ]
                if not foreign:
                    continue
                who = ", ".join(f"{wf}/{t}" for wf, t in foreign)
                out.append(_diag(
                    "SPEC104", _where(spec.workflow_id, branch),
                    f"branch '{branch}' decides on object '{name}' "
                    f"also written by {who} — a Theorem 4 contention "
                    "hotspot: the branch's whole control region waits "
                    "behind any recovery touching that object",
                    fix="give the branch its own copy of the decision "
                        "input, or accept the recovery stall",
                ))
    return out


def _undo_ambiguity(
    specs: Sequence[WorkflowSpec],
) -> List[Diagnostic]:
    """SPEC105: Theorem 1 condition 4 can trigger.

    A control-dependent (skippable) task writes an object some *other*
    task reads: if an attack flips its controlling branch, every
    reader becomes a candidate undo resolvable only by re-execution.
    """
    _, readers = _data_flow_index(specs)
    out = []
    for spec in specs:
        control = ControlDependencies(spec)
        for task_id in sorted(spec.tasks):
            if not control.controllers_of(task_id):
                continue  # unavoidable: never skipped, cond. 4 moot
            task = spec.task(task_id)
            for name in sorted(task.writes):
                others = [
                    (wf, t) for wf, t in readers.get(name, ())
                    if (wf, t) != (spec.workflow_id, task_id)
                ]
                if not others:
                    continue
                who = ", ".join(f"{wf}/{t}" for wf, t in others)
                ctrl = ", ".join(sorted(control.controllers_of(task_id)))
                out.append(_diag(
                    "SPEC105", _where(spec.workflow_id, task_id),
                    f"skippable task '{task_id}' (controlled by "
                    f"{ctrl}) writes '{name}' read by {who}: an "
                    "attack on the branch makes those readers "
                    "Theorem 1 condition 4 undo candidates",
                    fix="expect candidate undos here; pre-stage the "
                        "alternative path's outputs if recovery "
                        "latency matters",
                ))
    return out


def _blast_radius(
    specs: Sequence[WorkflowSpec],
    config: SpecLintConfig,
) -> List[Diagnostic]:
    """SPEC106: worst-case damage footprint past the threshold."""
    total = sum(len(spec.tasks) for spec in specs)
    if total == 0:
        return []
    out = []
    for spec in specs:
        for task_id in sorted(spec.tasks):
            radius = damage_radius(specs, (spec.workflow_id, task_id))
            fraction = radius.fraction_of(total)
            if fraction <= config.blast_warn_fraction:
                continue
            severity = None
            if (config.blast_error_fraction is not None
                    and fraction > config.blast_error_fraction):
                severity = Severity.ERROR
            out.append(_diag(
                "SPEC106", _where(spec.workflow_id, task_id),
                f"compromising '{task_id}' can damage "
                f"{radius.size}/{total} tasks "
                f"({fraction:.0%} of the system; threshold "
                f"{config.blast_warn_fraction:.0%})",
                fix="split the shared objects it writes, or point "
                    "IDS attention at this task first",
                severity=severity,
            ))
    return out


# -- entry points --------------------------------------------------------------


def lint_specs(
    specs: Sequence[WorkflowSpec],
    config: Optional[SpecLintConfig] = None,
) -> List[Diagnostic]:
    """Run every spec rule over a system of (valid) workflow specs.

    Pass all of a deployment's specs together: the cross-workflow
    rules (dead data, contention, blast radius) see shared object
    names only at system scope.
    """
    config = config if config is not None else SpecLintConfig()
    diags: List[Diagnostic] = []
    for spec in specs:
        diags.extend(_dead_end_tasks(spec))
    diags.extend(_dead_and_phantom_data(specs))
    diags.extend(_branch_contention(specs))
    diags.extend(_undo_ambiguity(specs))
    diags.extend(_blast_radius(specs, config))
    return [d for d in diags if d.rule not in config.allow]


def lint_documents(
    docs: Sequence[WorkflowDocument],
    config: Optional[SpecLintConfig] = None,
) -> List[Diagnostic]:
    """Lint serialized workflow documents.

    Structural problems surface as SPEC001 diagnostics — one per
    collected constructor problem, exactly the list a direct
    ``doc.build()`` would raise — and documents that do build are
    linted together as one system.  With ``config=None``, per-document
    ``lint`` metadata is merged: allowlists union, thresholds take the
    strictest (lowest) value any document specifies.
    """
    merged = config
    if merged is None:
        merged = SpecLintConfig()
        for doc in docs:
            own = config_from_document(doc)
            error_floor = [
                f for f in (merged.blast_error_fraction,
                            own.blast_error_fraction)
                if f is not None
            ]
            merged = SpecLintConfig(
                allow=merged.allow | own.allow,
                blast_warn_fraction=min(merged.blast_warn_fraction,
                                        own.blast_warn_fraction),
                blast_error_fraction=(min(error_floor) if error_floor
                                      else None),
            )
    diags: List[Diagnostic] = []
    built: List[WorkflowSpec] = []
    for doc in docs:
        try:
            built.append(doc.build())
        except (WorkflowSpecError, ExprError) as exc:
            for problem in getattr(exc, "problems", None) or (str(exc),):
                diags.append(_diag(
                    "SPEC001", _where(doc.workflow_id), str(problem),
                    fix="repair the graph; the constructor rejects "
                        "this document with the same message",
                ))
    diags.extend(lint_specs(built, merged))
    return [d for d in diags if d.rule not in merged.allow]
