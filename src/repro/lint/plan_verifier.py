"""Independent re-derivation checker for recovery plans.

The recovery analyzer (:mod:`repro.core.analyzer`) *generates* plans;
this module *verifies* them from first principles, sharing **no code**
with the generator: it never imports :mod:`repro.core.analyzer`,
:mod:`repro.core.partial_orders`, or the shared
:class:`~repro.workflow.dependency.DependencyAnalyzer` substrate they
are built on.  Every relation is re-derived directly from the raw
:class:`~repro.workflow.log.SystemLog` records and the
:class:`~repro.workflow.spec.WorkflowSpec` graphs, using different
algorithms where a choice exists (dominance by node deletion instead
of iterative dominator sets; Kahn's algorithm over explicit edge
lists) — the N-version discipline: a bug must now appear twice, in
different code, to ship silently.

Checks performed by :func:`verify_plan` against a live
:class:`~repro.core.plan.RecoveryPlan`:

- **Theorem 1 membership** — the plan's definite undo set equals
  ``B ∩ L`` plus the flow closure of ``B`` (conditions 1 and 3), and
  the candidate set equals the re-derived condition 2/4 members;
- **Theorem 2 membership** — definite redos are exactly the undone
  instances with no bad controller; candidates match condition 2;
- **Theorem 3 edges** — the partial order carries *exactly* the
  T3.1/T3.3/T3.4/T3.5 edges the log requires: any missing edge is
  unsound (dirty reads possible), any extra edge is unjustified
  (over-constraint, potential deadlock);
- **acyclicity** — re-checked with an independent topological sort.

:func:`verify_flight_log` applies the subset of checks a flight log
supports (the raw store/log are not recorded): internal consistency
of the recorded decisions, edges, schedule and executions.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.actions import Action, ActionKind
from repro.core.plan import RecoveryPlan
from repro.lint.diagnostics import Diagnostic, RULES
from repro.obs.recorder import FlightLog
from repro.workflow.log import LogRecord, SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = ["verify_plan", "verify_flight_log"]


def _diag(rule: str, where: str, message: str, fix: str = "") -> Diagnostic:
    return Diagnostic(rule=rule, severity=RULES[rule].severity,
                      message=message, where=where, fix=fix)


# -- independent spec-level control dependence --------------------------------


class _ControlModel:
    """``t_i →c t_j`` re-derived by node-deletion reachability.

    A node is *unavoidable* when no start→end path survives its
    removal; ``b`` strictly dominates ``n`` when removing ``b``
    disconnects the start from ``n``.  Then ``b →c n`` iff ``b`` is a
    branch node, ``n`` is avoidable, and ``b`` dominates ``n`` —
    the same relation :class:`~repro.workflow.dependency.
    ControlDependencies` computes via iterative dominator sets, from
    a different algorithm.
    """

    def __init__(self, spec: WorkflowSpec) -> None:
        self._tasks = sorted(spec.tasks)
        succ: Dict[str, List[str]] = {t: [] for t in self._tasks}
        indeg: Dict[str, int] = {t: 0 for t in self._tasks}
        for src, dst in sorted(spec.edges):
            succ[src].append(dst)
            indeg[dst] += 1
        self._succ = succ
        self._start = next(t for t in self._tasks if indeg[t] == 0)
        self._ends = frozenset(t for t in self._tasks if not succ[t])
        self._branches = frozenset(
            t for t in self._tasks if len(succ[t]) > 1
        )
        self._avoidable = frozenset(
            t for t in self._tasks
            if t != self._start and self._reaches_end_without(t)
        )
        self._depends_cache: Dict[Tuple[str, str], bool] = {}

    def _reachable_without(self, banned: Optional[str]) -> FrozenSet[str]:
        """Nodes reachable from the start when ``banned`` is deleted."""
        if self._start == banned:
            return frozenset()
        seen: Set[str] = {self._start}
        frontier = [self._start]
        while frontier:
            node = frontier.pop()
            for nxt in self._succ[node]:
                if nxt != banned and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def _reaches_end_without(self, banned: str) -> bool:
        return bool(self._ends & self._reachable_without(banned))

    def depends(self, controller: str, dependent: str) -> bool:
        """Does ``controller →c dependent`` hold (transitively closed)?"""
        if controller == dependent:
            return False
        if controller not in self._branches:
            return False
        if dependent not in self._avoidable:
            return False
        key = (controller, dependent)
        if key not in self._depends_cache:
            self._depends_cache[key] = (
                dependent not in self._reachable_without(controller)
            )
        return self._depends_cache[key]


# -- independent log-level derivation ------------------------------------------


class _Derivation:
    """Theorem 1/2/3 facts re-derived from raw log records."""

    def __init__(
        self,
        log: SystemLog,
        specs_by_instance: Mapping[str, WorkflowSpec],
    ) -> None:
        self._records: Tuple[LogRecord, ...] = log.normal_records()
        self._by_uid: Dict[str, LogRecord] = {
            r.uid: r for r in self._records
        }
        self._specs = dict(specs_by_instance)
        self._models: Dict[str, _ControlModel] = {}
        writer: Dict[Tuple[str, int], str] = {}
        for r in self._records:
            for name, ver in r.writes.items():
                writer[(name, ver)] = r.uid
        # Reads-from adjacency: src uid -> readers of versions it wrote.
        flow: Dict[str, Set[str]] = {r.uid: set() for r in self._records}
        for r in self._records:
            for name, ver in r.reads.items():
                src = writer.get((name, ver))
                if src is not None and src != r.uid:
                    if self._by_uid[src].seq < r.seq:
                        flow[src].add(r.uid)
        self._flow = flow

    # -- plumbing ---------------------------------------------------------

    def __contains__(self, uid: str) -> bool:
        return uid in self._by_uid

    def record(self, uid: str) -> LogRecord:
        return self._by_uid[uid]

    def trace(self, workflow_instance: str) -> Tuple[LogRecord, ...]:
        return tuple(
            r for r in self._records
            if r.instance.workflow_instance == workflow_instance
        )

    def model(self, workflow_instance: str) -> _ControlModel:
        if workflow_instance not in self._models:
            self._models[workflow_instance] = _ControlModel(
                self._specs[workflow_instance]
            )
        return self._models[workflow_instance]

    def flow_closure(self, seeds: Iterable[str]) -> FrozenSet[str]:
        seen: Set[str] = set()
        frontier = [u for u in seeds if u in self._flow]
        while frontier:
            uid = frontier.pop()
            for dst in self._flow[uid]:
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return frozenset(seen)

    def _first_later_writers(
        self, uid: str, names: Iterable[str]
    ) -> List[str]:
        """Uids of the first record after ``uid`` to overwrite each of
        ``names`` (anti/output dependence targets)."""
        src = self._by_uid[uid]
        pending: Set[str] = set(names)
        out: List[str] = []
        for r in self._records:
            if r.seq <= src.seq or not pending:
                continue
            hit = pending & set(r.writes)
            if hit:
                out.append(r.uid)
                pending -= hit
        return out

    # -- Theorem 1 ---------------------------------------------------------

    def undo_definite(self, malicious: Iterable[str]) -> FrozenSet[str]:
        """Conditions 1 and 3: ``B ∩ L`` plus its flow closure."""
        bad = frozenset(u for u in malicious if u in self._by_uid)
        return bad | self.flow_closure(bad)

    def undo_candidates(
        self, malicious: Iterable[str]
    ) -> FrozenSet[str]:
        """Conditions 2 and 4: control dependents of the closure, and
        readers of data an unexecuted alternative-path task would
        write — minus the definite set."""
        definite = self.undo_definite(malicious)
        out: Set[str] = set()
        for bad_uid in sorted(definite):
            bad = self._by_uid[bad_uid]
            wf = bad.instance.workflow_instance
            model = self.model(wf)
            # Condition 2: later same-trace control dependents.
            for r in self.trace(wf):
                if r.seq <= bad.seq:
                    continue
                if model.depends(bad.instance.task_id,
                                 r.instance.task_id):
                    out.add(r.uid)
            # Condition 4: unexecuted t_k with bad →c* t_k; readers of
            # objects t_k would write, plus their flow closure.
            spec = self._specs[wf]
            executed = {r.instance.task_id for r in self.trace(wf)}
            for t_k in sorted(spec.tasks):
                if t_k in executed:
                    continue
                if not model.depends(bad.instance.task_id, t_k):
                    continue
                writes_k = set(spec.tasks[t_k].writes)
                if not writes_k:
                    continue
                direct = [
                    r.uid for r in self._records
                    if r.uid != bad_uid and writes_k & set(r.reads)
                ]
                out.update(direct)
                out.update(
                    u for u in self.flow_closure(direct)
                    if u != bad_uid
                )
        return frozenset(out) - definite

    # -- Theorem 2 ---------------------------------------------------------

    def _bad_controllers(
        self, uid: str, undo_set: FrozenSet[str]
    ) -> FrozenSet[str]:
        dst = self._by_uid[uid]
        wf = dst.instance.workflow_instance
        model = self.model(wf)
        return frozenset(
            r.uid for r in self.trace(wf)
            if r.seq < dst.seq and r.uid in undo_set and r.uid != uid
            and model.depends(r.instance.task_id, dst.instance.task_id)
        )

    def redo_definite(self, undo_set: FrozenSet[str]) -> FrozenSet[str]:
        """Condition 1: undone instances with no bad controller."""
        return frozenset(
            uid for uid in undo_set
            if not self._bad_controllers(uid, undo_set)
        )

    def redo_candidates(
        self, undo_set: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Condition 2 dependents (redo decided by re-execution)."""
        return frozenset(
            uid for uid in undo_set
            if self._bad_controllers(uid, undo_set)
        )

    # -- Theorem 3 ---------------------------------------------------------

    def required_edges(
        self,
        undos: FrozenSet[str],
        redos: FrozenSet[str],
    ) -> Dict[Tuple[Action, Action], str]:
        """Every static Theorem 3 edge the log demands, tagged with
        the rule that demands it."""
        required: Dict[Tuple[Action, Action], str] = {}
        # T3.3: undo(t) before redo(t).
        for uid in sorted(undos & redos):
            required.setdefault(
                (Action.undo(uid), Action.redo(uid)), "T3.3"
            )
        # T3.1: log precedence between every redo pair.
        ordered = sorted(redos, key=lambda u: self._by_uid[u].seq)
        for i, earlier in enumerate(ordered):
            for later in ordered[i + 1:]:
                required.setdefault(
                    (Action.redo(earlier), Action.redo(later)), "T3.1"
                )
        # T3.4: t_i →a t_j with redo(t_i), undo(t_j).
        for uid in sorted(redos):
            src = self._by_uid[uid]
            for dst in self._first_later_writers(uid, src.reads):
                if dst in undos:
                    required.setdefault(
                        (Action.undo(dst), Action.redo(uid)), "T3.4"
                    )
        # T3.5: t_i →o t_j, both undone: undo(t_j) before undo(t_i).
        for uid in sorted(undos):
            src = self._by_uid[uid]
            for dst in self._first_later_writers(uid, src.writes):
                if dst in undos and dst != uid:
                    required.setdefault(
                        (Action.undo(dst), Action.undo(uid)), "T3.5"
                    )
        return required


def _find_cycle(
    elements: Iterable[Action],
    edges: Iterable[Tuple[Action, Action]],
) -> List[Action]:
    """Kahn's algorithm; returns the residual (cyclic) elements."""
    succ: Dict[Action, List[Action]] = {e: [] for e in elements}
    indeg: Dict[Action, int] = {e: 0 for e in succ}
    for before, after in edges:
        succ.setdefault(before, [])
        succ.setdefault(after, [])
        indeg.setdefault(before, 0)
        indeg.setdefault(after, 0)
    for before, after in edges:
        succ[before].append(after)
        indeg[after] += 1
    ready = [e for e, d in indeg.items() if d == 0]
    done = 0
    while ready:
        node = ready.pop()
        done += 1
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    return sorted(
        (e for e, d in indeg.items() if d > 0), key=str
    )


# -- entry point: live plans ----------------------------------------------------


def verify_plan(
    log: SystemLog,
    specs_by_instance: Mapping[str, WorkflowSpec],
    plan: RecoveryPlan,
    malicious: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Re-derive Theorems 1–3 from the raw log and diff the plan.

    Parameters
    ----------
    log:
        The (pre-recovery) system log the plan was computed against.
    specs_by_instance:
        Spec executed by each workflow instance in the log.
    plan:
        The plan under verification.
    malicious:
        The alert set ``B``; defaults to ``plan.alert_uids``.

    Returns an empty list when the plan is exactly what the theorems
    demand; otherwise one :class:`~repro.lint.diagnostics.Diagnostic`
    per discrepancy (all ERROR severity).
    """
    derive = _Derivation(log, specs_by_instance)
    bad = tuple(malicious if malicious is not None else plan.alert_uids)
    where = f"plan for alerts ({', '.join(bad) or '-'})"
    diags: List[Diagnostic] = []

    # Theorem 1 membership.
    undo_want = derive.undo_definite(bad)
    undo_have = frozenset(plan.undo_analysis.definite)
    for uid in sorted(undo_want - undo_have):
        diags.append(_diag(
            "PLAN001", where,
            f"instance '{uid}' is malicious or flow-infected "
            "(Theorem 1 cond. 1/3) but the plan does not undo it",
            fix="regenerate the plan; corrupt data would survive",
        ))
    for uid in sorted(undo_have - undo_want):
        diags.append(_diag(
            "PLAN002", where,
            f"plan undoes '{uid}' but no Theorem 1 condition 1/3 "
            "grounds exist in the log",
            fix="drop the undo; clean work would be destroyed",
        ))

    # Theorem 2 membership (derived from the *re-derived* undo set, so
    # a planner bug in Theorem 1 cannot mask one in Theorem 2).
    redo_want = derive.redo_definite(undo_want)
    redo_have = frozenset(plan.redo_analysis.definite)
    for uid in sorted(redo_want - redo_have):
        diags.append(_diag(
            "PLAN003", where,
            f"undone instance '{uid}' has no bad controller "
            "(Theorem 2 cond. 1) but the plan never re-executes it",
            fix="add the redo; the workflow would lose the instance",
        ))
    for uid in sorted(redo_have - redo_want):
        diags.append(_diag(
            "PLAN004", where,
            f"plan definitely redoes '{uid}' but Theorem 2 cond. 1 "
            "does not apply (bad controller exists, or not undone)",
            fix="demote it to a candidate resolved by re-execution",
        ))

    # Candidate membership (Theorem 1 cond. 2/4; Theorem 2 cond. 2).
    cand_want = derive.undo_candidates(bad)
    cand_have = frozenset(plan.undo_analysis.candidates)
    if cand_want != cand_have:
        missing = ", ".join(sorted(cand_want - cand_have)) or "-"
        extra = ", ".join(sorted(cand_have - cand_want)) or "-"
        diags.append(_diag(
            "PLAN009", where,
            f"undo candidate set mismatch (Theorem 1 cond. 2/4): "
            f"missing {{{missing}}}, spurious {{{extra}}}",
            fix="regenerate the plan",
        ))
    redo_cand_want = derive.redo_candidates(undo_want)
    redo_cand_have = frozenset(plan.redo_analysis.candidate_uids)
    if redo_cand_want != redo_cand_have:
        missing = ", ".join(sorted(redo_cand_want - redo_cand_have)) or "-"
        extra = ", ".join(sorted(redo_cand_have - redo_cand_want)) or "-"
        diags.append(_diag(
            "PLAN009", where,
            f"redo candidate set mismatch (Theorem 2 cond. 2): "
            f"missing {{{missing}}}, spurious {{{extra}}}",
            fix="regenerate the plan",
        ))

    # Order elements: exactly one action per definite set member.
    expected_elements = (
        {Action.undo(u) for u in undo_want}
        | {Action.redo(u) for u in redo_want}
    )
    actual_elements = set(plan.order.elements())
    if expected_elements != actual_elements:
        missing = ", ".join(
            sorted(str(a) for a in expected_elements - actual_elements)
        ) or "-"
        extra = ", ".join(
            sorted(str(a) for a in actual_elements - expected_elements)
        ) or "-"
        diags.append(_diag(
            "PLAN008", where,
            f"partial-order elements disagree with the Theorem 1/2 "
            f"sets: missing {{{missing}}}, spurious {{{extra}}}",
            fix="rebuild the order over the definite undo/redo sets",
        ))

    # Theorem 3 edge soundness and completeness.
    required = derive.required_edges(undo_want, redo_want)
    actual_edges = set(plan.order.edges())
    for (before, after), rule in sorted(
        required.items(), key=lambda kv: (kv[1], str(kv[0]))
    ):
        if (before, after) not in actual_edges:
            diags.append(_diag(
                "PLAN005", where,
                f"rule {rule} requires {before} ≺ {after} but the "
                "plan's order lacks the edge",
                fix="add the edge; schedules violating it read dirty "
                    "or stale versions",
            ))
    for before, after in sorted(
        actual_edges - set(required), key=lambda e: (str(e[0]), str(e[1]))
    ):
        diags.append(_diag(
            "PLAN006", where,
            f"edge {before} ≺ {after} is justified by no Theorem 3 "
            "rule over this log",
            fix="drop the edge; it over-constrains the scheduler",
        ))

    # Acyclicity, re-checked independently.
    residue = _find_cycle(actual_elements, actual_edges)
    if residue:
        sample = ", ".join(str(a) for a in residue[:4])
        diags.append(_diag(
            "PLAN007", where,
            f"the plan's partial order is cyclic among "
            f"{len(residue)} action(s), e.g. {sample}",
            fix="no linear extension exists; the scheduler would stall",
        ))
    return diags


# -- entry point: flight logs ---------------------------------------------------


def verify_flight_log(flight: FlightLog) -> List[Diagnostic]:
    """Consistency-check the recovery provenance in a flight log.

    A flight log records decisions, edges, the realized schedule and
    executions — but not the raw store or log — so the checks here
    are the internal-consistency subset of :func:`verify_plan`:
    recorded edges acyclic (PLAN020), Theorem 3.3 edges present
    (PLAN021), the realized schedule a linear extension of the
    recorded edges (PLAN022), no executions outside the recorded plan
    (PLAN023), and definite redos inside definite undos (PLAN024).
    """
    from repro.obs.provenance import replay

    run = replay(flight)
    where = f"flight log '{flight.label or '?'}'"
    diags: List[Diagnostic] = []

    edges = [(before, after) for _rule, before, after in run.order_edges]
    elements = sorted({a for e in edges for a in e})

    # PLAN020: recorded edge set must admit a schedule at all.
    residue = _find_cycle(elements, edges)
    if residue:
        sample = ", ".join(str(a) for a in residue[:4])
        diags.append(_diag(
            "PLAN020", where,
            f"recorded ordering edges contain a cycle among "
            f"{len(residue)} action(s), e.g. {sample}",
            fix="the recorded run cannot have scheduled this soundly",
        ))

    # PLAN021: T3.3 for every instance both undone and redone.
    edge_pairs = {(before, after) for before, after in edges}
    for uid in sorted(run.plan_undo & run.plan_redo):
        if (f"undo({uid})", f"redo({uid})") not in edge_pairs:
            diags.append(_diag(
                "PLAN021", where,
                f"'{uid}' is both undone and redone but the log "
                "records no undo≺redo constraint for it (Theorem 3.3)",
                fix="the plan that produced this log dropped a "
                    "mandatory edge",
            ))

    # PLAN022: realized dispatch order respects every recorded edge.
    counts: Dict[str, int] = {}
    for action in run.schedule:
        counts[action] = counts.get(action, 0) + 1
    position = {
        action: i for i, action in enumerate(run.schedule)
        if counts[action] == 1
    }
    for before, after in sorted(edge_pairs):
        if before in position and after in position:
            if position[before] >= position[after]:
                diags.append(_diag(
                    "PLAN022", where,
                    f"schedule dispatched {after} (slot "
                    f"{position[after]}) before {before} (slot "
                    f"{position[before]}) against a recorded edge",
                    fix="scheduler and plan disagree — replay the "
                        "log and bisect",
                ))

    # PLAN023: executions covered by recorded decisions.
    undo_allowed = run.plan_undo | run.undo_candidates \
        | run.redo_candidates
    for uid in sorted(run.executed_undone):
        if uid not in undo_allowed:
            diags.append(_diag(
                "PLAN023", where,
                f"healer undid '{uid}' "
                f"({run.executed_undone[uid] or 'no reason'}) but no "
                "recorded Theorem 1 decision covers it",
                fix="decision events are missing or recovery ran "
                    "outside the plan",
            ))
    redo_allowed = run.plan_redo | run.redo_candidates \
        | run.undo_candidates
    for uid in sorted(run.executed_redone):
        if run.executed_redone[uid] == "new":
            continue  # first-time alternative-path execution
        if uid not in redo_allowed:
            diags.append(_diag(
                "PLAN023", where,
                f"healer redid '{uid}' but no recorded Theorem 2 "
                "decision covers it",
                fix="decision events are missing or recovery ran "
                    "outside the plan",
            ))

    # PLAN024: Theorem 2 splits the undo set.
    for uid in sorted(run.plan_redo - run.plan_undo):
        diags.append(_diag(
            "PLAN024", where,
            f"'{uid}' is a definite redo but not a definite undo — "
            "Theorem 2 only re-executes rolled-back instances",
            fix="the producing analyzer violated Theorem 2's premise",
        ))
    return diags
