"""AST lint for replay-poisonous constructs.

Deterministic replay (:mod:`repro.obs.provenance`) re-executes a run
from a flight log and expects byte-identical decisions.  Anything that
reads ambient state — wall clocks, the global ``random`` generator,
calendar time, hardware entropy, hash-seed-dependent set iteration —
silently breaks that contract.  This pass walks the stdlib ``ast`` of
each file and flags such constructs with DET-series diagnostics.

Both *calls* and bare *references* to poisonous functions are flagged:
``clock=time.monotonic`` as a default argument injects the wall clock
just as surely as ``time.monotonic()`` does.

Deliberate uses are silenced in place with a pragma on the flagged
line::

    t0 = time.perf_counter()  # lint: allow[DET001] host-side timing only

The pragma takes a comma-separated rule list (``allow[DET001,DET004]``)
and anything after the closing bracket is free-form justification.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.lint.diagnostics import Diagnostic, RULES

__all__ = ["lint_source", "lint_paths"]

_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")

#: Wall-clock reads (DET001).
_CLOCKS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
})

#: Module-level functions of the shared global generator (DET002).
_GLOBAL_RANDOM: FrozenSet[str] = frozenset(
    f"random.{fn}" for fn in (
        "random", "uniform", "randint", "randrange", "getrandbits",
        "randbytes", "choice", "choices", "shuffle", "sample", "seed",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "betavariate", "gammavariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate",
    )
)

#: Calendar time (DET003).
_CALENDAR: FrozenSet[str] = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Unseedable entropy (DET005).
_ENTROPY: FrozenSet[str] = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})


def _classify(dotted: str) -> Optional[str]:
    """Map a resolved dotted name to the rule it violates, if any."""
    if dotted in _CLOCKS:
        return "DET001"
    if dotted in _GLOBAL_RANDOM:
        return "DET002"
    if dotted in _CALENDAR:
        return "DET003"
    if dotted in _ENTROPY or dotted.startswith("secrets."):
        return "DET005"
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Diagnostic] = []
        # Local alias -> canonical dotted prefix, from import statements.
        self.aliases: Dict[str, str] = {}
        self._scope: List[str] = []
        self._consumed: set = set()

    # -- name resolution ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    # -- location plumbing -------------------------------------------------

    def _here(self) -> str:
        if self._scope:
            return f"{self.filename}::{'.'.join(self._scope)}"
        return self.filename

    def _emit(self, rule: str, node: ast.AST, message: str,
              fix: str) -> None:
        self.findings.append(Diagnostic(
            rule=rule,
            severity=RULES[rule].severity,
            message=message,
            where=self._here(),
            file=self.filename,
            line=getattr(node, "lineno", None),
            fix=fix,
        ))

    def _with_scope(self, name: str, node: ast.AST) -> None:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._with_scope(node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._with_scope(node.name, node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._with_scope(node.name, node)

    # -- DET001/2/3/5: calls and references --------------------------------

    _FIXES = {
        "DET001": "inject a clock parameter (ManualClock in tests)",
        "DET002": "use an explicit random.Random(seed) instance",
        "DET003": "pass the timestamp in from the caller",
        "DET005": "derive ids/bytes from the seeded generator",
    }

    def _check_callable(self, node: ast.AST, called: bool) -> None:
        dotted = self._resolve(node)
        if dotted is None:
            return
        rule = _classify(dotted)
        if rule is None:
            return
        verb = "call of" if called else "reference to"
        self._emit(
            rule, node,
            f"{verb} '{dotted}' — {RULES[rule].summary}",
            self._FIXES[rule],
        )

    def visit_Call(self, node: ast.Call) -> None:
        self._consumed.add(id(node.func))
        self._check_callable(node.func, called=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A bare reference (not the callee of a Call, not a prefix of a
        # longer attribute chain) still leaks the nondeterministic
        # function into whatever it is assigned or passed to.
        if id(node) not in self._consumed:
            self._check_callable(node, called=False)
        self._consumed.add(id(node.value))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (id(node) not in self._consumed
                and isinstance(node.ctx, ast.Load)):
            self._check_callable(node, called=False)
        self.generic_visit(node)

    # -- DET004: iteration over unordered sets ------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # Set algebra (a | b, a - b, ...) yields a set when either
            # side provably is one.
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                "DET004", iter_node,
                "iteration over an unordered set expression — order "
                "follows PYTHONHASHSEED, not the data",
                "wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def _allowed_rules(lines: Sequence[str], lineno: Optional[int]) -> FrozenSet[str]:
    if lineno is None or not 1 <= lineno <= len(lines):
        return frozenset()
    match = _PRAGMA.search(lines[lineno - 1])
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text; honours ``# lint: allow[...]``."""
    tree = ast.parse(source, filename=filename)
    visitor = _Visitor(filename)
    visitor.visit(tree)
    lines = source.splitlines()
    return [
        d for d in visitor.findings
        if d.rule not in _allowed_rules(lines, d.line)
    ]


def lint_paths(
    paths: Iterable[Union[str, Path]],
) -> List[Diagnostic]:
    """Lint ``.py`` files; directories are walked recursively."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Diagnostic] = []
    for path in files:
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), str(path))
        )
    return findings
