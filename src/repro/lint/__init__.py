"""Static verification of workflow specs, recovery plans, and
replay-critical code.

The recovery analyzer *produces* plans; this package *checks* them —
with code that shares nothing with the producer (the N-version /
independent-checker discipline of recovery systems).  Three analysis
passes, all emitting typed :class:`~repro.lint.diagnostics.Diagnostic`
records renderable as text, JSON and SARIF 2.1.0:

- :mod:`repro.lint.spec_rules` — pure-static checks over
  :class:`~repro.workflow.spec.WorkflowSpec` graphs and read/write
  sets (unreachable structure, dead data, Theorem 4 contention
  hotspots, Theorem 1 condition 4 ambiguity, blast radius);
- :mod:`repro.lint.plan_verifier` — an independent re-derivation
  checker for :class:`~repro.core.plan.RecoveryPlan` objects
  (Theorem 1/2 membership, Theorem 3 edge soundness, acyclicity),
  with no imports from the code that generated the plan;
- :mod:`repro.lint.determinism` — a stdlib-``ast`` pass flagging
  calls poisonous to seeded replay (wall clocks, module-level
  ``random``, set-iteration order), with an allowlist pragma
  ``# lint: allow[RULE]``;
- :mod:`repro.lint.races` — an interprocedural lockset / lock-order
  analysis over the threaded parts of the tree (RACE001-RACE005:
  unguarded shared writes, inconsistent guards, lock-order inversion,
  locks held across blocking calls, mutable state escaping to
  threads), honouring the same pragma;
- :mod:`repro.lint.sanitizer` — the *dynamic* complement: an opt-in
  Eraser-style lockset sanitizer (RACE101/RACE102) instrumenting the
  registry, bus, queues and fleet shards at runtime.

The ``repro-workflow lint`` CLI verb exposes the static passes
(``lint code --all`` merges determinism + races into one SARIF log);
``repro-workflow fleet --sanitize`` runs the dynamic one.  Exit code
2 signals ERROR-level findings.
"""

from repro.lint.diagnostics import (
    combine_sarif,
    Diagnostic,
    LintReport,
    RuleInfo,
    RULES,
    Severity,
)
from repro.lint.determinism import lint_paths, lint_source
from repro.lint.plan_verifier import verify_flight_log, verify_plan
from repro.lint.races import RaceAnalysis, analyze_paths, lint_races
from repro.lint.sanitizer import RaceSanitizer, TrackedLock
from repro.lint.spec_rules import (
    SpecLintConfig,
    config_from_document,
    lint_documents,
    lint_specs,
)

__all__ = [
    "combine_sarif",
    "Diagnostic",
    "LintReport",
    "RuleInfo",
    "RULES",
    "Severity",
    "SpecLintConfig",
    "config_from_document",
    "lint_documents",
    "lint_specs",
    "lint_paths",
    "lint_source",
    "lint_races",
    "analyze_paths",
    "RaceAnalysis",
    "RaceSanitizer",
    "TrackedLock",
    "verify_flight_log",
    "verify_plan",
]
