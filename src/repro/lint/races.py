"""Static lockset / lock-order analysis (RACE001–RACE005).

The fleet control plane runs real threads over shared state; the
workers=K ≡ workers=1 guarantee is only as strong as the locking
discipline of :mod:`repro.obs` and :mod:`repro.fleet`.  This pass
verifies that discipline before runtime, in the spirit of static
workflow-soundness checking applied to our own implementation:

1. **Thread roots.**  Callables handed to ``threading.Thread`` /
   ``Timer``, executor/pool ``submit``/``map`` targets, ``do_*``
   methods of HTTP handler classes, and ``subscribe``/``set_hook``
   callbacks are entry points that may run off the main thread.
2. **Shared-state inventory.**  An interprocedural call graph (with
   lightweight attribute/parameter type inference) finds the instance
   attributes and module globals reachable from those roots; together
   with the implicit main thread that makes them shared (≥2 roots).
3. **Lockset analysis.**  Classes that *own* a lock (``self._lock =
   threading.Lock()`` or :func:`repro.obs.locks.make_lock`) declare
   their fields shared; every write must hold a lock.  Entry locksets
   of private helpers are the meet (intersection) over their call
   sites, so ``Gauge._set_locked`` — lexically lock-free — is still
   recognized as guarded.  A may-hold analysis builds the
   lock-acquisition graph for deadlock detection.

Rules (catalogued in :mod:`repro.lint.diagnostics`):

- RACE001 — unguarded write to shared state (lock-owning class field
  written with no lock held, or a shared module global).
- RACE002 — inconsistent guard: the same field protected by different
  locks on different paths.
- RACE003 — lock-order inversion: a cycle in the acquisition graph
  (or a non-reentrant self-acquire).
- RACE004 — lock held across a blocking call (sleep/join/wait/serve).
- RACE005 — mutable package state escaping into a thread.

Deliberate exceptions are silenced in place with the determinism-lint
pragma convention::

    self._thread = t  # lint: allow[RACE001] owner-thread confined

Phase-confined state (the fleet's serial ingest/harvest rounds) is the
dynamic sanitizer's job (:mod:`repro.lint.sanitizer`): classes without
locks are intentionally out of scope here, because the static contract
we enforce is "if you own a lock, use it everywhere".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.diagnostics import Diagnostic, RULES
from repro.lint.determinism import _allowed_rules

__all__ = [
    "RootInfo",
    "RaceAnalysis",
    "analyze_sources",
    "analyze_paths",
    "lint_races",
]

# Lock constructors.  The dotted names are resolved through each
# module's import aliases, so ``from threading import Lock`` works too.
_LOCK_CTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "repro.obs.locks.make_lock": False,
    "repro.obs.locks.make_rlock": True,
}

# Constructors of mutable module-global containers.
_MUTABLE_CTORS = {
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
}

# Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "insert",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "update", "setdefault", "sort", "reverse",
})

# Dotted callables that block the calling thread.
_BLOCKING_DOTTED = frozenset({
    "time.sleep", "select.select", "signal.pause",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "socket.create_connection",
    "urllib.request.urlopen",
})

# Attribute suffixes that block regardless of receiver.
_BLOCKING_ATTRS = frozenset({"serve_forever", "wait", "result"})

# Attribute suffixes that block when the receiver smells like a
# thread / worker pool (``pool.map``, ``executor.submit``, ``t.join``).
_BLOCKING_POOL_ATTRS = frozenset({"join", "map", "submit", "shutdown"})
_POOLISH_HINTS = ("pool", "executor", "thread", "worker", "proc")

_TOP = None  # lattice top for the must-hold analysis


def _is_poolish(name: Optional[str]) -> bool:
    if not name:
        return False
    low = name.lower()
    return any(h in low for h in _POOLISH_HINTS)


def _ann_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation node."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _ann_name(node.value)
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        if base in ("Optional", "Union"):
            return _ann_name(inner)
        return None
    return None


@dataclass
class _ClassInfo:
    name: str
    module: str
    filename: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    lock_attrs: Dict[str, bool] = field(default_factory=dict)  # attr -> reentrant
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    ret_ann: Dict[str, str] = field(default_factory=dict)
    is_handler: bool = False  # BaseHTTPRequestHandler-style class


@dataclass
class _ModuleInfo:
    name: str
    filename: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    global_locks: Dict[str, bool] = field(default_factory=dict)  # name -> reentrant
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)


class _Summary:
    """Per-function facts gathered by the AST walk."""

    def __init__(self, key: str, module: str, filename: str,
                 class_name: Optional[str], lineno: int, public: bool) -> None:
        self.key = key
        self.module = module
        self.filename = filename
        self.class_name = class_name
        self.lineno = lineno
        self.public = public
        # (token, lineno, held) — token is "Class.attr" or "mod::NAME"
        self.writes: List[Tuple[str, int, FrozenSet[str]]] = []
        self.reads: List[Tuple[str, int, FrozenSet[str]]] = []
        # (lock token, lineno, held-before, reentrant)
        self.acquires: List[Tuple[str, int, FrozenSet[str], bool]] = []
        # (callee key, lineno, held)
        self.calls: List[Tuple[str, int, FrozenSet[str]]] = []
        # (description, lineno, held)
        self.blocking: List[Tuple[str, int, FrozenSet[str]]] = []
        # (description, lineno, escaping callee key or None)
        self.escapes: List[Tuple[str, int, Optional[str]]] = []


@dataclass(frozen=True)
class RootInfo:
    """One discovered thread entry point."""

    key: str      # function key ("Class.method" or "module::fn")
    kind: str     # thread-target | timer | pool-target | handler | callback
    file: str
    line: int


@dataclass
class RaceAnalysis:
    """Everything the static pass derived, not just the findings."""

    roots: List[RootInfo]
    #: shared item ("Class.attr" or "mod::NAME") -> sorted root keys
    #: (always includes the implicit "main" thread).
    shared: Dict[str, List[str]]
    diagnostics: List[Diagnostic]


class _Index:
    """Cross-module name/type index."""

    def __init__(self, modules: List[_ModuleInfo]) -> None:
        self.modules = {m.name: m for m in modules}
        self.classes: Dict[str, _ClassInfo] = {}
        for m in modules:
            for c in m.classes.values():
                # First definition wins; bare-name collisions are rare
                # inside one package and only degrade precision.
                self.classes.setdefault(c.name, c)
        self.functions: Dict[str, Tuple[_ModuleInfo, ast.FunctionDef]] = {}
        for m in modules:
            for fname, node in m.functions.items():
                self.functions[f"{m.name}::{fname}"] = (m, node)

    # -- inheritance-aware lookups ----------------------------------------

    def _mro(self, cls: _ClassInfo) -> List[_ClassInfo]:
        out, seen, work = [], set(), [cls]
        while work:
            c = work.pop(0)
            if c.name in seen:
                continue
            seen.add(c.name)
            out.append(c)
            for b in c.bases:
                base = self.classes.get(b)
                if base is not None:
                    work.append(base)
        return out

    def lock_owner(self, cls: _ClassInfo, attr: str) -> Optional[Tuple[_ClassInfo, bool]]:
        """The class in ``cls``'s ancestry that installs lock ``attr``."""
        for c in self._mro(cls):
            if attr in c.lock_attrs:
                return c, c.lock_attrs[attr]
        return None

    def lock_attrs(self, cls: _ClassInfo) -> Dict[str, Tuple[str, bool]]:
        """attr -> (token, reentrant) for all owned+inherited locks."""
        out: Dict[str, Tuple[str, bool]] = {}
        for c in reversed(self._mro(cls)):
            for attr, reent in c.lock_attrs.items():
                out[attr] = (f"{c.name}.{attr}", reent)
        return out

    def attr_type(self, cls: _ClassInfo, attr: str) -> Optional[str]:
        for c in self._mro(cls):
            if attr in c.attr_types:
                return c.attr_types[attr]
        return None

    def method_key(self, cls_name: str, method: str) -> Optional[str]:
        cls = self.classes.get(cls_name)
        if cls is None:
            return None
        for c in self._mro(cls):
            if method in c.methods:
                return f"{c.name}.{method}"
        return None

    def ret_ann(self, cls_name: str, method: str) -> Optional[str]:
        cls = self.classes.get(cls_name)
        if cls is None:
            return None
        for c in self._mro(cls):
            if method in c.ret_ann:
                return c.ret_ann[method]
        return None


# ---------------------------------------------------------------------------
# Phase A — structure collection
# ---------------------------------------------------------------------------

def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve_dotted(aliases: Dict[str, str], node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve_dotted(aliases, node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _ctor_of(aliases: Dict[str, str], call: ast.AST) -> Optional[str]:
    """Dotted name of the constructor when ``call`` is ``X(...)``."""
    if not isinstance(call, ast.Call):
        return None
    dotted = _resolve_dotted(aliases, call.func)
    if dotted is not None:
        return dotted
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _collect_module(name: str, filename: str, source: str) -> _ModuleInfo:
    tree = ast.parse(source, filename=filename)
    mod = _ModuleInfo(name=name, filename=filename, tree=tree)
    mod.aliases = _collect_aliases(tree)

    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            ctor = _ctor_of(mod.aliases, node.value)
            if ctor in _LOCK_CTORS:
                mod.global_locks[target] = _LOCK_CTORS[ctor]
            elif ctor in _MUTABLE_CTORS or isinstance(
                    node.value, (ast.Dict, ast.List, ast.Set,
                                 ast.ListComp, ast.DictComp, ast.SetComp)):
                mod.mutable_globals[target] = node.lineno
        elif isinstance(node, ast.FunctionDef):
            mod.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            mod.classes[node.name] = _collect_class(mod, node)
    return mod


def _collect_class(mod: _ModuleInfo, node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(name=node.name, module=mod.name,
                      filename=mod.filename, lineno=node.lineno)
    for base in node.bases:
        dotted = _resolve_dotted(mod.aliases, base) or ""
        bare = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else "")
        info.bases.append(bare)
        if "BaseHTTPRequestHandler" in dotted or \
                "BaseHTTPRequestHandler" in bare:
            info.is_handler = True
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            ann = _ann_name(item.annotation)
            if ann:
                info.attr_types[item.target.id] = ann
        elif isinstance(item, ast.FunctionDef):
            info.methods[item.name] = item
            ret = _ann_name(item.returns)
            if ret:
                info.ret_ann[item.name] = ret
            # Lock installation: self.X = threading.Lock()/make_lock(...)
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                ctor = _ctor_of(mod.aliases, stmt.value)
                if ctor not in _LOCK_CTORS:
                    continue
                for t in stmt.targets:
                    if isinstance(t, ast.Attribute) and \
                            isinstance(t.value, ast.Name) and \
                            t.value.id == "self":
                        info.lock_attrs[t.attr] = _LOCK_CTORS[ctor]
    return info


def _resolve_attr_types(index: _Index) -> None:
    """Second structural pass: infer ``self.x`` types per class."""
    for mod in index.modules.values():
        for cls in mod.classes.values():
            for mname, meth in cls.methods.items():
                params = {
                    a.arg: _ann_name(a.annotation)
                    for a in meth.args.args + meth.args.kwonlyargs
                    if a.annotation is not None
                }
                for stmt in ast.walk(meth):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for t in stmt.targets:
                        if not (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"):
                            continue
                        typ = _static_expr_type(
                            index, mod, cls, params, stmt.value)
                        if typ and t.attr not in cls.attr_types:
                            cls.attr_types[t.attr] = typ


def _static_expr_type(index: _Index, mod: _ModuleInfo, cls: _ClassInfo,
                      params: Dict[str, Optional[str]],
                      expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        typ = params.get(expr.id)
        if typ and typ in index.classes:
            return typ
        return None
    if isinstance(expr, ast.Call):
        ctor = _ctor_of(mod.aliases, expr)
        if ctor:
            bare = ctor.split(".")[-1]
            if bare in index.classes:
                return bare
        # self.registry.counter(...) -> return annotation
        if isinstance(expr.func, ast.Attribute):
            recv = expr.func.value
            if isinstance(recv, ast.Attribute) and \
                    isinstance(recv.value, ast.Name) and recv.value.id == "self":
                recv_t = index.attr_type(cls, recv.attr)
                if recv_t:
                    ret = index.ret_ann(recv_t, expr.func.attr)
                    if ret and ret in index.classes:
                        return ret
            if isinstance(recv, ast.Name):
                recv_t = params.get(recv.id)
                if recv_t:
                    ret = index.ret_ann(recv_t, expr.func.attr)
                    if ret and ret in index.classes:
                        return ret
    return None


# ---------------------------------------------------------------------------
# Phase B — per-function summaries
# ---------------------------------------------------------------------------

class _FuncWalker(ast.NodeVisitor):
    """Walks one function body, tracking held locks and local types."""

    def __init__(self, analyzer: "_Analyzer", summary: _Summary,
                 mod: _ModuleInfo, cls: Optional[_ClassInfo],
                 node: ast.FunctionDef) -> None:
        self.an = analyzer
        self.s = summary
        self.mod = mod
        self.cls = cls
        self.node = node
        self.held: List[str] = []
        self.globals_declared: Set[str] = set()
        # local name -> ("type", ClassName) | ("func", key)
        self.env: Dict[str, Tuple[str, str]] = {}
        for a in node.args.args + node.args.kwonlyargs:
            ann = _ann_name(a.annotation)
            if ann and ann in analyzer.index.classes:
                self.env[a.arg] = ("type", ann)

    # -- helpers -----------------------------------------------------------

    def _held(self) -> FrozenSet[str]:
        return frozenset(self.held)

    def _expr_type(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.name
            kind_val = self.env.get(expr.id)
            if kind_val and kind_val[0] == "type":
                return kind_val[1]
            return None
        if isinstance(expr, ast.Attribute):
            base_t = self._expr_type(expr.value)
            if base_t:
                cls = self.an.index.classes.get(base_t)
                if cls is not None:
                    return self.an.index.attr_type(cls, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            ctor = _ctor_of(self.mod.aliases, expr)
            if ctor and ctor.split(".")[-1] in self.an.index.classes:
                return ctor.split(".")[-1]
            if isinstance(expr.func, ast.Attribute):
                recv_t = self._expr_type(expr.func.value)
                if recv_t:
                    ret = self.an.index.ret_ann(recv_t, expr.func.attr)
                    if ret and ret in self.an.index.classes:
                        return ret
        return None

    def _lock_token(self, expr: ast.AST) -> Optional[Tuple[str, bool]]:
        """Resolve a with-context expression to a lock identity."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "acquire":
            expr = expr.func.value
        if isinstance(expr, ast.Name):
            if expr.id in self.mod.global_locks:
                return (f"{self.mod.name}::{expr.id}",
                        self.mod.global_locks[expr.id])
            return None
        if isinstance(expr, ast.Attribute):
            base_t = self._expr_type(expr.value)
            if base_t:
                cls = self.an.index.classes.get(base_t)
                if cls is not None:
                    owner = self.an.index.lock_owner(cls, expr.attr)
                    if owner is not None:
                        oc, reent = owner
                        return f"{oc.name}.{expr.attr}", reent
            dotted = _resolve_dotted(self.mod.aliases, expr)
            if dotted:
                mod_name, _, lock = dotted.rpartition(".")
                other = self.an.index.modules.get(mod_name)
                if other and lock in other.global_locks:
                    return f"{mod_name}::{lock}", other.global_locks[lock]
        return None

    def _resolve_callee(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            kind_val = self.env.get(func.id)
            if kind_val and kind_val[0] == "func":
                return kind_val[1]
            if func.id in self.mod.functions:
                return f"{self.mod.name}::{func.id}"
            dotted = self.mod.aliases.get(func.id)
            if dotted:
                mod_name, _, fn = dotted.rpartition(".")
                if f"{mod_name}::{fn}" in self.an.index.functions:
                    return f"{mod_name}::{fn}"
                if fn in self.an.index.classes:
                    return self.an.index.method_key(fn, "__init__")
            if func.id in self.mod.classes:
                return self.an.index.method_key(func.id, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            recv_t = self._expr_type(func.value)
            if recv_t:
                return self.an.index.method_key(recv_t, func.attr)
            dotted = _resolve_dotted(self.mod.aliases, func)
            if dotted:
                mod_name, _, fn = dotted.rpartition(".")
                if f"{mod_name}::{fn}" in self.an.index.functions:
                    return f"{mod_name}::{fn}"
        return None

    def _describe_target(self, expr: ast.AST) -> str:
        try:
            return ast.unparse(expr)  # py>=3.9
        except Exception:  # pragma: no cover - unparse is stdlib on 3.9+
            return "<callable>"

    # -- nested scopes -----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        key = f"{self.s.key}.<locals>.{node.name}"
        self.env[node.name] = ("func", key)
        self.an.walk_function(key, self.mod, self.cls, node,
                              public=False, filename=self.s.filename)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # opaque; flagged at escape sites only

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # local classes are out of scope

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    # -- lock acquisition --------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            # Visit the context expression first (calls inside it happen
            # before the lock is held).
            self.visit(item.context_expr)
            resolved = self._lock_token(item.context_expr)
            if resolved is not None:
                token, reent = resolved
                self.s.acquires.append(
                    (token, item.context_expr.lineno, self._held(), reent))
                self.held.append(token)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    # -- assignments / env tracking ---------------------------------------

    def _record_write(self, token: str, lineno: int) -> None:
        self.s.writes.append((token, lineno, self._held()))

    def _handle_store_target(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store_target(elt, lineno)
            return
        if isinstance(target, ast.Starred):
            self._handle_store_target(target.value, lineno)
            return
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and target.value.id == "self" \
                and self.cls is not None:
            self._record_write(f"{self.cls.name}.{target.attr}", lineno)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and base.value.id == "self" \
                    and self.cls is not None:
                self._record_write(f"{self.cls.name}.{base.attr}", lineno)
            elif isinstance(base, ast.Name) and \
                    base.id in self.mod.mutable_globals:
                self._record_write(f"{self.mod.name}::{base.id}", lineno)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared and \
                    target.id in self.mod.mutable_globals:
                self._record_write(f"{self.mod.name}::{target.id}", lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._handle_store_target(t, node.lineno)
            # local type tracking: v = ClassName(...) / v = self.attr
            if isinstance(t, ast.Name):
                typ = self._expr_type(node.value)
                if typ:
                    self.env[t.id] = ("type", typ)
                elif isinstance(node.value, ast.Name) and \
                        node.value.id in self.env:
                    self.env[t.id] = self.env[node.value.id]
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_store_target(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store_target(node.target, node.lineno)
            if isinstance(node.target, ast.Name):
                typ = _ann_name(node.annotation)
                if typ and typ in self.an.index.classes:
                    self.env[node.target.id] = ("type", typ)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._handle_store_target(t, node.lineno)

    # -- reads -------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and \
                isinstance(node.value, ast.Name) and node.value.id == "self" \
                and self.cls is not None:
            self.s.reads.append(
                (f"{self.cls.name}.{node.attr}", node.lineno, self._held()))
        self.generic_visit(node)

    # -- calls: graph edges, mutators, blocking, escapes -------------------

    def visit_Call(self, node: ast.Call) -> None:
        held = self._held()
        lineno = node.lineno
        callee = self._resolve_callee(node.func)
        if callee is not None:
            self.s.calls.append((callee, lineno, held))

        # In-place mutation through a method call: self.x.append(...)
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            base = node.func.value
            if isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and \
                    base.value.id == "self" and self.cls is not None:
                self._record_write(f"{self.cls.name}.{base.attr}", lineno)
            elif isinstance(base, ast.Name) and \
                    base.id in self.mod.mutable_globals:
                self._record_write(f"{self.mod.name}::{base.id}", lineno)

        self._check_blocking(node, held)
        self._check_escape(node)
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call, held: FrozenSet[str]) -> None:
        dotted = _resolve_dotted(self.mod.aliases, node.func)
        desc = None
        if dotted in _BLOCKING_DOTTED:
            desc = dotted
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            recv = node.func.value
            recv_name = ""
            if isinstance(recv, ast.Name):
                recv_name = recv.id
            elif isinstance(recv, ast.Attribute):
                recv_name = recv.attr
            recv_t = self._expr_type(recv) or ""
            if attr in _BLOCKING_ATTRS:
                desc = f"{recv_name or '<obj>'}.{attr}"
            elif attr in _BLOCKING_POOL_ATTRS and (
                    _is_poolish(recv_name) or _is_poolish(recv_t)):
                desc = f"{recv_name or recv_t}.{attr}"
        if desc is not None:
            self.s.blocking.append((desc, node.lineno, held))

    def _escaping_callable(self, expr: ast.AST) -> Tuple[Optional[str], bool]:
        """(callee key, is-package-defined) for a thread-target expr."""
        if isinstance(expr, ast.Lambda):
            return None, True
        if isinstance(expr, ast.Name):
            kind_val = self.env.get(expr.id)
            if kind_val and kind_val[0] == "func":
                return kind_val[1], True
            if expr.id in self.mod.functions:
                return f"{self.mod.name}::{expr.id}", True
            return None, False
        if isinstance(expr, ast.Attribute):
            recv_t = self._expr_type(expr.value)
            if recv_t:
                key = self.an.index.method_key(recv_t, expr.attr)
                # A bound method of a package class escapes even when
                # the method body is inherited from the stdlib.
                return key, True
            dotted = _resolve_dotted(self.mod.aliases, expr)
            if dotted:
                mod_name, _, fn = dotted.rpartition(".")
                key = f"{mod_name}::{fn}"
                if key in self.an.index.functions:
                    return key, True
        return None, False

    def _check_escape(self, node: ast.Call) -> None:
        dotted = _resolve_dotted(self.mod.aliases, node.func) or ""
        target_expr: Optional[ast.AST] = None
        kind = ""
        if dotted == "threading.Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target_expr, kind = kw.value, "thread-target"
        elif dotted == "threading.Timer":
            if len(node.args) >= 2:
                target_expr, kind = node.args[1], "timer"
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            recv = node.func.value
            recv_name = recv.id if isinstance(recv, ast.Name) else (
                recv.attr if isinstance(recv, ast.Attribute) else "")
            recv_t = self._expr_type(recv) or ""
            if attr in ("submit", "map") and (
                    _is_poolish(recv_name) or _is_poolish(recv_t)):
                if recv_t == "ProcessPoolExecutor" or \
                        "ProcessPool" in (recv_name or ""):
                    return  # separate address space: nothing is shared
                if node.args:
                    target_expr, kind = node.args[0], "pool-target"
            elif attr in ("subscribe", "set_hook") and node.args:
                # Callback registration: a root, but not a spawn site.
                key, _ = self._escaping_callable(node.args[0])
                if key is None and isinstance(node.args[0], ast.Name) and \
                        node.args[0].id == "self" and self.cls is not None:
                    key = self.an.index.method_key(self.cls.name, "__call__")
                if key is not None:
                    self.an.add_root(RootInfo(
                        key=key, kind="callback",
                        file=self.s.filename, line=node.lineno))
                return
        if target_expr is None:
            return
        key, package_defined = self._escaping_callable(target_expr)
        if key is not None:
            self.an.add_root(RootInfo(
                key=key, kind=kind, file=self.s.filename, line=node.lineno))
        if package_defined:
            self.s.escapes.append(
                (self._describe_target(target_expr), node.lineno, key))


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------

class _Analyzer:
    def __init__(self, modules: List[_ModuleInfo],
                 sources: Dict[str, str]) -> None:
        self.index = _Index(modules)
        _resolve_attr_types(self.index)
        self.sources = sources  # filename -> source text
        self.summaries: Dict[str, _Summary] = {}
        self.roots: Dict[Tuple[str, str], RootInfo] = {}
        self.findings: List[Diagnostic] = []

    # -- collection --------------------------------------------------------

    def add_root(self, root: RootInfo) -> None:
        self.roots.setdefault((root.key, root.kind), root)

    def walk_function(self, key: str, mod: _ModuleInfo,
                      cls: Optional[_ClassInfo], node: ast.FunctionDef,
                      public: bool, filename: str) -> None:
        summary = _Summary(key=key, module=mod.name, filename=filename,
                           class_name=cls.name if cls else None,
                           lineno=node.lineno, public=public)
        self.summaries[key] = summary
        walker = _FuncWalker(self, summary, mod, cls, node)
        for stmt in node.body:
            walker.visit(stmt)

    def collect(self) -> None:
        for mod in self.index.modules.values():
            for fname, node in mod.functions.items():
                public = not fname.startswith("_")
                self.walk_function(f"{mod.name}::{fname}", mod, None, node,
                                   public=public, filename=mod.filename)
            for cls in mod.classes.values():
                for mname, meth in cls.methods.items():
                    public = (not mname.startswith("_")) or (
                        mname.startswith("__") and mname.endswith("__"))
                    self.walk_function(f"{cls.name}.{mname}", mod, cls, meth,
                                       public=public, filename=mod.filename)
                if cls.is_handler:
                    for mname in cls.methods:
                        if mname.startswith("do_"):
                            self.add_root(RootInfo(
                                key=f"{cls.name}.{mname}", kind="handler",
                                file=cls.filename,
                                line=cls.methods[mname].lineno))

    # -- lattice analyses --------------------------------------------------

    def _call_sites(self) -> List[Tuple[str, str, FrozenSet[str]]]:
        sites = []
        for s in self.summaries.values():
            for callee, _lineno, held in s.calls:
                if callee in self.summaries:
                    sites.append((s.key, callee, held))
        return sites

    def _entry_locksets(self) -> Dict[str, Optional[FrozenSet[str]]]:
        """Must-hold lockset at function entry (None = never called)."""
        root_keys = {r.key for r in self.roots.values()}
        entry: Dict[str, Optional[FrozenSet[str]]] = {}
        for key, s in self.summaries.items():
            entry[key] = frozenset() if (s.public or key in root_keys) \
                else _TOP
        sites = self._call_sites()
        changed = True
        while changed:
            changed = False
            for caller, callee, held in sites:
                base = entry[caller]
                if base is _TOP:
                    continue
                eff = base | held
                cur = entry[callee]
                new = eff if cur is _TOP else (cur & eff)
                if new != cur:
                    entry[callee] = new
                    changed = True
        return entry

    def _may_locksets(self) -> Dict[str, FrozenSet[str]]:
        """May-hold lockset at entry (union over call sites)."""
        may: Dict[str, FrozenSet[str]] = {
            key: frozenset() for key in self.summaries
        }
        sites = self._call_sites()
        changed = True
        while changed:
            changed = False
            for caller, callee, held in sites:
                eff = may[caller] | held
                new = may[callee] | eff
                if new != may[callee]:
                    may[callee] = new
                    changed = True
        return may

    def _init_only(self) -> Set[str]:
        """Private methods reachable only from constructors."""
        callers: Dict[str, Set[str]] = {}
        for caller, callee, _held in self._call_sites():
            callers.setdefault(callee, set()).add(caller)
        root_keys = {r.key for r in self.roots.values()}

        def is_ctor(key: str) -> bool:
            return key.endswith(".__init__")

        init_only: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for key, s in self.summaries.items():
                if key in init_only or s.public or key in root_keys:
                    continue
                ins = callers.get(key)
                if not ins:
                    continue
                if all(is_ctor(c) or c in init_only for c in ins):
                    init_only.add(key)
                    changed = True
        return init_only

    def _thread_reachable(self) -> Dict[str, Set[str]]:
        """function key -> set of root keys that reach it."""
        edges: Dict[str, Set[str]] = {}
        for caller, callee, _held in self._call_sites():
            edges.setdefault(caller, set()).add(callee)
        reached: Dict[str, Set[str]] = {}
        for root in self.roots.values():
            if root.key not in self.summaries:
                continue
            work, seen = [root.key], {root.key}
            while work:
                cur = work.pop()
                reached.setdefault(cur, set()).add(root.key)
                for nxt in edges.get(cur, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        work.append(nxt)
        return reached

    # -- findings ----------------------------------------------------------

    def _emit(self, rule: str, message: str, where: str, filename: str,
              lineno: int, fix: str) -> None:
        self.findings.append(Diagnostic(
            rule=rule, severity=RULES[rule].severity, message=message,
            where=where, file=filename, line=lineno, fix=fix))

    def analyze(self) -> RaceAnalysis:
        self.collect()
        entry = self._entry_locksets()
        may = self._may_locksets()
        init_only = self._init_only()
        reached = self._thread_reachable()

        self._check_field_locksets(entry, init_only)
        self._check_globals(entry, reached)
        self._check_lock_order(may)
        self._check_blocking(entry)
        self._check_escapes()

        shared = self._inventory(reached)
        return RaceAnalysis(
            roots=sorted(self.roots.values(),
                         key=lambda r: (r.file, r.line, r.key)),
            shared=shared,
            diagnostics=self.findings,
        )

    def _disciplined_classes(self) -> List[_ClassInfo]:
        out = []
        for cls in self.index.classes.values():
            if self.index.lock_attrs(cls):
                out.append(cls)
        return out

    def _check_field_locksets(
            self, entry: Dict[str, Optional[FrozenSet[str]]],
            init_only: Set[str]) -> None:
        for cls in self._disciplined_classes():
            locks = self.index.lock_attrs(cls)
            lock_names = sorted(t for t, _ in locks.values())
            # field token -> list of (lockset, filename, lineno)
            guarded: Dict[str, List[Tuple[FrozenSet[str], str, int]]] = {}
            for mname in cls.methods:
                key = f"{cls.name}.{mname}"
                s = self.summaries.get(key)
                if s is None or key.endswith(".__init__") or key in init_only:
                    continue
                self._scan_writes(s, entry, cls, locks, lock_names, guarded,
                                  prefix=f"{cls.name}.")
                # Closures defined inside methods share the class scope.
                for ckey, cs in self.summaries.items():
                    if ckey.startswith(key + ".<locals>."):
                        self._scan_writes(cs, entry, cls, locks, lock_names,
                                          guarded, prefix=f"{cls.name}.")
            # RACE002: all guarded writes to one field must share a lock.
            for token, sites in guarded.items():
                if len(sites) < 2:
                    continue
                common = sites[0][0]
                for ls, fname, lineno in sites[1:]:
                    if common & ls:
                        common &= ls
                        continue
                    attr = token.split(".", 1)[1]
                    self._emit(
                        "RACE002",
                        f"field '{token}' is guarded by "
                        f"{{{', '.join(sorted(ls))}}} here but by "
                        f"{{{', '.join(sorted(common))}}} elsewhere — "
                        "no common lock",
                        where=f"{cls.name}.{attr}", filename=fname,
                        lineno=lineno,
                        fix="pick one lock for every access to the field")
                    break

    def _scan_writes(self, s: _Summary,
                     entry: Dict[str, Optional[FrozenSet[str]]],
                     cls: _ClassInfo, locks: Dict[str, Tuple[str, bool]],
                     lock_names: List[str],
                     guarded: Dict[str, List[Tuple[FrozenSet[str], str, int]]],
                     prefix: str) -> None:
        base = entry.get(s.key)
        if base is _TOP:
            return  # never called: no concurrency context to judge
        for token, lineno, held in s.writes:
            if not token.startswith(prefix):
                continue
            attr = token.split(".", 1)[1]
            if attr in locks:
                continue  # installing/replacing the lock object itself
            eff = base | held
            if not eff:
                self._emit(
                    "RACE001",
                    f"write to shared field '{token}' with no lock held "
                    f"(class owns {', '.join(lock_names)})",
                    where=f"{s.key}", filename=s.filename, lineno=lineno,
                    fix="guard the write with the owning lock or annotate "
                        "a confinement pragma")
            else:
                guarded.setdefault(token, []).append(
                    (eff, s.filename, lineno))

    def _check_globals(self, entry: Dict[str, Optional[FrozenSet[str]]],
                       reached: Dict[str, Set[str]]) -> None:
        for s in self.summaries.values():
            if s.key not in reached:
                continue  # only functions running off-main are checked
            base = entry.get(s.key)
            base = frozenset() if base is _TOP else base
            for token, lineno, held in s.writes:
                if "::" not in token:
                    continue
                eff = base | held
                if not eff:
                    self._emit(
                        "RACE001",
                        f"write to shared module global '{token}' with no "
                        f"lock held (reached from thread roots: "
                        f"{', '.join(sorted(reached[s.key]))})",
                        where=s.key, filename=s.filename, lineno=lineno,
                        fix="guard the global with a module lock")

    def _check_lock_order(self, may: Dict[str, FrozenSet[str]]) -> None:
        # held -> acquired -> example site
        edges: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for s in self.summaries.values():
            for token, lineno, held_before, reentrant in s.acquires:
                context = may[s.key] | held_before
                for h in context:
                    if h == token:
                        if not reentrant:
                            self._emit(
                                "RACE003",
                                f"non-reentrant lock '{token}' may be "
                                "re-acquired while already held "
                                "(self-deadlock)",
                                where=s.key, filename=s.filename,
                                lineno=lineno,
                                fix="use an RLock or drop the outer hold")
                        continue
                    edges.setdefault(h, {}).setdefault(
                        token, (s.filename, lineno))
        # Cycle detection over the acquisition digraph.
        for cycle in _find_cycles(edges):
            a = cycle[0]
            b = cycle[1 % len(cycle)]
            fname, lineno = edges[a][b]
            path = " -> ".join(cycle + [cycle[0]])
            self._emit(
                "RACE003",
                f"lock-order inversion: acquisition cycle {path}",
                where=path, filename=fname, lineno=lineno,
                fix="acquire locks in hierarchy order (docs/LINT.md)")

    def _check_blocking(
            self, entry: Dict[str, Optional[FrozenSet[str]]]) -> None:
        for s in self.summaries.values():
            base = entry.get(s.key)
            base = frozenset() if base is _TOP else base
            for desc, lineno, held in s.blocking:
                eff = base | held
                if eff:
                    self._emit(
                        "RACE004",
                        f"blocking call '{desc}' while holding "
                        f"{{{', '.join(sorted(eff))}}}",
                        where=s.key, filename=s.filename, lineno=lineno,
                        fix="release the lock before blocking")

    def _check_escapes(self) -> None:
        for s in self.summaries.values():
            for desc, lineno, key in s.escapes:
                self._emit(
                    "RACE005",
                    f"'{desc}' escapes to a thread/pool from {s.key}; "
                    "captured mutable state becomes shared",
                    where=s.key, filename=s.filename, lineno=lineno,
                    fix="confine the state to phases (sanitizer barrier) "
                        "or guard it with a lock, then annotate the site")

    def _inventory(self, reached: Dict[str, Set[str]]) -> Dict[str, List[str]]:
        shared: Dict[str, Set[str]] = {}
        for s in self.summaries.values():
            roots_here = reached.get(s.key)
            if not roots_here:
                continue
            for token, _lineno, _held in s.writes + s.reads:
                if "::" in token:
                    owner, attr = None, ""
                else:
                    cname, attr = token.split(".", 1)
                    owner = self.index.classes.get(cname)
                if owner is not None and (
                        attr in self.index.lock_attrs(owner)
                        or self.index.method_key(owner.name, attr)):
                    continue  # locks and bound methods are not "state"
                if "::" in token or (owner is not None
                                     and self.index.lock_attrs(owner)):
                    bucket = shared.setdefault(token, set())
                    bucket.update(roots_here)
                    bucket.add("main")
        return {token: sorted(roots)
                for token, roots in sorted(shared.items())}


def _find_cycles(edges: Dict[str, Dict[str, Tuple[str, int]]]) -> List[List[str]]:
    """Elementary cycles via DFS; deduplicated by rotation."""
    graph = {u: sorted(vs) for u, vs in edges.items()}
    seen_cycles: Set[Tuple[str, ...]] = set()
    cycles: List[List[str]] = []

    def dfs(start: str, node: str, path: List[str],
            on_path: Set[str]) -> None:
        for nxt in graph.get(node, ()):
            if nxt == start:
                lo = path.index(min(path))
                canon = tuple(path[lo:] + path[:lo])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(canon))
            elif nxt not in on_path and nxt > start:
                # Only explore nodes > start so each cycle is found once
                # from its smallest member.
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return cycles


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def analyze_sources(sources: Dict[str, str],
                    filenames: Optional[Dict[str, str]] = None
                    ) -> RaceAnalysis:
    """Analyze in-memory modules: ``{dotted_module_name: source}``.

    Used by the mutation-canary tests; pragmas are honoured from the
    source text just like the file-based entry point.
    """
    filenames = filenames or {}
    modules, texts = [], {}
    for name, source in sorted(sources.items()):
        fname = filenames.get(name, f"<{name}>")
        modules.append(_collect_module(name, fname, source))
        texts[fname] = source
    analyzer = _Analyzer(modules, texts)
    result = analyzer.analyze()
    result.diagnostics = _filter_pragmas(result.diagnostics, texts)
    return result


def analyze_paths(paths: Iterable[Union[str, Path]]) -> RaceAnalysis:
    """Analyze ``.py`` files; directories are walked recursively.

    All files are analyzed as **one program** so cross-module call
    edges (CLI → fleet → obs) resolve.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    modules, texts = [], {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        modules.append(_collect_module(_module_name(path), str(path), source))
        texts[str(path)] = source
    analyzer = _Analyzer(modules, texts)
    result = analyzer.analyze()
    result.diagnostics = _filter_pragmas(result.diagnostics, texts)
    return result


def _filter_pragmas(diags: List[Diagnostic],
                    texts: Dict[str, str]) -> List[Diagnostic]:
    lines_by_file = {fname: text.splitlines()
                     for fname, text in texts.items()}
    out = []
    for d in diags:
        lines = lines_by_file.get(d.file or "", [])
        if d.rule in _allowed_rules(lines, d.line):
            continue
        out.append(d)
    return out


def lint_races(paths: Iterable[Union[str, Path]]) -> List[Diagnostic]:
    """File-oriented entry point mirroring ``determinism.lint_paths``."""
    return analyze_paths(paths).diagnostics
