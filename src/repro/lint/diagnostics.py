"""Typed diagnostics and their renderings (text, JSON, SARIF 2.1.0).

Every lint pass produces :class:`Diagnostic` records — rule id,
severity, human message, location, fix hint — collected into a
:class:`LintReport` that renders uniformly across passes.  The rule
catalogue (:data:`RULES`) is the single source of truth for rule
metadata; ``docs/LINT.md`` and the SARIF ``tool.driver.rules`` array
are generated from it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "RuleInfo",
    "RULES",
    "LintReport",
    "combine_sarif",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
]

#: Canonical SARIF 2.1.0 schema location, embedded in every export.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


class Severity(str, Enum):
    """How bad a finding is; ERROR findings fail the lint (exit 2)."""

    ERROR = "ERROR"
    WARN = "WARN"
    INFO = "INFO"

    @property
    def rank(self) -> int:
        """ERROR < WARN < INFO for sorting (most severe first)."""
        return {"ERROR": 0, "WARN": 1, "INFO": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF ``result.level`` value for this severity."""
        return {"ERROR": "error", "WARN": "warning",
                "INFO": "note"}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    rule:
        Catalogued rule id (``SPEC101``, ``PLAN005``, ``DET001``, ...).
    severity:
        ERROR / WARN / INFO; defaults come from :data:`RULES` but a
        pass may escalate (e.g. blast radius past the error threshold).
    message:
        Human-readable statement of the defect.
    where:
        Logical location — ``"workflow 'wf1' task 't3'"``,
        ``"plan for alerts (u1,)"`` — always present.
    file, line:
        Physical location when the finding points into source code
        (determinism lint) or a document file.
    fix:
        Actionable hint ("inject a clock", "add a final else arm").
    """

    rule: str
    severity: Severity
    message: str
    where: str
    file: Optional[str] = None
    line: Optional[int] = None
    fix: str = ""

    def render(self) -> str:
        """One-line text form: ``severity rule location: message``."""
        loc = self.where
        if self.file is not None:
            loc = f"{self.file}:{self.line or 0}"
        text = f"{self.severity.value:<5} {self.rule} {loc}: {self.message}"
        if self.fix:
            text += f"  [fix: {self.fix}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (stable key order via sort in the report)."""
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "where": self.where,
        }
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        if self.fix:
            out["fix"] = self.fix
        return out


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one lint rule."""

    rule: str
    severity: Severity
    summary: str
    rationale: str


def _r(rule: str, sev: Severity, summary: str, rationale: str) -> RuleInfo:
    return RuleInfo(rule=rule, severity=sev, summary=summary,
                    rationale=rationale)


#: The rule catalogue.  ``docs/LINT.md`` mirrors this table.
RULES: Dict[str, RuleInfo] = {r.rule: r for r in [
    # -- spec rules (SPEC0xx structural, SPEC1xx semantic) ----------------
    _r("SPEC001", Severity.ERROR, "structurally invalid workflow",
       "Section II-A requires one 0-indegree start node, at least one "
       "0-outdegree end node, every task reachable, and a choose "
       "function on every branch node; recovery theorems assume this "
       "shape."),
    _r("SPEC101", Severity.WARN, "dead-end task (no end node reachable)",
       "A task trapped in a cycle region that cannot reach any end "
       "node can never terminate its workflow instance; Theorem 2 "
       "re-execution through it would never finish."),
    _r("SPEC102", Severity.INFO, "dead data (written, never read)",
       "An object no task reads is either a workflow output or dead "
       "weight; damage tracing (Theorem 1 cond. 3) still follows it, "
       "inflating undo sets for nothing if it is unused."),
    _r("SPEC103", Severity.INFO, "phantom read (never written)",
       "An object read but written by no task must be initial data; "
       "if it is a typo the task will fail at run time and its redo "
       "will fail during recovery too."),
    _r("SPEC104", Severity.WARN,
       "branch decides on single-copy shared data",
       "Theorem 4: with single-copy data, a normal task touching "
       "recovered data waits for recovery.  A branch whose choice "
       "reads an object other workflows write is a contention "
       "hotspot: its whole control region blocks behind cross-"
       "workflow recovery."),
    _r("SPEC105", Severity.INFO,
       "Theorem 1 condition 4 ambiguity reachable",
       "A skippable (control-dependent) task writes an object some "
       "other task reads: after an attack on the controlling branch, "
       "readers become candidate undos resolvable only by "
       "re-execution (Theorem 1 cond. 4) — recovery cost is "
       "data-dependent here."),
    _r("SPEC106", Severity.WARN, "worst-case blast radius above threshold",
       "The prospective damage closure (potential flow + control "
       "amplification over workflow/analysis.py) from this task "
       "covers a large fraction of the system; one IDS alert on it "
       "implies a near-global recovery."),
    # -- plan verifier (live plans) ---------------------------------------
    _r("PLAN001", Severity.ERROR, "undo set missing an instance",
       "Theorem 1: the instance is malicious or flow-infected but the "
       "plan does not undo it; healing would leave corrupt data."),
    _r("PLAN002", Severity.ERROR, "undo set has a spurious instance",
       "The plan undoes an instance no Theorem 1 condition covers; "
       "clean work would be destroyed."),
    _r("PLAN003", Severity.ERROR, "redo set missing an instance",
       "Theorem 2 cond. 1: the undone instance is not control "
       "dependent on another bad one, so it must be re-executed."),
    _r("PLAN004", Severity.ERROR, "redo set has a spurious instance",
       "Theorem 2: a redo without Theorem 2 cond. 1 grounds (or of a "
       "never-undone instance) re-executes work that should stay "
       "undone or kept."),
    _r("PLAN005", Severity.ERROR, "required ordering edge missing",
       "Theorems 3.1/3.3/3.4/3.5: dropping the edge admits schedules "
       "that read dirty or stale versions during recovery."),
    _r("PLAN006", Severity.ERROR, "ordering edge no rule justifies",
       "An edge outside Theorem 3 over-constrains the schedule and "
       "can manufacture cycles (deadlock) out of thin air."),
    _r("PLAN007", Severity.ERROR, "recovery partial order is cyclic",
       "A cyclic order has no linear extension; the scheduler's "
       "minimal(S, ≺) selector would stall."),
    _r("PLAN008", Severity.ERROR, "order elements disagree with plan sets",
       "The actions in the partial order must be exactly one undo per "
       "definite undo and one redo per definite redo."),
    _r("PLAN009", Severity.ERROR, "candidate sets disagree",
       "Theorem 1 cond. 2/4 and Theorem 2 cond. 2 candidates decide "
       "what the healer re-examines; a mismatch silently widens or "
       "narrows recovery."),
    # -- plan verifier (flight logs) ---------------------------------------
    _r("PLAN020", Severity.ERROR, "recorded order edges contain a cycle",
       "The flight log's Theorem 3/4 edge set admits no schedule; the "
       "recorded run cannot have dispatched it soundly."),
    _r("PLAN021", Severity.ERROR, "undo≺redo edge missing in log",
       "Theorem 3.3: every instance both undone and redone must carry "
       "the undo-before-redo constraint in the recorded order."),
    _r("PLAN022", Severity.ERROR, "realized schedule violates an edge",
       "A dispatch order contradicting a recorded ordering edge means "
       "the scheduler ignored the plan it claimed to execute."),
    _r("PLAN023", Severity.ERROR, "executed action never planned",
       "The healer undid/redid an instance that appears in no "
       "recorded Theorem 1/2 decision — recovery outside the plan."),
    _r("PLAN024", Severity.ERROR, "definite redo not in definite undo",
       "Theorem 2 splits the *undo* set; a definite redo outside the "
       "definite undo set re-executes an instance never rolled back."),
    # -- determinism lint ---------------------------------------------------
    _r("DET001", Severity.ERROR, "wall-clock time source",
       "time.time/monotonic/perf_counter read the host clock; replays "
       "of the same flight log would diverge.  Inject a clock "
       "(ManualClock for simulated time) instead."),
    _r("DET002", Severity.ERROR, "module-level random function",
       "random.random()/choice()/... draw from the shared global "
       "generator whose state any import can perturb; seeded replay "
       "needs an explicit random.Random(seed) instance."),
    _r("DET003", Severity.ERROR, "wall-calendar date/time",
       "datetime.now()/utcnow()/today() depend on when the code runs, "
       "not on the recorded inputs."),
    _r("DET004", Severity.WARN, "iteration over an unordered set",
       "Set iteration order varies across processes (PYTHONHASHSEED); "
       "events or output emitted from it break byte-identical "
       "replay.  Iterate over sorted(...)."),
    _r("DET005", Severity.ERROR, "entropy source",
       "os.urandom/uuid.uuid4/secrets draw hardware entropy that no "
       "seed controls."),
    # -- concurrency lint (RACE0xx static, RACE1xx dynamic) ----------------
    _r("RACE001", Severity.ERROR, "unguarded write to shared state",
       "A field of a lock-disciplined class (or a shared module "
       "global) is written on a path that holds no lock; a concurrent "
       "reader/writer on another thread can observe a torn or lost "
       "update.  The fleet's workers=K ≡ workers=1 guarantee dies "
       "exactly here."),
    _r("RACE002", Severity.ERROR, "inconsistent lock guard",
       "The same field is protected by different locks on different "
       "paths; two threads each holding 'their' lock still race on "
       "the field.  Every access must agree on one candidate "
       "lockset."),
    _r("RACE003", Severity.ERROR, "lock-order inversion (deadlock risk)",
       "The static lock-acquisition graph contains a cycle: some path "
       "acquires A then B while another acquires B then A.  Two "
       "threads interleaving those paths deadlock.  Acquire locks in "
       "hierarchy order (docs/LINT.md, lock-hierarchy table)."),
    _r("RACE004", Severity.WARN, "lock held across a blocking call",
       "Sleeping, joining a thread/pool, waiting on a queue or "
       "future, or serving I/O while holding a lock starves every "
       "other thread contending for it and invites lock-order "
       "deadlocks against the blocking subsystem's own locks."),
    _r("RACE005", Severity.WARN, "mutable state escapes to a thread",
       "A callable closing over (or bound to) package-level mutable "
       "state is handed to a thread/executor; unless the target is "
       "lock-disciplined or phase-confined, every captured field "
       "becomes shared state invisible to local reasoning."),
    _r("RACE101", Severity.ERROR, "dynamic lockset violation (Eraser)",
       "At runtime the candidate lockset of a shared field became "
       "empty: two threads accessed it (at least one write) with no "
       "common lock consistently held.  Reported with thread and "
       "stack provenance by the opt-in sanitizer."),
    _r("RACE102", Severity.ERROR, "dynamic lock-order inversion",
       "The runtime lock-acquisition graph recorded A held while "
       "acquiring B and, on another code path, B held while "
       "acquiring A.  Even if no deadlock materialized in this run, "
       "the schedule exists."),
]}


def combine_sarif(named_reports: Iterable[Tuple[str, "LintReport"]],
                  indent: Optional[int] = 2) -> str:
    """Merge several lint passes into one SARIF log with multiple runs.

    Each ``(tool_name, report)`` pair becomes its own ``runs[]`` entry
    with a distinct ``tool.driver.name`` and its own
    ``tool.driver.rules`` array, so viewers attribute findings to the
    pass that produced them (``repro-lint-determinism`` vs
    ``repro-lint-races``).  Used by ``lint code --all``.
    """
    runs: List[Dict[str, Any]] = []
    for tool_name, report in named_reports:
        runs.extend(report.to_sarif(tool_name=tool_name)["runs"])
    return json.dumps({
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }, indent=indent)


class LintReport:
    """An ordered collection of diagnostics with uniform renderings."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diags: List[Diagnostic] = sorted(
            diagnostics,
            key=lambda d: (d.severity.rank, d.file or "", d.line or 0,
                           d.rule, d.where, d.message),
        )

    # -- access --------------------------------------------------------------

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        """All findings, most severe first."""
        return tuple(self._diags)

    def __len__(self) -> int:
        return len(self._diags)

    def __iter__(self):
        return iter(self._diags)

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly ``severity``."""
        return sum(1 for d in self._diags if d.severity is severity)

    @property
    def has_errors(self) -> bool:
        """True when any ERROR-level finding is present."""
        return any(d.severity is Severity.ERROR for d in self._diags)

    @property
    def exit_code(self) -> int:
        """Process exit code: 2 on ERROR findings, 0 otherwise."""
        return 2 if self.has_errors else 0

    # -- renderings ------------------------------------------------------------

    def render_text(self) -> str:
        """Line-per-finding text plus a one-line tally."""
        lines = [d.render() for d in self._diags]
        lines.append(
            f"{len(self._diags)} finding(s): "
            f"{self.count(Severity.ERROR)} error, "
            f"{self.count(Severity.WARN)} warning, "
            f"{self.count(Severity.INFO)} info"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON array-of-objects form with a summary envelope."""
        return json.dumps({
            "findings": [d.to_dict() for d in self._diags],
            "summary": {
                "total": len(self._diags),
                "error": self.count(Severity.ERROR),
                "warn": self.count(Severity.WARN),
                "info": self.count(Severity.INFO),
            },
        }, indent=indent)

    def to_sarif(self, tool_name: str = "repro-lint") -> Dict[str, Any]:
        """The report as a SARIF 2.1.0 log (one run, one tool).

        Rules referenced by at least one result are described in
        ``tool.driver.rules`` with the catalogue's summary/rationale;
        each result carries a ``ruleIndex`` into that array.  Findings
        with a physical location get a ``physicalLocation``; all carry
        a ``logicalLocations`` entry naming the workflow/plan item.
        """
        used = sorted({d.rule for d in self._diags})
        index = {rule: i for i, rule in enumerate(used)}
        rules_arr = []
        for rule in used:
            info = RULES.get(rule)
            rules_arr.append({
                "id": rule,
                "shortDescription": {
                    "text": info.summary if info else rule,
                },
                "fullDescription": {
                    "text": info.rationale if info else "",
                },
                "defaultConfiguration": {
                    "level": (info.severity if info
                              else Severity.WARN).sarif_level,
                },
            })
        results = []
        for d in self._diags:
            location: Dict[str, Any] = {
                "logicalLocations": [{"fullyQualifiedName": d.where}],
            }
            if d.file is not None:
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": d.file},
                    "region": {"startLine": max(1, d.line or 1)},
                }
            result: Dict[str, Any] = {
                "ruleId": d.rule,
                "ruleIndex": index[d.rule],
                "level": d.severity.sarif_level,
                "message": {"text": d.message},
                "locations": [location],
            }
            if d.fix:
                result["fixes"] = [
                    {"description": {"text": d.fix}},
                ]
            results.append(result)
        return {
            "$schema": SARIF_SCHEMA_URI,
            "version": SARIF_VERSION,
            "runs": [{
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri":
                            "https://example.invalid/repro-lint",
                        "rules": rules_arr,
                    },
                },
                "results": results,
            }],
        }

    def to_sarif_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`to_sarif` serialized to a JSON string."""
        return json.dumps(self.to_sarif(), indent=indent)
