"""HTTP telemetry endpoint over the stdlib ``http.server``.

A production self-healing system is judged from the outside — scrapers
pull metrics, load balancers probe health, operators curl the SLO
verdicts.  :class:`TelemetryServer` exposes exactly those three views
of a run, with zero dependencies beyond the standard library:

- ``GET /metrics``  — Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry` (the existing exporter,
  now scrapeable);
- ``GET /healthz``  — a liveness/readiness probe: JSON status, HTTP
  ``200`` while the :class:`~repro.obs.health.HealthMonitor`'s worst
  SLO is OK or WARN, ``503`` on BREACH (so a probe-driven orchestrator
  reacts to a breached objective with no JSON parsing at all);
- ``GET /slo``      — the full JSON health summary (verdicts, windowed
  estimates, drift alarms, model predictions);
- ``GET /profile``  — the live latency-attribution breakdown of a
  :class:`~repro.obs.perf.PhaseProfiler` (phase rows, counters,
  attribution fraction); ``?format=collapsed`` returns flamegraph
  collapsed-stack text instead of JSON.  Scraping a *running* profiler
  is safe — the report is provisional and never freezes the
  measurement.

In **fleet mode** (``fleet=`` a
:class:`~repro.fleet.control.FleetControlPlane`, or anything with its
``health()`` / ``shard_by_tenant()`` shape) the same routes serve the
whole fleet: ``/healthz`` probes the *worst-of* rollup (``503`` when
any tenant breaches), ``/slo`` returns the fleet rollup — tenant
counts per state, merged conformance, latency percentiles, the worst
tenants — and ``/slo?tenant=t0042`` drills down into one tenant's full
single-system summary.

The server binds ``127.0.0.1`` by default and accepts port ``0`` for
an ephemeral port (the bound port is on :attr:`port` after
:meth:`start` — how the CI smoke test avoids collisions).  Handlers
take :attr:`lock` around every render; a driver mutating the registry
or monitor from another thread wraps its update phase in
``with server.lock:`` and readers always see a consistent snapshot.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl

from repro.errors import FleetError, ObsError
from repro.obs.health import HealthMonitor, SloState
from repro.obs.locks import make_rlock
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PhaseProfiler

__all__ = ["TelemetryServer"]

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Request handler: three read-only GET routes, JSON errors."""

    server: "_TelemetryHTTPServer"

    # Silence the default stderr access log — the CLI owns stdout and
    # a scrape every few seconds would drown it.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner = self.server.owner
        path, _, query = self.path.partition("?")
        params = dict(parse_qsl(query))
        with owner.lock:
            if path == "/metrics":
                status, body = owner.render_metrics()
                self._send(status, body.encode("utf-8"),
                           PROMETHEUS_CONTENT_TYPE)
            elif path == "/healthz":
                status, payload = owner.render_healthz()
                self._send_json(status, payload)
            elif path == "/slo":
                status, payload = owner.render_slo(
                    tenant=params.get("tenant")
                )
                self._send_json(status, payload)
            elif path == "/profile":
                if params.get("format") == "collapsed":
                    status, text = owner.render_profile_collapsed()
                    self._send(status, text.encode("utf-8"),
                               "text/plain; charset=utf-8")
                else:
                    status, payload = owner.render_profile()
                    self._send_json(status, payload)
            else:
                self._send_json(404, {
                    "error": f"unknown path {path!r}",
                    "paths": ["/metrics", "/healthz", "/slo", "/profile"],
                })


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning TelemetryServer."""

    daemon_threads = True
    owner: "TelemetryServer"


class TelemetryServer:
    """Serves ``/metrics``, ``/healthz`` and ``/slo`` for a run.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` behind ``/metrics`` (``None``
        serves an empty exposition).
    monitor:
        The :class:`HealthMonitor` behind ``/healthz`` and ``/slo``
        (``None`` makes ``/healthz`` report ``ok`` — nothing monitored
        is nothing breached — and ``/slo`` return 404).
    fleet:
        Optional fleet source — a
        :class:`~repro.fleet.control.FleetControlPlane` or any object
        with ``health() -> FleetHealth`` and
        ``shard_by_tenant(id) -> TenantShard``.  When set, ``/healthz``
        and ``/slo`` serve the fleet rollup (and ``?tenant=`` drills
        down) instead of the single ``monitor``.
    profiler:
        Optional :class:`~repro.obs.perf.PhaseProfiler` behind
        ``/profile`` for single-system runs.  In fleet mode the fleet's
        own profiler serves the route instead (via
        ``fleet.profile_snapshot()``), with per-tenant and per-tick
        breakdowns alongside the fleet rollup.
    host, port:
        Bind address; port ``0`` asks the OS for an ephemeral port.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        monitor: Optional[HealthMonitor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        fleet: Optional[Any] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.registry = registry
        self.monitor = monitor
        self.fleet = fleet
        self.profiler = profiler
        self._host = host
        self._requested_port = int(port)
        self._httpd: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: Guards every render; writers mutating registry/monitor from
        #: another thread take it around their update phase.  Outermost
        #: tier of the lock hierarchy: renders acquire registry and
        #: metric locks underneath it.
        self.lock = make_rlock("server")

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """Is the server accepting requests?"""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self.

        Raises :class:`~repro.errors.ObsError` when already running or
        when the bind fails (port taken, bad host) — a telemetry
        endpoint that silently is not there defeats its purpose.
        """
        if self._httpd is not None:
            raise ObsError(f"telemetry server already running on {self.url}")
        try:
            httpd = _TelemetryHTTPServer(
                (self._host, self._requested_port), _TelemetryHandler
            )
        except OSError as exc:
            raise ObsError(
                f"cannot bind telemetry server to "
                f"{self._host}:{self._requested_port}: {exc}"
            ) from exc
        httpd.owner = self
        # Lifecycle fields are owner-thread confined: only the thread
        # driving start()/stop() writes them, and the serving thread
        # never touches them.  serve_forever is internally synchronized
        # by http.server; handlers take owner.lock around every render.
        self._httpd = httpd  # lint: allow[RACE001] owner-thread confined lifecycle
        self._thread = threading.Thread(  # lint: allow[RACE001,RACE005] owner-confined; server internally synchronized
            target=httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None  # lint: allow[RACE001] owner-thread confined lifecycle
        self._thread = None  # lint: allow[RACE001] owner-thread confined lifecycle

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- renders (called by the handler under the lock) --------------------

    def render_metrics(self) -> Tuple[int, str]:
        """Status + Prometheus text for ``/metrics``."""
        from repro.obs.export import render_prometheus

        if self.registry is None:
            return (200, "")
        return (200, render_prometheus(self.registry))

    def render_healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Status + JSON for ``/healthz``: 503 exactly on BREACH.

        In fleet mode the probed verdict is the fleet's worst-of
        rollup — one breached tenant fails the whole probe, which is
        what a load balancer fronting the shared control plane needs.
        """
        if self.fleet is not None:
            health = self.fleet.health()
            verdict = health.verdict
            status = 503 if verdict is SloState.BREACH else 200
            return (status, {
                "status": verdict.value.lower(),
                "monitored": True,
                "fleet": True,
                "tenants": len(health.tenants),
                "by_state": health.by_state,
            })
        if self.monitor is None:
            return (200, {"status": "ok", "monitored": False})
        verdict = self.monitor.verdict
        status = 503 if verdict is SloState.BREACH else 200
        return (status, {
            "status": verdict.value.lower(),
            "monitored": True,
            "time": self.monitor.now,
            "drifts": len(self.monitor.drifts),
        })

    def render_slo(
        self, tenant: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Status + JSON for ``/slo``: the full health summary.

        Fleet mode serves the rollup; ``tenant=`` drills down into one
        tenant's single-system summary (404 on an unknown id).
        """
        if self.fleet is not None:
            if tenant is not None:
                try:
                    shard = self.fleet.shard_by_tenant(tenant)
                except FleetError as exc:
                    return (404, {"error": str(exc)})
                payload = shard.monitor.summary()
                payload["tenant"] = shard.tenant
                payload["profile"] = shard.profile.name
                return (200, payload)
            return (200, self.fleet.health().as_dict())
        if tenant is not None:
            return (404, {"error": "tenant drill-down requires a fleet"})
        if self.monitor is None:
            return (404, {"error": "no health monitor attached"})
        return (200, self.monitor.summary())

    def render_profile(self) -> Tuple[int, Dict[str, Any]]:
        """Status + JSON for ``/profile``: the attribution breakdown.

        Fleet mode serves ``fleet.profile_snapshot()`` (rollup +
        per-tenant rows + per-tick ring); single mode serves the
        attached profiler's :meth:`~repro.obs.perf.ProfileReport`.
        404 when no profiler is wired up or it was never started —
        a scrape should distinguish "not profiling" from "no data yet".
        """
        try:
            if self.fleet is not None:
                return (200, self.fleet.profile_snapshot())
            if self.profiler is None:
                return (404, {"error": "no profiler attached"})
            return (200, self.profiler.report().as_dict())
        except ObsError as exc:
            return (404, {"error": str(exc)})

    def render_profile_collapsed(self) -> Tuple[int, str]:
        """Status + flamegraph collapsed-stack text for
        ``/profile?format=collapsed`` (pipe straight into
        ``flamegraph.pl`` or paste into speedscope)."""
        try:
            if self.fleet is not None:
                report = self.fleet.profile_report()
            elif self.profiler is not None:
                report = self.profiler.report()
            else:
                return (404, "no profiler attached\n")
        except ObsError as exc:
            return (404, f"{exc}\n")
        return (200, report.collapsed())
