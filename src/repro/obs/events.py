"""Typed pipeline events and the process-local event bus.

One frozen dataclass per observable happening in the Figure 2
architecture.  Every event carries ``time`` — simulated or wall-clock
seconds, whichever clock the publisher uses; the bus never looks at it.

Publishers hold an ``Optional[EventBus]`` and guard every emission with
``if bus is not None`` (and, for events that are costly to build, with
:attr:`EventBus.active`), so un-instrumented runs pay a single ``None``
check per site.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.obs.locks import make_lock

__all__ = [
    "ObsEvent",
    "AlertEnqueued",
    "AlertLost",
    "ScanStep",
    "UnitEmitted",
    "StateTransition",
    "HealStarted",
    "HealFinished",
    "TaskUndone",
    "TaskRedone",
    "NormalTaskRefused",
    "UndoDecision",
    "RedoDecision",
    "OrderConstraint",
    "ActionDispatched",
    "QueueItemDropped",
    "SloTransition",
    "DriftDetected",
    "ConformanceViolation",
    "EVENT_TYPES",
    "event_from_dict",
    "EventBus",
    "EventRecorder",
]


@dataclass(frozen=True)
class ObsEvent:
    """Base class of all pipeline events."""

    time: float

    @property
    def kind(self) -> str:
        """The event's type name (``AlertLost``, ``ScanStep``, ...)."""
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form (used by the JSONL exporter)."""
        out: Dict[str, Any] = {"event": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


@dataclass(frozen=True)
class AlertEnqueued(ObsEvent):
    """An IDS alert was accepted into the alert queue."""

    uid: str
    queue_depth: int


@dataclass(frozen=True)
class AlertLost(ObsEvent):
    """An IDS alert was rejected by a full alert queue (Definition 3)."""

    uid: str
    queue_depth: int


@dataclass(frozen=True)
class ScanStep(ObsEvent):
    """The analyzer processed one alert into a recovery plan.

    ``cost`` is the analyzer's dependence-check count (the linear
    ``μ_k`` work of Section V-A); ``outstanding_units`` the recovery
    units already queued when the scan ran.
    """

    uid: str
    outstanding_units: int
    cost: int


@dataclass(frozen=True)
class UnitEmitted(ObsEvent):
    """A recovery plan entered the recovery-task queue.

    When the publisher is the real analyzer pipeline it also stamps the
    plan's **claimed** blast radius: ``claimed_undo``/``claimed_redo``
    are the sorted definite undo/redo sets of the queued plan and
    ``claimed`` is ``True``.  The conformance monitor compares the claim
    against the Theorem 1/2 decision events of the same scan window —
    a mismatch means the plan was altered between analysis and queuing.
    Abstract simulators that only track unit *counts* leave the default
    ``claimed=False``, which the monitor treats as "no claim made".
    """

    units: int
    queue_depth: int
    claimed: bool = False
    claimed_undo: Tuple[str, ...] = ()
    claimed_redo: Tuple[str, ...] = ()


@dataclass(frozen=True)
class StateTransition(ObsEvent):
    """The system moved between Section IV-C states.

    ``old``/``new`` are state names; for simulators with a richer state
    space (the STG's ``(a, r)`` pairs) they hold the full state string
    and ``old_category``/``new_category`` hold NORMAL/SCAN/RECOVERY.
    """

    old: str
    new: str
    old_category: str = ""
    new_category: str = ""

    @property
    def category_from(self) -> str:
        """Category left (falls back to ``old`` when not set)."""
        return self.old_category or self.old

    @property
    def category_to(self) -> str:
        """Category entered (falls back to ``new`` when not set)."""
        return self.new_category or self.new


@dataclass(frozen=True)
class HealStarted(ObsEvent):
    """A batch heal began executing."""

    malicious: Tuple[str, ...]


@dataclass(frozen=True)
class HealFinished(ObsEvent):
    """A batch heal committed.

    The undo/redo set sizes are the per-heal work the CTMC abstracts
    into the ``ξ_k`` service rate.
    """

    undone: int
    redone: int
    kept: int
    abandoned: int
    new_executions: int
    duration: float


@dataclass(frozen=True)
class TaskUndone(ObsEvent):
    """The healer removed one task instance's effects.

    ``reason`` distinguishes why: ``"closure"`` (Theorem 1 conditions
    1/3, undone in Phase A), ``"stale-read"`` (condition 4 resolved at
    settle time), or ``"abandoned"`` (the healed path no longer reaches
    the record — Theorem 2's negative case).  ``disposition`` marks a
    *final-disposition note* rather than an undo operation: the record
    was already rolled back earlier in the heal (Phase A closure) and
    this event only announces its fate, so counters must not treat it
    as a second undo.  The LTLf ``redo-follow-through`` monitor
    discharges a definite-redo obligation on an ``"abandoned"`` note
    regardless of the flag.
    """

    uid: str
    reason: str = ""
    disposition: bool = False


@dataclass(frozen=True)
class TaskRedone(ObsEvent):
    """The healer re-executed one task instance (redo or new path).

    ``mode`` is ``"redo"`` for a re-execution at the original log
    position and ``"new"`` for a first-time alternative-path execution
    (Theorem 1 condition 4's ``t_k``).
    """

    uid: str
    mode: str = "redo"


@dataclass(frozen=True)
class NormalTaskRefused(ObsEvent):
    """Strict correctness refused a normal task (Theorem 4's gate)."""

    state: str


@dataclass(frozen=True)
class UndoDecision(ObsEvent):
    """Theorem 1 marked one instance for undo.

    ``condition`` names the clause that fired (``"T1.1"`` directly
    malicious, ``"T1.2"`` control candidate, ``"T1.3"`` infected via
    data flow, ``"T1.4"`` stale-read candidate); ``via`` is the
    dependency path from the triggering bad instance to ``uid`` (empty
    for T1.1); ``objects`` the data objects realizing the dependence.
    """

    uid: str
    condition: str
    via: Tuple[str, ...] = ()
    objects: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RedoDecision(ObsEvent):
    """Theorem 2 marked one undone instance for redo.

    ``condition`` is ``"T2.1"`` (not control dependent on another bad
    instance — definitely redone) or ``"T2.2"`` (candidate, resolved by
    re-execution); ``via`` holds the controlling bad instance(s) for
    T2.2.
    """

    uid: str
    condition: str
    via: Tuple[str, ...] = ()


@dataclass(frozen=True)
class OrderConstraint(ObsEvent):
    """One Theorem 3/4 edge materialized into a recovery partial order.

    ``rule`` is the clause tag (``"T3.1"``–``"T3.5"``, ``"T4.1"``,
    ``"T4.2"``, or ``"XU"`` for a cross-unit FIFO constraint against an
    already-queued recovery unit); ``before``/``after`` are the action
    strings (``"undo(wf1/t2#1)"``) the edge orders.
    """

    rule: str
    before: str
    after: str


@dataclass(frozen=True)
class ActionDispatched(ObsEvent):
    """The partial-order scheduler dispatched one recovery action.

    ``position`` is the 0-based slot in the realized linear extension;
    ``satisfied`` lists the direct-predecessor actions whose completion
    made this dispatch legal (the constraints actually applied).
    """

    action: str
    position: int
    satisfied: Tuple[str, ...] = ()


@dataclass(frozen=True)
class QueueItemDropped(ObsEvent):
    """A bounded queue rejected an item because it was full.

    Unlike :class:`AlertLost` (which the *system* publishes with alert
    identity), this event is emitted by the queue itself on every
    rejection, stamped with the queue's clock, so windowed loss
    estimators and the flight recorder see each drop even on paths
    that bypass the system-level instrumentation.  ``queue`` names
    which queue dropped (``"alert"`` / ``"recovery"``), ``depth`` its
    occupancy at rejection time, ``lost_total`` the queue's lifetime
    loss counter after this drop.  ``priority`` is the rejected item's
    priority class when the queue is a
    :class:`~repro.ids.alerts.PriorityBoundedQueue` (0 for the plain
    FIFO queue, whose only class is 0) — old flight logs without the
    field replay with the default.
    """

    queue: str
    depth: int
    lost_total: int
    priority: int = 0


@dataclass(frozen=True)
class SloTransition(ObsEvent):
    """A service-level objective changed state (OK / WARN / BREACH).

    Published by :class:`repro.obs.health.HealthMonitor` whenever one
    of its SLOs moves between states; ``value`` is the windowed
    measurement that drove the transition and ``objective`` the SLO's
    target.  The sequence of these events *is* the run's verdict
    history — replaying a flight log reproduces it bit for bit.
    """

    slo: str
    old: str
    new: str
    value: float
    objective: float


@dataclass(frozen=True)
class DriftDetected(ObsEvent):
    """A drift detector flagged model non-conformance.

    ``detector`` names the test (``"cusum-arrival"``, ``"page-hinkley"``,
    ``"gtest-occupancy"``); ``statistic`` the test statistic at alarm
    time and ``threshold`` the alarm level it crossed; ``signal``
    qualifies the direction (``"rate-increase"``, ``"rate-decrease"``,
    ``"occupancy-shift"``).
    """

    detector: str
    statistic: float
    threshold: float
    signal: str = ""


@dataclass(frozen=True)
class ConformanceViolation(ObsEvent):
    """An LTLf conformance property failed over the event stream.

    Published by :class:`repro.obs.monitor.ConformanceMonitor` the
    moment a Definition 2 property reaches an irrevocably-violated
    state.  ``property`` names the failed property
    (``"heal-alternation"``, ``"undo-completeness"``, ...); ``verdict``
    is ``"violated"`` for a hard mid-run violation or
    ``"finally-violated"`` for a liveness obligation left unresolved at
    end of trace; ``instance`` identifies the slice (a task uid, an
    order edge) for parametric properties; ``detail`` is a human
    explanation naming the triggering event.  Like
    :class:`SloTransition`, this is *derived* telemetry: replay
    re-derives it rather than feeding it back through the monitor.
    """

    property: str
    verdict: str
    instance: str = ""
    detail: str = ""


#: Registry of every concrete event type by its ``kind`` name, used by
#: the flight-recorder loader to rebuild typed events from JSONL.
EVENT_TYPES: Dict[str, Type[ObsEvent]] = {
    cls.__name__: cls
    for cls in (
        AlertEnqueued, AlertLost, ScanStep, UnitEmitted, StateTransition,
        HealStarted, HealFinished, TaskUndone, TaskRedone,
        NormalTaskRefused, UndoDecision, RedoDecision, OrderConstraint,
        ActionDispatched, QueueItemDropped, SloTransition, DriftDetected,
        ConformanceViolation,
    )
}


def event_from_dict(data: Dict[str, Any]) -> ObsEvent:
    """Rebuild a typed event from its :meth:`ObsEvent.to_dict` form.

    The inverse of the JSONL export: ``event_from_dict(e.to_dict())``
    equals ``e`` for every registered event type.  Raises ``KeyError``
    for unknown event kinds and ``TypeError`` for malformed fields, so
    corrupt flight logs fail loudly instead of replaying wrong.
    """
    kind = data.get("event")
    if kind not in EVENT_TYPES:
        raise KeyError(f"unknown event kind {kind!r}")
    cls = EVENT_TYPES[kind]
    kwargs: Dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


Handler = Callable[[ObsEvent], None]


class EventBus:
    """Synchronous in-process pub/sub for :class:`ObsEvent`.

    Handlers subscribe either to everything or to a set of event types;
    :meth:`publish` dispatches in subscription order.  With no
    subscribers the bus is inert and :attr:`active` is ``False`` —
    instrumented code uses that to skip building expensive events.

    Subscription bookkeeping is lock-protected so a bus can be shared
    across fleet workers.  ``publish`` snapshots the handler lists
    under the lock but dispatches *outside* it: handlers are allowed to
    publish re-entrantly (the health monitor republishes SLO verdicts
    onto the same bus mid-dispatch) and to (un)subscribe, neither of
    which may deadlock.  Handlers themselves must be thread-safe when
    the bus is shared; dispatch order within one ``publish`` call stays
    subscription order.
    """

    def __init__(self) -> None:
        self._all: List[Handler] = []
        self._typed: Dict[Type[ObsEvent], List[Handler]] = {}
        self._count = 0
        self._lock = make_lock("bus")

    @property
    def active(self) -> bool:
        """``True`` when at least one handler is subscribed."""
        return self._count > 0

    def subscribe(
        self,
        handler: Handler,
        types: Optional[Iterable[Type[ObsEvent]]] = None,
    ) -> Handler:
        """Register ``handler`` for all events (or only for ``types``);
        returns the handler for symmetry with :meth:`unsubscribe`."""
        with self._lock:
            if types is None:
                self._all = self._all + [handler]
            else:
                typed = dict(self._typed)
                for t in types:
                    typed[t] = typed.get(t, []) + [handler]
                self._typed = typed
            self._count += 1
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        """Remove every registration of ``handler`` (no-op if absent)."""
        with self._lock:
            removed = 0
            if handler in self._all:
                self._all = [h for h in self._all if h is not handler]
                removed += 1
            typed = dict(self._typed)
            for t, handlers in list(typed.items()):
                if handler in handlers:
                    typed[t] = [h for h in handlers if h is not handler]
                    removed += 1
                    if not typed[t]:
                        del typed[t]
            self._typed = typed
            self._count = max(0, self._count - removed)

    def publish(self, event: ObsEvent) -> None:
        """Dispatch ``event`` to every matching handler, in order."""
        if self._count == 0:
            return
        with self._lock:
            all_handlers = self._all
            typed = self._typed.get(type(event))
        for handler in all_handlers:
            handler(event)
        if typed:
            for handler in typed:
                handler(event)


class EventRecorder:
    """Bus subscriber that keeps every event in arrival order."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def __call__(self, event: ObsEvent) -> None:
        self.events.append(event)

    def attach(self, bus: EventBus) -> "EventRecorder":
        """Subscribe to ``bus``; returns self for chaining."""
        bus.subscribe(self)
        return self

    def of_type(self, event_type: Type[ObsEvent]) -> List[ObsEvent]:
        """Recorded events of one type, in order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.events.clear()
