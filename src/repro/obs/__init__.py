"""repro.obs — observability for the detect→analyze→heal pipeline.

The paper's evaluation is quantitative — loss probability, queue
occupancy, state dwell times, recovery latency (Sections IV-C–IV-E,
Definitions 3–4) — so the runtime must be able to *measure* itself.
This package provides the measurement layer:

- :mod:`repro.obs.events` — a process-local event bus with one typed
  event per pipeline happening (alert enqueued/lost, scan step, unit
  emitted, state transition, heal started/finished, task undone/redone,
  normal task refused) plus the provenance events (Theorem 1/2
  undo/redo decisions, Theorem 3/4 order constraints, scheduler
  dispatches);
- :mod:`repro.obs.metrics` — counters, gauges (with high-water marks),
  and fixed-bucket histograms, plus :class:`PipelineMetrics`, a bus
  subscriber that derives the paper's quantities from the event stream;
- :mod:`repro.obs.tracing` — span-based tracing with an injectable
  monotonic clock, so both simulated and wall time work, producing a
  span tree per incident (alert → scan → plan → undo → redo);
- :mod:`repro.obs.recorder` — the flight recorder: versioned,
  append-only JSONL capture of a full run, loadable back into typed
  events;
- :mod:`repro.obs.provenance` — deterministic replay of a flight log
  (plan, partial order, schedule, metrics snapshot) and per-task causal
  explanation;
- :mod:`repro.obs.export` — JSON-lines event dumps, Prometheus-style
  text rendering, Chrome-trace/Perfetto JSON, and summary tables via
  :mod:`repro.report.tables`;
- :mod:`repro.obs.windows` — sim-time sliding-window estimators (rate
  windows, occupancy dwell windows, EWMA, quantiles) and sequential
  drift detectors (two-sided CUSUM, Page–Hinkley, G-test);
- :mod:`repro.obs.health` — the live SLO health monitor: compares
  windowed estimates against the calibrated CTMC's steady-state
  predictions, drives OK/WARN/BREACH SLOs, emits typed
  drift/SLO-transition events, and merges per-replication
  conformance reports deterministically;
- :mod:`repro.obs.perf` — wall-clock profiling and end-to-end latency
  attribution: :class:`PhaseProfiler` decomposes a run into attributed
  phases (dual sim/wall clocks, deterministic breakdown structure) and
  global cost-driver counters count CTMC solves, closure
  recomputations, pickle bytes, and queue evictions;
- :mod:`repro.obs.server` — a stdlib-only HTTP telemetry endpoint
  (``/metrics`` Prometheus text, ``/healthz``, ``/slo`` JSON,
  ``/profile`` attribution breakdowns);
- :mod:`repro.obs.runner` — instrumented end-to-end scenario drivers
  behind the ``repro-workflow obs`` CLI subcommand.

Instrumentation is strictly opt-in: every instrumented component takes
an optional bus and publishes nothing (and allocates nothing) when none
is attached.
"""

from repro.obs.events import (
    ActionDispatched,
    AlertEnqueued,
    AlertLost,
    DriftDetected,
    EventBus,
    EventRecorder,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    ObsEvent,
    OrderConstraint,
    QueueItemDropped,
    RedoDecision,
    ScanStep,
    SloTransition,
    StateTransition,
    TaskRedone,
    TaskUndone,
    UndoDecision,
    UnitEmitted,
    event_from_dict,
)
from repro.obs.health import (
    ConformanceReport,
    HealthConfig,
    HealthMonitor,
    ModelPrediction,
    Slo,
    SloSpec,
    SloState,
    merge_conformance,
    replay_verdicts,
    wilson_interval,
)
from repro.obs.export import (
    events_to_jsonl,
    metrics_table,
    profile_to_chrome_trace,
    profile_to_collapsed,
    render_prometheus,
    spans_to_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)
from repro.obs.perf import (
    PHASES,
    PROFILE_WALL_BUCKETS,
    PhaseProfiler,
    PhaseSink,
    ProfileReport,
    bump,
    counter_snapshot,
    reset_counters,
)
from repro.obs.provenance import ReplayedRun, build_span_tree, explain, replay
from repro.obs.recorder import (
    SCHEMA_VERSION,
    FlightLog,
    FlightRecorder,
    canonical_text,
    load_flight_log,
    read_flight_log,
)
from repro.obs.server import TelemetryServer
from repro.obs.tracing import ManualClock, Span, Tracer, render_span_tree
from repro.obs.windows import (
    Cusum,
    Ewma,
    OccupancyWindow,
    PageHinkley,
    RateWindow,
    SlidingWindow,
    g_test,
)

__all__ = [
    # events
    "ObsEvent",
    "AlertEnqueued",
    "AlertLost",
    "ScanStep",
    "UnitEmitted",
    "StateTransition",
    "HealStarted",
    "HealFinished",
    "TaskUndone",
    "TaskRedone",
    "NormalTaskRefused",
    "UndoDecision",
    "RedoDecision",
    "OrderConstraint",
    "ActionDispatched",
    "QueueItemDropped",
    "SloTransition",
    "DriftDetected",
    "EventBus",
    "EventRecorder",
    "event_from_dict",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PipelineMetrics",
    # tracing
    "ManualClock",
    "Span",
    "Tracer",
    "render_span_tree",
    # recorder
    "SCHEMA_VERSION",
    "FlightRecorder",
    "FlightLog",
    "canonical_text",
    "read_flight_log",
    "load_flight_log",
    # perf
    "PHASES",
    "PROFILE_WALL_BUCKETS",
    "PhaseProfiler",
    "PhaseSink",
    "ProfileReport",
    "bump",
    "counter_snapshot",
    "reset_counters",
    # provenance
    "ReplayedRun",
    "replay",
    "explain",
    "build_span_tree",
    # export
    "events_to_jsonl",
    "render_prometheus",
    "metrics_table",
    "profile_to_chrome_trace",
    "profile_to_collapsed",
    "spans_to_chrome_trace",
    # windows
    "SlidingWindow",
    "RateWindow",
    "OccupancyWindow",
    "Ewma",
    "Cusum",
    "PageHinkley",
    "g_test",
    # health
    "SloState",
    "SloSpec",
    "Slo",
    "ModelPrediction",
    "HealthConfig",
    "HealthMonitor",
    "ConformanceReport",
    "merge_conformance",
    "replay_verdicts",
    "wilson_interval",
    # server
    "TelemetryServer",
]
