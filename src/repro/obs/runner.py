"""Instrumented end-to-end scenario drivers.

These functions run a scenario with the full observability harness
attached — event bus, pipeline metrics, recorder, tracer — and return
one :class:`ObsRun` bundling everything a report needs.  They back the
``repro-workflow obs`` CLI subcommand and the empirical CTMC
validation tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RecoveryError
from repro.ids.alerts import Alert
from repro.obs.events import (
    EventBus,
    EventRecorder,
    ObsEvent,
    ScanStep,
    TaskRedone,
    TaskUndone,
)
from repro.obs.metrics import PipelineMetrics
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import ManualClock, Span, Tracer

__all__ = [
    "ObsRun",
    "SimTimeDriver",
    "run_figure1_observed",
    "run_gillespie_observed",
    "run_gillespie_batch_observed",
    "run_fullstack_observed",
]


@dataclass
class ObsRun:
    """Everything one instrumented run produced.

    Attributes
    ----------
    metrics:
        The populated pipeline-metrics collector (finalized).
    events:
        Every published event, in order.
    spans:
        Root spans of the incident trace (empty for simulators that
        have no natural incident nesting).
    result:
        Scenario-specific payload (heal report, simulator result, ...).
    monitor:
        The :class:`~repro.obs.health.HealthMonitor` that rode the run,
        when health monitoring was requested; ``None`` otherwise.
    """

    metrics: PipelineMetrics
    events: List[ObsEvent] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    result: object = None
    monitor: object = None


class SimTimeDriver:
    """Bus subscriber that advances a :class:`ManualClock` with the
    simulated cost of each pipeline operation.

    The operational system executes synchronously; in simulated time,
    each scan step costs ``scan_time × (1 + outstanding units)`` (the
    linear μ_k cross-check work of Section V-A) and each undo/redo
    costs ``task_time`` (the per-unit ξ work).  Subscribing this driver
    makes dwell times, heal durations, and span trees meaningful in
    sim-time without touching the system under observation.
    """

    def __init__(self, clock: ManualClock, scan_time: float = 1.0 / 15.0,
                 task_time: float = 1.0 / 20.0) -> None:
        self.clock = clock
        self.scan_time = scan_time
        self.task_time = task_time

    def __call__(self, event: ObsEvent) -> None:
        if isinstance(event, ScanStep):
            self.clock.advance(
                self.scan_time * (1 + event.outstanding_units)
            )
        elif isinstance(event, (TaskUndone, TaskRedone)):
            # Disposition-only notes announce a fate already paid for
            # (the closure undo); they cost no ξ work.
            if not getattr(event, "disposition", False):
                self.clock.advance(self.task_time)


def run_figure1_observed(
    false_alarms: int = 2,
    alert_buffer: int = 8,
    recovery_buffer: int = 8,
    scan_time: float = 1.0 / 15.0,
    task_time: float = 1.0 / 20.0,
    inter_arrival: float = 0.05,
    flight: Optional[FlightRecorder] = None,
) -> ObsRun:
    """The paper's Figure 1 attack, driven through the Figure 2
    architecture with full observability.

    The genuine IDS alert for the forged ``t1`` arrives first; then
    ``false_alarms`` spurious alerts (uids never committed — classic
    IDS noise) follow, each ``inter_arrival`` sim-seconds apart, so the
    queues actually fill and drain.  Scan and heal advance the manual
    clock via :class:`SimTimeDriver`.  Returns metrics, the full event
    stream, and one incident span tree
    (detect → scan* → heal(undo, redo)).

    Raises :class:`~repro.errors.RecoveryError` when the recovery
    buffer is too small to admit every queued alert (the paper's
    analyzer-blocked overflow).

    Passing a :class:`~repro.obs.recorder.FlightRecorder` as ``flight``
    captures the run — events plus ``start``/``finalize`` marks — so
    :func:`repro.obs.provenance.replay` can reconstruct it exactly.
    """
    from repro.scenarios.figure1 import build_figure1
    from repro.system import SelfHealingSystem, SystemState

    sc = build_figure1(attacked=True)
    clock = ManualClock()
    bus = EventBus()
    bus.subscribe(SimTimeDriver(clock, scan_time, task_time))
    metrics = PipelineMetrics().attach(bus)
    recorder = EventRecorder().attach(bus)
    if flight is not None:
        flight.attach(bus)
    tracer = Tracer(clock)

    system = SelfHealingSystem(
        sc.store, sc.log, sc.specs_by_instance,
        alert_buffer=alert_buffer, recovery_buffer=recovery_buffer,
        bus=bus, clock=clock,
    )
    metrics.bind_queue(system.alert_queue, "alert")
    metrics.bind_queue(system.recovery_queue, "recovery")
    metrics.start(clock.now)
    if flight is not None:
        flight.mark("start", clock.now, state="NORMAL")

    report = None
    with tracer.span("incident", scenario="figure1"):
        with tracer.span("detect", genuine=1, false_alarms=false_alarms):
            system.submit_alert(Alert(clock.now, sc.malicious_uid))
            for i in range(false_alarms):
                clock.advance(inter_arrival)
                system.submit_alert(
                    Alert(clock.now, f"noise/t0#{i + 1}", genuine=False)
                )
        scans = 0
        while system.state is SystemState.SCAN:
            system.normal_task_admissible()  # strict gate: refusals count
            with tracer.span("scan", step=scans + 1):
                plan = system.scan_step()
            if plan is None:
                raise RecoveryError(
                    "analyzer blocked: recovery queue full while alerts "
                    "are pending — increase the recovery buffer "
                    f"(capacity {recovery_buffer})"
                )
            scans += 1
        with tracer.span(
            "heal", units=system.recovery_units_queued
        ) as heal_span:
            report = system.recovery_step()
        # The heal is atomic from the runner's side; reconstruct its
        # undo/redo sub-phases from the per-task event timestamps (the
        # events are stamped at operation start, before the sim-time
        # driver advances the clock by task_time).
        for name, ev_type in (("undo", TaskUndone), ("redo", TaskRedone)):
            times = [e.time for e in recorder.of_type(ev_type)
                     if not getattr(e, "disposition", False)]
            if times:
                child = Span(name, times[0], {"tasks": len(times)})
                child.end = times[-1] + task_time
                heal_span.children.append(child)
    metrics.finalize(clock.now)
    if flight is not None:
        # Queue-depth gauges are driven by queue hooks (pops included),
        # which the event stream cannot see; snapshot their final
        # values into the mark so replay lands on the same reading.
        flight.mark("finalize", clock.now, gauges={
            "repro_alert_queue_depth": metrics.alert_depth.value,
            "repro_recovery_queue_depth": metrics.recovery_depth.value,
        })

    return ObsRun(
        metrics=metrics,
        events=list(recorder.events),
        spans=list(tracer.roots),
        result=report,
    )


def run_gillespie_observed(
    stg,
    horizon: float = 2000.0,
    seed: int = 0,
) -> ObsRun:
    """One Gillespie trajectory of ``stg``, measured through the obs
    layer — the empirical side of the CTMC validation.

    The returned metrics carry category occupancy (from state dwell
    accounting) and the observed alert-loss fraction; compare them to
    :func:`repro.markov.steady_state.steady_state` +
    :func:`repro.markov.metrics.loss_probability`.
    """
    from repro.sim.ctmc_sim import GillespieSimulator

    bus = EventBus()
    metrics = PipelineMetrics().attach(bus)
    recorder = EventRecorder().attach(bus)
    metrics.start(0.0, state="NORMAL")
    sim = GillespieSimulator(stg, random.Random(seed), bus=bus)
    result = sim.run(horizon=horizon)
    metrics.finalize(horizon)
    return ObsRun(
        metrics=metrics,
        events=list(recorder.events),
        spans=[],
        result=result,
    )


def run_gillespie_batch_observed(
    stg,
    horizon: float = 500.0,
    replications: int = 4,
    workers: int = 1,
    seed: int = 0,
) -> ObsRun:
    """A parallel Gillespie batch with merged observability.

    Replications run in worker processes, where the in-process event
    bus cannot follow; instead each worker's
    :class:`~repro.sim.ctmc_sim.GillespieResult` is folded into one
    :class:`~repro.obs.metrics.PipelineMetrics` afterwards — category
    dwell via :meth:`~repro.obs.metrics.PipelineMetrics.observe_dwell`
    (one interval per replication, weighted by occupancy), arrival and
    loss counters pooled.  The span tree records the fan-out itself:
    one root batch span with a child span per replication carrying its
    seed and measured wall-clock duration (children share a common
    origin — they ran concurrently, not stacked).

    Returns an :class:`ObsRun` whose ``result`` is the
    :class:`~repro.sim.batch.GillespieBatchResult`.
    """
    from repro.sim.batch import run_gillespie_batch

    batch = run_gillespie_batch(
        stg, horizon=horizon, replications=replications,
        workers=workers, seed=seed,
    )
    metrics = PipelineMetrics()
    for result in batch.results:
        for category, frac in result.category_occupancy.items():
            if frac > 0:
                metrics.observe_dwell(category.name, frac * horizon)
        accepted = result.arrivals - result.arrivals_lost
        if accepted:
            metrics.alerts_enqueued.inc(accepted)
        if result.arrivals_lost:
            metrics.alerts_lost.inc(result.arrivals_lost)

    clock = ManualClock()
    tracer = Tracer(clock)
    root = tracer.start_span(
        "gillespie-batch", replications=batch.replications,
        workers=batch.workers, horizon=horizon,
    )
    for i, (rep_seed, wall) in enumerate(zip(batch.seeds,
                                             batch.wall_times)):
        child = Span(f"replication-{i}", 0.0,
                     {"seed": rep_seed, "jumps": batch.results[i].jumps})
        child.end = wall
        root.children.append(child)
    clock.advance(batch.elapsed)
    tracer.end_span(root)

    return ObsRun(
        metrics=metrics,
        events=[],
        spans=list(tracer.roots),
        result=batch,
    )


def run_fullstack_observed(
    config=None,
    horizon: float = 60.0,
    seed: int = 0,
    flight: Optional[FlightRecorder] = None,
    health=None,
    health_config=None,
) -> ObsRun:
    """A full-stack timed run (real attacks, analyzer, healer) with the
    observability harness attached.

    Passing a :class:`~repro.obs.recorder.FlightRecorder` as ``flight``
    captures the run for deterministic replay; all timestamps are
    simulated time, so the log depends only on ``(config, horizon,
    seed)``.

    Passing a :class:`~repro.obs.health.ModelPrediction` as ``health``
    additionally rides a :class:`~repro.obs.health.HealthMonitor` on
    the bus.  The flight recorder is attached *before* the monitor, so
    the captured log orders each triggering event ahead of the verdict
    it caused — :func:`repro.obs.health.replay_verdicts` then re-derives
    the identical SLO/drift stream from the raw events.
    """
    from repro.obs.health import HealthMonitor
    from repro.sim.fullstack import FullStackConfig, FullStackSimulator

    cfg = config if config is not None else FullStackConfig()
    bus = EventBus()
    metrics = PipelineMetrics().attach(bus)
    recorder = EventRecorder().attach(bus)
    if flight is not None:
        flight.attach(bus)
        flight.mark("start", 0.0, state="NORMAL")
    monitor = None
    if health is not None:
        monitor = HealthMonitor(health, config=health_config).attach(bus)
    sim = FullStackSimulator(cfg, random.Random(seed), bus=bus)
    metrics.start(0.0, state="NORMAL")
    result = sim.run(horizon=horizon)
    metrics.finalize(horizon)
    if monitor is not None:
        result.conformance = monitor.report()
    if flight is not None:
        flight.mark("finalize", horizon)
    return ObsRun(
        metrics=metrics,
        events=list(recorder.events),
        spans=[],
        result=result,
        monitor=monitor,
    )
