"""Span-based tracing with an injectable clock.

An incident — one burst of alerts through detect → scan → plan → undo →
redo — is naturally a tree of timed spans.  The tracer here is tiny and
synchronous: spans nest via a context-manager API, timestamps come from
whatever zero-argument clock callable the caller injects, so the same
code traces wall time (``time.monotonic``) and simulated time
(:class:`ManualClock` driven by a simulator) identically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ObsError

__all__ = ["Clock", "ManualClock", "Span", "Tracer", "render_span_tree"]

#: A clock is any zero-argument callable returning monotonic seconds.
Clock = Any


class ManualClock:
    """Explicitly advanced clock for simulated time.

    Calling the instance returns the current time; :meth:`advance` and
    :meth:`set` move it forward (never backward — tracing needs
    monotonicity).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current time."""
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` (>= 0); returns now."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta {delta}")
        self._now += delta
        return self._now

    def set(self, now: float) -> float:
        """Jump to an absolute time (>= current); returns now."""
        if now < self._now:
            raise ValueError(
                f"cannot move clock backward: {now} < {self._now}"
            )
        self._now = float(now)
        return self._now


class Span:
    """One timed operation in an incident's span tree."""

    __slots__ = ("name", "attributes", "start", "end", "children")

    def __init__(self, name: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def finished(self) -> bool:
        """Has the span been ended?"""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed time (0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration:.6g}" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Builds span trees against an injected clock.

    Spans opened while another span is open become its children; spans
    opened at top level become roots.  The usual shape is one root per
    incident.

    **Single-owner contract**: a tracer's span stack encodes the call
    nesting of *one* logical thread of execution, so — unlike the
    lock-protected :class:`~repro.obs.metrics.MetricsRegistry` and
    :class:`~repro.obs.events.EventBus` — a tracer must not be shared
    across threads (interleaved ``start_span``/``end_span`` from two
    threads would raise nesting errors or, worse, build a wrong tree).
    Concurrent code creates one tracer per worker/shard; the fleet
    control plane keeps tracing per-shard for exactly this reason.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else time.monotonic  # lint: allow[DET001] injectable clock; wall time is the live default
        self._stack: List[Span] = []
        self.roots: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the current one (or a new root)."""
        span = Span(name, self._clock(), attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span] = None) -> Span:
        """Close the innermost span (must be ``span`` when given).

        Raises :class:`~repro.errors.ObsError` when no span is open,
        when ``span`` is already finished, or when ``span`` is not the
        innermost open one — each a lifecycle bug at the caller worth
        failing loudly over (a silently misclosed tree renders wrong).
        """
        if span is not None and span.finished:
            raise ObsError(
                f"span {span.name!r} already finished "
                f"(ended at {span.end:g}); end_span must be called "
                "exactly once per span"
            )
        if not self._stack:
            raise ObsError("no open span to end")
        top = self._stack.pop()
        if span is not None and span is not top:
            self._stack.append(top)
            raise ObsError(
                f"span nesting violated: ending {span.name!r} while "
                f"{top.name!r} is innermost"
            )
        top.end = self._clock()
        return top

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Context manager: open on enter, close on exit (also on
        exceptions, so error paths still produce finished spans)."""
        s = self.start_span(name, **attributes)
        try:
            yield s
        finally:
            self.end_span(s)


def render_span_tree(roots: List[Span], indent: str = "  ") -> str:
    """ASCII rendering of finished span trees, durations included."""
    lines: List[str] = []

    def fmt_attrs(span: Span) -> str:
        if not span.attributes:
            return ""
        inner = ", ".join(
            f"{k}={v}" for k, v in sorted(span.attributes.items())
        )
        return f"  [{inner}]"

    def walk(span: Span, depth: int) -> None:
        dur = f"{span.duration:.6g}" if span.finished else "open"
        lines.append(
            f"{indent * depth}- {span.name} ({dur}){fmt_attrs(span)}"
        )
        for child in span.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
