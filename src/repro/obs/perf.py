"""Wall-clock profiling and end-to-end latency attribution.

The paper's headline quantities — detection delay, recovery time, loss
probability — are latencies, and the rest of the observability layer
measures them in *simulated* time only.  This module adds the wall
side: a :class:`PhaseProfiler` decomposes a run into attributed phases
(detect → buffer wait → central-queue wait → grant → analyze
closure/plan/verify → schedule → heal → audit, plus runner and fleet
tick phases) in **both** sim-time and wall-time, and counts the cost
drivers behind them (CTMC solver calls, Theorem 1/2 closure
recomputations, pickle bytes shipped to replication workers, queue
evictions).

Design rules, in priority order:

1. **Deterministic shape.** Two runs of the same scenario produce the
   identical breakdown *structure* — same phase paths, same order, same
   call counts, same counters, same sim-time totals.  Only the wall
   durations differ.  :meth:`ProfileReport.structure` digests exactly
   the deterministic part, and the tests pin it run-to-run.
2. **Honest attribution.** ``attribution`` is the fraction of the
   profiled interval covered by top-level phases.  There is no
   catch-all bucket: un-instrumented driver time shows up as a coverage
   *gap*, and the acceptance gate (≥95 %) keeps the gap small.
3. **Replay-inert.** Nothing here feeds back into the system under
   observation: the profiler only ever *reads* clocks, so attaching it
   cannot perturb replay byte-identity or worker-count invariance.

Like :class:`~repro.obs.tracing.Tracer`, a profiler instance is
single-owner: phases are entered and exited on one thread.  Work
measured on other threads or in worker processes is folded in serially
afterwards via :meth:`PhaseProfiler.add_external`.  The module-level
:func:`bump` counters are lock-protected so low-level code (the CTMC
solver, the analyzer) can count events without threading a profiler
through every signature; :meth:`PhaseProfiler.start` snapshots them and
the report carries the per-run delta.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time  # lint: allow[DET001] — wall-clock profiling is this module's job
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import ObsError

__all__ = [
    "PHASES",
    "PROFILE_WALL_BUCKETS",
    "PhaseProfiler",
    "PhaseSink",
    "PhaseStat",
    "ProfileReport",
    "bump",
    "counter_snapshot",
    "reset_counters",
]

#: Histogram buckets for per-occurrence phase wall times (seconds):
#: phases run from microseconds (a queue pop) to whole seconds (a
#: batch fan-out), so the bounds are log-spaced across that range.
PROFILE_WALL_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

#: Canonical phase vocabulary, in pipeline order.  Reports list phases
#: in this order (unknown names sort after, alphabetically), so the
#: breakdown structure never depends on which phase happened to be
#: entered first.
PHASES: Tuple[str, ...] = (
    # one alert's life (system pipeline)
    "detect",
    "buffer-wait",
    "central-queue-wait",
    "grant",
    "analyze",
    "analyze.closure",
    "analyze.plan",
    "analyze.verify",
    "schedule",
    "heal",
    "heal.undo",
    "heal.settle",
    "heal.reconcile",
    "audit",
    # replication runner
    "batch.spawn",
    "batch.fan-out",
    "batch.worker",
    "batch.merge",
    # fleet control plane tick rounds
    "tick",
    "tick.ingest",
    "tick.schedule",
    "tick.process",
    "tick.harvest",
    "drain",
    "sweep",
    "rollup",
    # model side
    "solver",
)

_PHASE_RANK: Dict[str, int] = {name: i for i, name in enumerate(PHASES)}


def _rank(name: str) -> Tuple[int, str]:
    """Sort key: canonical phases in pipeline order, then the rest
    alphabetically — a total order independent of insertion order."""
    return (_PHASE_RANK.get(name, len(PHASES)), name)


# ---------------------------------------------------------------------------
# Global cost-driver counters
# ---------------------------------------------------------------------------

_COUNTER_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {}

#: Counter names the report always carries (zero when nothing bumped
#: them) — keeps the counter *structure* identical across runs that
#: differ only in whether a driver fired.
KNOWN_COUNTERS: Tuple[str, ...] = (
    "closure_recomputations",
    "ctmc_solver_calls",
    "pickle_bytes",
    "queue_evictions",
)


def bump(name: str, n: int = 1) -> None:
    """Increment a global cost-driver counter (thread-safe).

    Low-level modules call this unconditionally — it is a dict add
    under a lock, cheap enough to leave on — and profilers report the
    delta across their profiled interval.
    """
    with _COUNTER_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + n


def counter_snapshot() -> Dict[str, int]:
    """Copy of the global counters right now."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_counters() -> None:
    """Zero the global counters (test isolation)."""
    with _COUNTER_LOCK:
        _COUNTERS.clear()


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


@dataclass
class PhaseStat:
    """Accumulated cost of one phase path."""

    calls: int = 0
    wall: float = 0.0
    sim: float = 0.0

    def add(self, wall: float, sim: float, calls: int = 1) -> None:
        self.calls += calls
        self.wall += wall
        self.sim += sim


class PhaseSink:
    """Flat per-phase ``(calls, wall, sim)`` accumulator.

    The carrier the fleet's worker threads fill: each granted shard
    measures its own pipeline phases into a private sink (no shared
    state, no locks) and the control plane folds the sinks into the
    fleet :class:`PhaseProfiler` serially at harvest
    (:meth:`PhaseProfiler.absorb`) — the same isolation discipline that
    keeps the fleet deterministic keeps the profile race-free.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        #: name → [calls, wall, sim]
        self.data: Dict[str, List[float]] = {}

    def add(self, name: str, wall: float, sim: float = 0.0,
            calls: int = 1) -> None:
        slot = self.data.get(name)
        if slot is None:
            self.data[name] = [float(calls), wall, sim]
        else:
            slot[0] += calls
            slot[1] += wall
            slot[2] += sim

    @contextmanager
    def phase(
        self, name: str,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> Iterator[None]:
        """Measure one occurrence of ``name`` into this sink."""
        w0 = time.perf_counter()  # lint: allow[DET001]
        s0 = sim_clock() if sim_clock is not None else 0.0
        try:
            yield
        finally:
            wall = time.perf_counter() - w0  # lint: allow[DET001]
            sim = (sim_clock() - s0) if sim_clock is not None else 0.0
            self.add(name, wall, sim)


class PhaseProfiler:
    """Stack-based dual-clock (wall + sim) phase accumulator.

    Phases nest: entering ``analyze`` then ``analyze.closure`` records
    time under the path ``("analyze", "analyze.closure")`` as well as
    inside its parent, which is what the collapsed-stack export and the
    self-time split need.  Single-owner — see the module docstring.

    Parameters
    ----------
    sim_clock:
        Zero-arg callable returning current simulated time (e.g.
        ``clock.read``); ``None`` records zero sim durations.
    wall_clock:
        Zero-arg monotonic wall clock; injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        sim_clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._sim_clock = sim_clock
        self._wall_clock = (
            wall_clock if wall_clock is not None
            else time.perf_counter  # lint: allow[DET001]
        )
        self._stats: Dict[Tuple[str, ...], PhaseStat] = {}
        self._stack: List[str] = []
        self._t0: Optional[float] = None
        self._s0: float = 0.0
        self._total_wall: Optional[float] = None
        self._total_sim: float = 0.0
        self._counters0: Dict[str, int] = {}
        self._registry: Optional[Any] = None
        self._hists: Dict[str, Any] = {}

    def bind_registry(self, registry: Any) -> None:
        """Mirror every phase exit into a labeled registry histogram.

        Each occurrence of phase ``name`` observes its wall duration
        into ``repro_phase_wall_seconds{phase="name"}`` on the given
        :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed — any
        object with a compatible ``histogram`` method works).  Labels
        use the leaf name, not the full path, so cardinality stays
        bounded by the phase vocabulary regardless of nesting."""
        self._registry = registry
        self._hists = {}

    def _observe(self, name: str, wall: float) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = self._registry.histogram(
                "repro_phase_wall_seconds",
                buckets=PROFILE_WALL_BUCKETS,
                labels={"phase": name},
                help="Per-occurrence wall time of profiled phases.",
            )
        hist.observe(wall)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PhaseProfiler":
        """Open the profiled interval; snapshots the global counters."""
        self._t0 = self._wall_clock()
        self._s0 = self._sim()
        self._total_wall = None
        self._counters0 = counter_snapshot()
        return self

    def stop(self) -> None:
        """Close the profiled interval (idempotent)."""
        if self._t0 is None:
            raise ObsError("profiler stopped before start()")
        if self._total_wall is None:
            self._total_wall = self._wall_clock() - self._t0
            self._total_sim = self._sim() - self._s0

    def _sim(self) -> float:
        return self._sim_clock() if self._sim_clock is not None else 0.0

    # -- recording ---------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one phase occurrence under the current stack."""
        self._stack.append(name)
        path = tuple(self._stack)
        w0 = self._wall_clock()
        s0 = self._sim()
        try:
            yield
        finally:
            wall = self._wall_clock() - w0
            sim = self._sim() - s0
            self._stack.pop()
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = PhaseStat()
            stat.add(wall, sim)
            if self._registry is not None:
                self._observe(name, wall)

    def add_external(
        self,
        name: str,
        wall: float,
        sim: float = 0.0,
        calls: int = 1,
    ) -> None:
        """Attribute time measured elsewhere (a worker process, another
        thread) as one phase occurrence under the current stack."""
        path = tuple(self._stack) + (name,)
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = PhaseStat()
        stat.add(wall, sim, calls=calls)

    def add_at(
        self,
        path: Tuple[str, ...],
        wall: float,
        sim: float = 0.0,
        calls: int = 1,
    ) -> None:
        """Attribute externally measured time at an explicit absolute
        stack path — how harvest files worker-thread time under the
        ``tick.process`` phase it actually happened in, even though the
        fold runs later, inside ``tick.harvest``."""
        if not path:
            raise ObsError("add_at requires a non-empty phase path")
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = PhaseStat()
        stat.add(wall, sim, calls=calls)

    def absorb(self, sink: PhaseSink,
               prefix: Tuple[str, ...] = ()) -> None:
        """Fold a :class:`PhaseSink` in under ``prefix`` (serially,
        from the owning thread)."""
        for name in sorted(sink.data):
            calls, wall, sim = sink.data[name]
            self.add_at(prefix + (name,), wall, sim, calls=int(calls))

    def count(self, name: str, n: int = 1) -> None:
        """Bump a cost-driver counter (recorded globally; the report
        carries this run's delta)."""
        bump(name, n)

    def snapshot(self) -> Dict[Tuple[str, ...], Tuple[int, float, float]]:
        """Copy of the accumulated stats (per-tick delta computation)."""
        return {
            path: (stat.calls, stat.wall, stat.sim)
            for path, stat in self._stats.items()
        }

    # -- reading -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._t0 is not None and self._total_wall is None

    def report(self, scenario: str = "run",
               aux_roots: Tuple[str, ...] = ()) -> "ProfileReport":
        """Freeze the accumulated phases into a :class:`ProfileReport`.

        ``aux_roots`` names
        top-level paths that are *detail, not coverage* — e.g. the
        fleet folds every shard's internal phases under a synthetic
        ``workers`` root whose wall time was spent on other threads,
        concurrently with the control plane's ``tick.*`` phases; adding
        both to the attribution would double-count the interval.

        A *running* profiler reports a provisional total (clock read
        now, interval left open) so a live scrape — the ``/profile``
        endpoint mid-run — never freezes the measurement; stats are
        copied up front so the row set is consistent even when the
        owner thread is still recording.
        """
        if self._t0 is None:
            raise ObsError("profiler report requested before start()")
        if self._total_wall is not None:
            total_wall, total_sim = self._total_wall, self._total_sim
        else:
            total_wall = self._wall_clock() - self._t0
            total_sim = self._sim() - self._s0
        stats = {path: (stat.calls, stat.wall, stat.sim)
                 for path, stat in list(self._stats.items())}
        paths = sorted(
            stats,
            key=lambda p: tuple(_rank(seg) for seg in p),
        )
        # Self time: a path's wall minus the wall of its direct
        # children (clamped at zero against clock jitter).
        child_wall: Dict[Tuple[str, ...], float] = {}
        child_sim: Dict[Tuple[str, ...], float] = {}
        for path, (_, wall, sim) in stats.items():
            if len(path) > 1:
                parent = path[:-1]
                child_wall[parent] = child_wall.get(parent, 0.0) + wall
                child_sim[parent] = child_sim.get(parent, 0.0) + sim
        rows: List[Dict[str, Any]] = []
        attributed = 0.0
        for path in paths:
            calls, wall, sim = stats[path]
            if len(path) == 1 and path[0] not in aux_roots:
                attributed += wall
            rows.append({
                "path": ";".join(path),
                "name": path[-1],
                "depth": len(path) - 1,
                "calls": calls,
                "wall": wall,
                "wall_self": max(
                    wall - child_wall.get(path, 0.0), 0.0),
                "sim": sim,
                "sim_self": max(sim - child_sim.get(path, 0.0), 0.0),
            })
        now = counter_snapshot()
        counters = {name: now.get(name, 0) - self._counters0.get(name, 0)
                    for name in KNOWN_COUNTERS}
        for name in sorted(now):
            if name not in counters:
                delta = now[name] - self._counters0.get(name, 0)
                if delta:
                    counters[name] = delta
        return ProfileReport(
            scenario=scenario,
            total_wall=total_wall,
            total_sim=total_sim,
            attributed_wall=attributed,
            rows=rows,
            counters=counters,
        )


@dataclass
class ProfileReport:
    """One profiled run's attribution breakdown (plain data).

    ``rows`` are ordered by the canonical phase order at every stack
    depth, so the row sequence is a pure function of *which* phases ran
    and how often — never of thread/scheduling accidents.
    """

    scenario: str
    total_wall: float
    total_sim: float
    attributed_wall: float
    rows: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def attribution(self) -> float:
        """Fraction of the profiled wall interval covered by top-level
        phases (the ≥0.95 acceptance quantity)."""
        if self.total_wall <= 0:
            return 1.0
        return min(self.attributed_wall / self.total_wall, 1.0)

    def structure(self) -> Dict[str, Any]:
        """The deterministic part of the report: phase paths in order,
        call counts, sim totals, counters — no wall times."""
        return {
            "scenario": self.scenario,
            "rows": [
                {"path": r["path"], "calls": r["calls"], "sim": r["sim"]}
                for r in self.rows
            ],
            "counters": dict(sorted(self.counters.items())),
        }

    def structure_digest(self) -> str:
        """SHA-256 of :meth:`structure` — two runs of the same scenario
        must agree on this even though their wall times differ."""
        blob = json.dumps(self.structure(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (the ``/profile`` payload and CLI output)."""
        return {
            "scenario": self.scenario,
            "total_wall": self.total_wall,
            "total_sim": self.total_sim,
            "attributed_wall": self.attributed_wall,
            "attribution": self.attribution,
            "phases": [dict(r) for r in self.rows],
            "counters": dict(sorted(self.counters.items())),
            "structure_digest": self.structure_digest(),
        }

    def collapsed(self, root: str = "repro") -> str:
        """Flamegraph-compatible collapsed-stack rendering.

        One line per stack path, ``root;phase;subphase <weight>``, with
        weights in integer microseconds of *self* wall time (the format
        ``flamegraph.pl`` and speedscope ingest).  Zero-weight paths
        are kept — shape stays deterministic even when a phase was too
        fast to measure.
        """
        lines = []
        for row in self.rows:
            weight = int(round(row["wall_self"] * 1e6))
            lines.append(f"{root};{row['path']} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")
