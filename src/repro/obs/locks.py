"""Explicit lock hierarchy for :mod:`repro.obs` + :mod:`repro.fleet`.

Deadlock freedom by construction: every lock belongs to a named tier,
tiers are totally ordered, and a thread holding a lock at tier *L* may
only acquire locks at strictly greater tiers.  Acquisition order is
therefore acyclic globally — the property RACE003 checks statically
and RACE102 checks at runtime.

Tiers, outermost (acquired first) to innermost::

    server(0) -> registry(1) -> metric(2) -> bus(3) -> queue(4) -> shard(5)

Observed nestings in the tree today: the telemetry handler holds the
``server`` RLock while rendering, which walks the registry
(``server -> registry``) and reads instruments (``server -> metric``).
The bus, queue and shard tiers currently nest inside nothing — the bus
dispatches outside its lock and the queues/shards are phase-confined
— but they have reserved levels so the upcoming process-pool/asyncio
shard work inherits an established order instead of inventing one.

Checking is **opt-in** (``enable_checks()`` or the
``REPRO_LOCK_ORDER`` environment variable): production builds get a
plain ``threading.Lock`` with zero hot-path overhead, debug builds get
:class:`HierarchyLock`, which asserts the tier order on every acquire.
The static lint enforces the same discipline without running anything.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Tuple

__all__ = [
    "LOCK_LEVELS",
    "HierarchyLock",
    "make_lock",
    "make_rlock",
    "enable_checks",
    "checks_enabled",
]

#: tier name -> level; lower levels are acquired first (outermost).
LOCK_LEVELS: Dict[str, int] = {
    "server": 0,
    "registry": 1,
    "metric": 2,
    "bus": 3,
    "queue": 4,
    "shard": 5,
}

_enabled = False

# One stack of (level, tier) per thread, shared by every HierarchyLock.
_tls = threading.local()


def enable_checks(flag: bool = True) -> None:
    """Turn hierarchy assertions on/off for locks created *after* this."""
    global _enabled
    _enabled = flag


def checks_enabled() -> bool:
    """True when assertions are requested (API or REPRO_LOCK_ORDER=1)."""
    return _enabled or os.environ.get("REPRO_LOCK_ORDER", "") not in ("", "0")


def _held_stack() -> List[Tuple[int, str]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class HierarchyLock:
    """A lock that asserts the tier order on every acquisition.

    Holding tier *L*, a thread may only acquire tiers > *L*.  Reentrant
    re-acquisition of the *same* lock is allowed when built with
    ``reentrant=True`` (an ``RLock`` underneath).  Violations raise
    ``AssertionError`` — this is a debug-build tripwire, not a runtime
    error channel.
    """

    def __init__(self, tier: str, reentrant: bool = False) -> None:
        if tier not in LOCK_LEVELS:
            raise ValueError(
                f"unknown lock tier {tier!r}; known: "
                f"{', '.join(sorted(LOCK_LEVELS))}")
        self.tier = tier
        self.level = LOCK_LEVELS[tier]
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        if stack:
            top_level, top_tier = stack[-1]
            reacquire = (self.reentrant and top_level == self.level
                         and top_tier == self.tier)
            order = " -> ".join(
                sorted(LOCK_LEVELS, key=LOCK_LEVELS.__getitem__))
            assert self.level > top_level or reacquire, (
                f"lock hierarchy violation: acquiring tier "
                f"'{self.tier}' (level {self.level}) while holding "
                f"'{top_tier}' (level {top_level}); order is {order}"
            )
        got = self._inner.acquire(blocking, timeout)
        if got:
            stack.append((self.level, self.tier))
        return got

    def release(self) -> None:
        stack = _held_stack()
        if stack:
            stack.pop()
        self._inner.release()

    def __enter__(self) -> "HierarchyLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HierarchyLock({self.tier!r}, level={self.level})"


def make_lock(tier: str) -> Any:
    """A mutex at ``tier``: plain Lock normally, HierarchyLock in debug."""
    if checks_enabled():
        return HierarchyLock(tier, reentrant=False)
    if tier not in LOCK_LEVELS:
        raise ValueError(f"unknown lock tier {tier!r}")
    return threading.Lock()


def make_rlock(tier: str) -> Any:
    """A reentrant mutex at ``tier`` (see :func:`make_lock`)."""
    if checks_enabled():
        return HierarchyLock(tier, reentrant=True)
    if tier not in LOCK_LEVELS:
        raise ValueError(f"unknown lock tier {tier!r}")
    return threading.RLock()
