"""The flight recorder — append-only JSONL capture of one pipeline run.

A :class:`FlightRecorder` subscribes to the event bus and writes every
published event, plus explicit lifecycle *marks*, as one compact JSON
object per line.  The log is versioned (:data:`SCHEMA_VERSION` in the
header record) and self-contained: :func:`read_flight_log` rebuilds the
typed event stream from the text alone, and
:func:`repro.obs.provenance.replay` reconstructs the recovery plan,
partial order, and metrics snapshot from it deterministically.

Record shapes (all JSON objects, discriminated by ``"record"``):

``{"record": "header", "schema": 1, "label": ..., "meta": {...}}``
    Always the first line.  ``meta`` carries run parameters (seed,
    horizon, config) — *never* wall-clock timestamps, so two runs with
    the same inputs produce byte-identical logs.  With ``wall_meta=``
    on, the header additionally carries a ``"wall"`` object (hostname,
    Python version, wall start time) for operators correlating logs
    across machines; it lives *outside* ``meta`` and the byte-identity
    surface — :func:`canonical_text` strips it, and the replayer never
    reads it.
``{"record": "mark", "mark": "start", "time": 0.0, "state": "NORMAL"}``
    Lifecycle marks; ``start`` and ``finalize`` bracket the run and
    drive the replayer's dwell accounting.
``{"record": "event", "event": "ScanStep", "time": ..., ...}``
    One captured :class:`~repro.obs.events.ObsEvent`, in the flat
    :meth:`~repro.obs.events.ObsEvent.to_dict` form.
``{"record": "phase", "phase": ..., "wall": ..., "sim": ..., ...}``
    Optional profiler phase sample (:meth:`FlightRecorder.phase_sample`)
    — replay-inert: parsed into :attr:`FlightLog.phases`, invisible to
    :func:`repro.obs.provenance.replay`, stripped by
    :func:`canonical_text`.
``{"record": "wall", "duration": ...}``
    Wall-clock run duration, appended at :meth:`FlightRecorder.close`
    when ``wall_meta`` is on.  Replay-inert and canonical-stripped like
    phase samples.
"""

from __future__ import annotations

import json
import platform
import time  # lint: allow[DET001] — wall meta is opt-in and replay-inert
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ObsError
from repro.obs.events import EventBus, ObsEvent, event_from_dict

__all__ = [
    "SCHEMA_VERSION",
    "FlightRecorder",
    "FlightLog",
    "canonical_text",
    "read_flight_log",
    "load_flight_log",
]

#: Flight-log schema version; bumped on any incompatible record change.
SCHEMA_VERSION = 1


def _dumps(obj: Mapping[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class FlightRecorder:
    """Append-only recorder for one instrumented run.

    Parameters
    ----------
    label:
        Human-readable run label stored in the header (scenario name).
    path:
        Optional file to write through to; lines are flushed per record
        so a crashed run still leaves a readable prefix.  The in-memory
        copy (:meth:`text`) is kept either way.
    meta:
        JSON-serializable run parameters for the header.  Determinism
        contract: put seeds and configuration here, never wall-clock
        times or hostnames.
    wall_meta:
        When true, stamp the header with a ``"wall"`` object — host,
        Python version, wall start time — and append a ``wall`` record
        with the run's wall duration at :meth:`close`.  Kept strictly
        outside ``meta`` so replay byte-identity checks
        (:func:`canonical_text`) can ignore it: two hosts recording the
        same seeded run still agree on the canonical log.
    """

    def __init__(
        self,
        label: str = "",
        path: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
        wall_meta: bool = False,
    ) -> None:
        self._lines: List[str] = []
        self._file = open(path, "w", encoding="utf-8") if path else None
        self._closed = False
        self._wall_started: Optional[float] = None
        header: Dict[str, Any] = {
            "record": "header",
            "schema": SCHEMA_VERSION,
            "label": label,
        }
        if meta:
            header["meta"] = dict(meta)
        if wall_meta:
            self._wall_started = time.time()  # lint: allow[DET001]
            header["wall"] = {
                "host": platform.node(),
                "python": platform.python_version(),
                "started": self._wall_started,
            }
        self._append(header)

    def _append(self, obj: Mapping[str, Any]) -> None:
        if self._closed:
            raise ObsError("flight recorder is closed")
        line = _dumps(obj)
        self._lines.append(line)
        if self._file is not None:
            self._file.write(line + "\n")
            self._file.flush()

    # -- capture -------------------------------------------------------------

    def mark(self, name: str, time: float, **fields: Any) -> None:
        """Write a lifecycle mark (``start``, ``finalize``, ...)."""
        record: Dict[str, Any] = {"record": "mark", "mark": name,
                                  "time": time}
        record.update(fields)
        self._append(record)

    def __call__(self, event: ObsEvent) -> None:
        """Bus-handler signature: append one event record."""
        record: Dict[str, Any] = {"record": "event"}
        record.update(event.to_dict())
        self._append(record)

    def attach(self, bus: EventBus) -> "FlightRecorder":
        """Subscribe to ``bus``; returns self for chaining."""
        bus.subscribe(self)
        return self

    def phase_sample(self, phase: str, wall: float, sim: float = 0.0,
                     calls: int = 1) -> None:
        """Append one replay-inert profiler phase sample.

        ``phase`` is a semicolon-joined stack path (a
        :class:`~repro.obs.perf.ProfileReport` row's ``path``).  The
        replayer never sees these records and :func:`canonical_text`
        strips them, so sampling cannot perturb byte-identity.
        """
        self._append({"record": "phase", "phase": phase, "wall": wall,
                      "sim": sim, "calls": calls})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the backing file (idempotent); further
        appends raise :class:`~repro.errors.ObsError`.  With
        ``wall_meta`` on, first appends the wall-duration record."""
        if self._closed:
            return
        if self._wall_started is not None:
            self._append({
                "record": "wall",
                "duration": time.time() - self._wall_started,  # lint: allow[DET001]
            })
            self._wall_started = None
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None

    def text(self) -> str:
        """The full log as JSONL text (trailing newline included)."""
        return "\n".join(self._lines) + "\n"

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class FlightLog:
    """A parsed flight-recorder log.

    Attributes
    ----------
    header:
        The header record (``schema``, ``label``, optional ``meta``).
    marks:
        Lifecycle mark records, in log order.
    events:
        The typed event stream, rebuilt via
        :func:`~repro.obs.events.event_from_dict`, in log order.
    phases:
        Profiler phase-sample records, in log order (replay-inert).
    """

    header: Dict[str, Any]
    marks: List[Dict[str, Any]] = field(default_factory=list)
    events: List[ObsEvent] = field(default_factory=list)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    #: The closing ``wall`` record (``None`` without ``wall_meta``).
    wall_close: Optional[Dict[str, Any]] = None

    @property
    def label(self) -> str:
        """The run label from the header."""
        return str(self.header.get("label", ""))

    @property
    def meta(self) -> Dict[str, Any]:
        """Run parameters from the header (empty dict when absent)."""
        return dict(self.header.get("meta", {}))

    @property
    def wall(self) -> Dict[str, Any]:
        """Wall-clock header meta — host, python, started wall time,
        plus ``duration`` when the closing record was written.  Empty
        dict when the log was recorded without ``wall_meta``."""
        info = dict(self.header.get("wall", {}))
        if self.wall_close is not None and "duration" in self.wall_close:
            info["duration"] = self.wall_close["duration"]
        return info

    def mark(self, name: str) -> Optional[Dict[str, Any]]:
        """First mark record named ``name``, or ``None``."""
        for m in self.marks:
            if m.get("mark") == name:
                return m
        return None


def read_flight_log(text: str) -> FlightLog:
    """Parse flight-log JSONL text into a :class:`FlightLog`.

    Raises :class:`~repro.errors.ObsError` for an empty log, a missing
    or wrong-version header, unparseable lines, unknown record or event
    kinds — corrupt logs fail loudly rather than replaying wrong.
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ObsError("empty flight log")
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise ObsError(
                f"flight log line {i + 1} is not valid JSON: {exc}"
            ) from exc
    header = records[0]
    if header.get("record") != "header":
        raise ObsError(
            "flight log does not start with a header record "
            f"(got {header.get('record')!r})"
        )
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise ObsError(
            f"unsupported flight-log schema {schema!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    log = FlightLog(header=header)
    for i, record in enumerate(records[1:], start=2):
        kind = record.get("record")
        if kind == "mark":
            log.marks.append(record)
        elif kind == "event":
            try:
                log.events.append(event_from_dict(record))
            except (KeyError, TypeError) as exc:
                raise ObsError(
                    f"flight log line {i}: bad event record: {exc}"
                ) from exc
        elif kind == "phase":
            log.phases.append(record)
        elif kind == "wall":
            log.wall_close = record
        else:
            raise ObsError(
                f"flight log line {i}: unknown record kind {kind!r}"
            )
    return log


def canonical_text(text: str) -> str:
    """The byte-identity surface of a flight log.

    Strips everything wall-clock-dependent — the header's ``"wall"``
    object and the ``phase`` / ``wall`` record lines — and re-serializes
    the rest in the recorder's own compact form.  Two seeded runs of
    the same scenario must agree on this **across hosts and Python
    patch versions**, even when both recorded with ``wall_meta`` on;
    replay-identity checks compare canonical text, never the raw log.
    """
    out: List[str] = []
    for i, line in enumerate(ln for ln in text.splitlines() if ln.strip()):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ObsError(
                f"flight log line {i + 1} is not valid JSON: {exc}"
            ) from exc
        kind = record.get("record")
        if kind in ("phase", "wall"):
            continue
        if kind == "header":
            record = {k: v for k, v in record.items() if k != "wall"}
        out.append(_dumps(record))
    return "\n".join(out) + ("\n" if out else "")


def load_flight_log(path: str) -> FlightLog:
    """Read and parse a flight log from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return read_flight_log(fh.read())
