"""Exporters: JSON-lines event dumps, Prometheus text, summary tables.

Everything renders to plain strings so callers decide where the bytes
go (stdout, a file, a test assertion).
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.obs.events import ObsEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)
from repro.report.tables import Table

__all__ = ["events_to_jsonl", "render_prometheus", "metrics_table"]


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """One compact JSON object per line, in event order."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
        for e in events
    )


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument in ``registry``.

    Families (same name, different labels) share one ``# HELP`` /
    ``# TYPE`` header; histogram buckets are rendered cumulatively with
    the conventional ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    """
    lines: List[str] = []
    seen_headers = set()

    def fmt(value: float) -> str:
        if value == int(value):
            return str(int(value))
        return repr(value)

    def merge_labels(metric, extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in metric.labels]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    for metric in registry.metrics():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Counter):
            lines.append(
                f"{metric.name}{metric.label_str} {fmt(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            lines.append(
                f"{metric.name}{metric.label_str} {fmt(metric.value)}"
            )
            lines.append(
                f"{metric.name}_high_water{metric.label_str} "
                f"{fmt(metric.high_water)}"
            )
        elif isinstance(metric, Histogram):
            acc = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                acc += count
                le = 'le="%s"' % fmt(bound)
                lines.append(
                    f"{metric.name}_bucket{merge_labels(metric, le)} {acc}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{metric.name}_bucket{merge_labels(metric, inf)} "
                f"{metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{metric.label_str} {fmt(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{metric.label_str} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_table(pipeline: PipelineMetrics,
                  title: str = "Pipeline metrics") -> Table:
    """The collector's summary as a :class:`~repro.report.tables.Table`."""
    table = Table(title, ["metric", "value"])
    for name, value in pipeline.summary_rows():
        table.add_row(name, value)
    return table
