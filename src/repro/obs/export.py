"""Exporters: JSON-lines event dumps, Prometheus text, Chrome traces,
summary tables.

Everything renders to plain strings so callers decide where the bytes
go (stdout, a file, a test assertion).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.obs.events import ObsEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)
from repro.obs.perf import ProfileReport
from repro.obs.tracing import Span
from repro.report.tables import Table

__all__ = [
    "events_to_jsonl",
    "render_prometheus",
    "metrics_table",
    "profile_to_chrome_trace",
    "profile_to_collapsed",
    "spans_to_chrome_trace",
]


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """One compact JSON object per line, in event order."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
        for e in events
    )


def _format_value(value: float) -> str:
    """A sample value in Prometheus text exposition form.

    Non-finite values have dedicated spellings (``+Inf``, ``-Inf``,
    ``NaN``); integral floats drop the decimal point.  Note
    ``int(inf)`` raises, so the non-finite cases must come first.
    """
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and line feed."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(
    labels: Sequence[Tuple[str, str]],
    extra: str = "",
) -> str:
    """``{k="v",...}`` with escaped values; empty string for no labels."""
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument in ``registry``.

    Families (same name, different labels) share one ``# HELP`` /
    ``# TYPE`` header; histogram buckets are rendered cumulatively with
    the conventional ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    Label values are escaped and non-finite samples rendered per the
    text exposition format.
    """
    lines: List[str] = []
    seen_headers = set()

    for metric in registry.metrics():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        labels = _render_labels(metric.labels)
        if isinstance(metric, Counter):
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
            lines.append(
                f"{metric.name}_high_water{labels} "
                f"{_format_value(metric.high_water)}"
            )
        elif isinstance(metric, Histogram):
            acc = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                acc += count
                le = 'le="%s"' % _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_render_labels(metric.labels, le)} {acc}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{metric.name}_bucket"
                f"{_render_labels(metric.labels, inf)} {metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{labels} {_format_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{labels} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_table(pipeline: PipelineMetrics,
                  title: str = "Pipeline metrics") -> Table:
    """The collector's summary as a :class:`~repro.report.tables.Table`."""
    table = Table(title, ["metric", "value"])
    for name, value in pipeline.summary_rows():
        table.add_row(name, value)
    return table


def _micros(seconds: float) -> float:
    """Trace timestamps are microseconds."""
    return round(seconds * 1e6, 3)


def spans_to_chrome_trace(
    roots: Sequence[Span],
    events: Iterable[ObsEvent] = (),
    pid: int = 1,
) -> str:
    """Render spans (and optional events) as Chrome-trace JSON.

    The output is the trace-event format that ``chrome://tracing`` and
    Perfetto load: ``{"traceEvents": [...]}`` with one ``ph: "X"``
    (complete) event per finished span — ``ts``/``dur`` in
    microseconds — one ``ph: "B"`` (begin, never ended) per unfinished
    span, and one ``ph: "i"`` (instant) per pipeline event.  Each root
    span gets its own ``tid`` track; instants land on track 0.
    """
    trace_events: List[Dict[str, Any]] = []

    def walk(span: Span, tid: int) -> None:
        entry: Dict[str, Any] = {
            "name": span.name,
            "ph": "X" if span.finished else "B",
            "ts": _micros(span.start),
            "pid": pid,
            "tid": tid,
            "args": {k: str(v) for k, v in sorted(span.attributes.items())},
        }
        if span.finished:
            entry["dur"] = _micros(span.duration)
        trace_events.append(entry)
        for child in span.children:
            walk(child, tid)

    for tid, root in enumerate(roots, start=1):
        walk(root, tid)

    for event in events:
        payload = event.to_dict()
        payload.pop("event", None)
        payload.pop("time", None)
        trace_events.append({
            "name": event.kind,
            "ph": "i",
            "ts": _micros(event.time),
            "pid": pid,
            "tid": 0,
            "s": "t",  # thread-scoped instant
            "args": {k: str(v) for k, v in sorted(payload.items())},
        })

    return json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def profile_to_collapsed(report: ProfileReport,
                         root: str = "repro") -> str:
    """Flamegraph collapsed-stack text for a profile report.

    Thin exporter wrapper over
    :meth:`~repro.obs.perf.ProfileReport.collapsed` so all render-to-
    string surfaces live in one module; pipe the result into
    ``flamegraph.pl`` or paste into speedscope.
    """
    return report.collapsed(root)


def profile_to_chrome_trace(report: ProfileReport, pid: int = 1) -> str:
    """Render a profile report as Chrome-trace JSON with counter tracks.

    Phase rows are aggregates (total wall per stack path), not
    timestamped samples, so the timeline is *schematic*: top-level
    phases are laid end-to-end in canonical pipeline order and each
    child starts at its parent's start — positions are synthetic but
    every ``dur`` is the real accumulated wall time, so the proportions
    Perfetto shows are the true attribution.  Each cost-driver counter
    becomes a ``ph: "C"`` counter track ramping from zero to its
    per-run delta across the profiled interval, and an
    ``attributed_wall`` counter track does the same for the coverage
    quantity.
    """
    trace_events: List[Dict[str, Any]] = []
    #: phase path -> ts where its next child starts.
    child_cursor: Dict[Tuple[str, ...], float] = {(): 0.0}
    for row in report.rows:
        path = tuple(row["path"].split(";"))
        parent = path[:-1]
        start = child_cursor.get(parent, 0.0)
        child_cursor[parent] = start + row["wall"]
        child_cursor[path] = start
        trace_events.append({
            "name": row["name"],
            "cat": "phase",
            "ph": "X",
            "ts": _micros(start),
            "dur": _micros(row["wall"]),
            "pid": pid,
            "tid": 1,
            "args": {
                "path": row["path"],
                "calls": row["calls"],
                "sim": row["sim"],
                "wall_self": row["wall_self"],
            },
        })
    counters = dict(sorted(report.counters.items()))
    counters["attributed_wall"] = report.attributed_wall
    for name, value in counters.items():
        for ts, sample in ((0.0, 0), (report.total_wall, value)):
            trace_events.append({
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": _micros(ts),
                "pid": pid,
                "args": {"value": sample},
            })
    return json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms",
         "otherData": {"scenario": report.scenario,
                       "attribution": report.attribution}},
        sort_keys=True,
    )
