"""Online LTLf conformance monitoring of strict correctness.

The paper's Definition 2 (strict correctness: completeness, recovery
safety, normal-service safety, spec consistency) is checked after the
fact by the epoch audit (:mod:`repro.core.axioms`) and before queuing by
the static plan verifier (:mod:`repro.lint`).  Both leave a gap: a run
that *violates* strict correctness mid-recovery — a heal that undoes a
task outside any heal bracket, a redo dispatched before its undo, a
corrupted-region task the executed plan silently dropped — is invisible
until the run ends.  This module closes that gap with runtime
verification: Definition 2 is encoded as **finite-trace linear temporal
logic** (LTLf, after "An LTL Semantics of Business Workflows with
Recovery", PAPERS.md) and evaluated *online* over the typed
:mod:`repro.obs.events` stream, and *offline* over flight logs with
bit-identical verdicts.

Three layers:

1. **The LTLf core** — a small formula algebra (:class:`Prop`,
   :class:`Not`, :class:`And`, :class:`Or`, :class:`Next`,
   :class:`WeakNext`, :class:`Until`, :class:`Release`, plus the
   derived ``G``/``F``/``W``/``implies`` builders) compiled lazily into
   deterministic monitor automata by **formula progression**
   (:func:`progress`): consuming one trace letter rewrites the formula
   into the obligation on the remaining suffix, and memoizing the
   rewrite per (state, letter) *is* the automaton's transition table.
   Verdicts are the four RV-LTL values (:class:`Verdict`): a state of
   ``TRUE``/``FALSE`` is irrevocably satisfied/violated; otherwise the
   empty-suffix evaluation (:func:`eval_empty`) splits the undecided
   states into presumably-true / presumably-false.

2. **The Definition 2 property pack** (:func:`strict_property_pack`) —
   heal-bracket alternation, per-task undo/redo lifecycle obligations,
   Theorem 3/4 dispatch-order consistency, claimed-vs-decided blast
   radius, and the normal-service gate, each a :class:`LtlProperty` or
   a parametric :class:`SlicedLtlProperty` (one automaton per task uid
   or per order edge — classic trace slicing).

3. **The wiring** — :class:`ConformanceMonitor` subscribes the pack to
   an :class:`~repro.obs.events.EventBus`, emits one typed
   :class:`~repro.obs.events.ConformanceViolation` per failed property
   instance, and :func:`replay_conformance` re-derives the exact same
   violation stream from a recorded flight log (replay identity is
   pinned by tests).  :class:`~repro.obs.health.HealthMonitor` embeds a
   ConformanceMonitor and surfaces its verdict as the third
   ``conformance`` SLO.

The monitor is a pure function of the event sequence: it never reads a
clock, never draws randomness, and stamps every violation with the
triggering event's time (end-of-trace obligations with the last seen
time).  Feeding the same events in the same order — online through a
bus or offline from a flight log — always produces the same verdicts.

Soundness notes (why an honest run is monitor-clean):

- scan-time decisions are *monotone*: the Theorem 1/2 closure only
  grows as the log grows, so every uid decided definite at scan time is
  contained in the closure the batch heal executes — ``F undone`` is
  honest-run-safe;
- the system publishes a plan's **claimed** definite sets on its
  :class:`~repro.obs.events.UnitEmitted`, and the analyzer's own
  decision events are re-derived from the same traversal, so claimed
  and decided agree exactly unless the plan was tampered with between
  analysis and queuing (precisely the ``--inject`` fault model);
- heals are bracketed by ``HealStarted``/``HealFinished`` at every
  instrumented site (``SelfHealingSystem.recovery_step``, the fullstack
  simulator's ``commit_repairs``, and the direct epoch heals which opt
  in via ``EpochManager.heal(bracket=True)``).

Deliberately *not* monitored at runtime: the full Theorem 1 blast
radius of the *executed* closure.  Scan/recovery-timed workloads can
legitimately commit between an alert's scan and its batch heal and be
swept into the executed closure without any plan having claimed them —
the run is strictly correct (the end-to-end audit proves it) but no
online claim can anticipate it.  Blast radius is therefore checked at
plan level (claimed vs decided, above) and end-to-end by the audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.strategies import RecoveryStrategy
from repro.obs.events import (
    ActionDispatched,
    ConformanceViolation,
    EventBus,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    ObsEvent,
    OrderConstraint,
    RedoDecision,
    TaskRedone,
    TaskUndone,
    UndoDecision,
    UnitEmitted,
)

__all__ = [
    "Formula",
    "Verdict",
    "TRUE",
    "FALSE",
    "prop",
    "lnot",
    "land",
    "lor",
    "nxt",
    "wnext",
    "until",
    "release",
    "always",
    "eventually",
    "weak_until",
    "implies",
    "atoms",
    "eval_empty",
    "progress",
    "MonitorAutomaton",
    "LtlProperty",
    "SlicedLtlProperty",
    "ClaimConsistencyProperty",
    "strict_property_pack",
    "ConformanceMonitor",
    "replay_conformance",
    "DEFINITE_UNDO_CONDITIONS",
    "DEFINITE_REDO_CONDITIONS",
]


# --------------------------------------------------------------------------
# The LTLf formula algebra
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """Base class of LTLf formulas (immutable, structurally hashable —
    progression memoization keys on formula identity)."""


@dataclass(frozen=True)
class Const(Formula):
    """A propositional constant (use the :data:`TRUE`/:data:`FALSE`
    singletons; every simplification funnels into them)."""

    value: bool


#: The verum / falsum constants — also the automaton's accepting and
#: rejecting sink states.
TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Prop(Formula):
    """An atomic proposition over the current trace letter."""

    name: str


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]


@dataclass(frozen=True)
class Next(Formula):
    """Strong next: a successor position must exist and satisfy the
    operand (false at the last position)."""

    operand: Formula


@dataclass(frozen=True)
class WeakNext(Formula):
    """Weak next: vacuously true at the last position."""

    operand: Formula


@dataclass(frozen=True)
class Until(Formula):
    """``left U right``: right eventually holds, left holds until then.
    The obligation is *strong* — an unresolved Until at end of trace is
    false."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Release(Formula):
    """``left R right`` (dual of Until): right holds up to and
    including the position where left first holds, or forever."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Tail(Formula):
    """``operand``, with an overridden empty-trace verdict.

    Progression of :class:`Next`/:class:`WeakNext` must preserve the
    distinction between "a successor existed" and "the trace ended":
    both progress to their operand on a nonempty suffix, but on the
    *empty* suffix strong next is false and weak next is true,
    regardless of the operand.  :func:`tail` wraps the operand exactly
    when its natural empty-trace value differs.
    """

    operand: Formula
    accept_empty: bool


# -- smart constructors (simplify into canonical forms so progression
#    reaches the TRUE/FALSE sinks and memo keys stay small) ----------------


def prop(name: str) -> Formula:
    """An atomic proposition."""
    return Prop(name)


def lnot(f: Formula) -> Formula:
    """Negation (involutive; constants fold)."""
    if f is TRUE:
        return FALSE
    if f is FALSE:
        return TRUE
    if isinstance(f, Not):
        return f.operand
    return Not(f)


def _flatten(cls: type, parts: Iterable[Formula]) -> List[Formula]:
    out: List[Formula] = []
    for part in parts:
        if isinstance(part, cls):
            out.extend(part.parts)  # type: ignore[attr-defined]
        else:
            out.append(part)
    return out


def land(*parts: Formula) -> Formula:
    """Conjunction: flattens, folds constants, deduplicates."""
    flat: List[Formula] = []
    seen = set()
    for part in _flatten(And, parts):
        if part is FALSE:
            return FALSE
        if part is TRUE or part in seen:
            continue
        seen.add(part)
        flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def lor(*parts: Formula) -> Formula:
    """Disjunction: flattens, folds constants, deduplicates."""
    flat: List[Formula] = []
    seen = set()
    for part in _flatten(Or, parts):
        if part is TRUE:
            return TRUE
        if part is FALSE or part in seen:
            continue
        seen.add(part)
        flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def nxt(f: Formula) -> Formula:
    """Strong next (``X f``)."""
    if f is FALSE:
        return FALSE
    return Next(f)


def wnext(f: Formula) -> Formula:
    """Weak next (``WX f``)."""
    if f is TRUE:
        return TRUE
    return WeakNext(f)


def until(left: Formula, right: Formula) -> Formula:
    """``left U right`` (strong until)."""
    if right is TRUE or right is FALSE:
        return right
    if left is FALSE:
        return right
    return Until(left, right)


def release(left: Formula, right: Formula) -> Formula:
    """``left R right`` (release)."""
    if right is TRUE or right is FALSE:
        return right
    if left is TRUE:
        return right
    return Release(left, right)


def always(f: Formula) -> Formula:
    """``G f`` = ``FALSE R f``."""
    return release(FALSE, f)


def eventually(f: Formula) -> Formula:
    """``F f`` = ``TRUE U f``."""
    return until(TRUE, f)


def weak_until(left: Formula, right: Formula) -> Formula:
    """``left W right`` = ``right R (left | right)`` — like Until but
    with no obligation that ``right`` ever holds."""
    return release(right, lor(left, right))


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Material implication."""
    return lor(lnot(antecedent), consequent)


def tail(f: Formula, accept_empty: bool) -> Formula:
    """``f`` with its empty-trace verdict pinned to ``accept_empty``
    (wraps only when the natural verdict differs)."""
    if eval_empty(f) == accept_empty:
        return f
    return Tail(f, accept_empty)


# -- semantics --------------------------------------------------------------


def atoms(f: Formula) -> FrozenSet[str]:
    """Every atomic proposition occurring in ``f`` (the monitor
    restricts trace letters to this alphabet for memoization)."""
    if isinstance(f, Prop):
        return frozenset((f.name,))
    if isinstance(f, (Not, Next, WeakNext, Tail)):
        return atoms(f.operand)
    if isinstance(f, (And, Or)):
        out: FrozenSet[str] = frozenset()
        for part in f.parts:
            out |= atoms(part)
        return out
    if isinstance(f, (Until, Release)):
        return atoms(f.left) | atoms(f.right)
    return frozenset()


def eval_empty(f: Formula) -> bool:
    """Does the *empty* trace satisfy ``f``?

    The standard finite-trace rules: atoms and strong operators
    (``Prop``, ``X``, ``U``) fail on emptiness, weak operators (``WX``,
    ``R`` — hence ``G``) hold vacuously.  This is the RV-LTL
    "presumption": it is the verdict the monitor reports if the trace
    were to end now.
    """
    if isinstance(f, Const):
        return f.value
    if isinstance(f, Prop):
        return False
    if isinstance(f, Not):
        return not eval_empty(f.operand)
    if isinstance(f, And):
        return all(eval_empty(p) for p in f.parts)
    if isinstance(f, Or):
        return any(eval_empty(p) for p in f.parts)
    if isinstance(f, Next):
        return False
    if isinstance(f, WeakNext):
        return True
    if isinstance(f, Until):
        return False
    if isinstance(f, Release):
        return True
    if isinstance(f, Tail):
        return f.accept_empty
    raise TypeError(f"not an LTLf formula: {f!r}")


def progress(f: Formula, letter: Mapping[str, bool]) -> Formula:
    """One step of formula progression: the obligation on the remaining
    suffix after consuming one trace letter.

    Exact for every operator: for any letter σ and suffix w (possibly
    empty), ``σ·w ⊨ f`` iff ``w ⊨ progress(f, σ)`` — the
    :func:`tail` wrapper preserves the strong/weak next distinction at
    end of trace, and Until/Release unfold with their own emptiness
    behaviour built in.
    """
    if isinstance(f, Const):
        return f
    if isinstance(f, Prop):
        return TRUE if letter.get(f.name, False) else FALSE
    if isinstance(f, Not):
        return lnot(progress(f.operand, letter))
    if isinstance(f, And):
        return land(*(progress(p, letter) for p in f.parts))
    if isinstance(f, Or):
        return lor(*(progress(p, letter) for p in f.parts))
    if isinstance(f, Next):
        return tail(f.operand, accept_empty=False)
    if isinstance(f, WeakNext):
        return tail(f.operand, accept_empty=True)
    if isinstance(f, Until):
        # l U r  =  r | (l & X(l U r)), with the strong-next emptiness
        # built into Until's own eval_empty (False).
        return lor(
            progress(f.right, letter),
            land(progress(f.left, letter), f),
        )
    if isinstance(f, Release):
        # l R r  =  r & (l | WX(l R r)); Release's eval_empty is True.
        return land(
            progress(f.right, letter),
            lor(progress(f.left, letter), f),
        )
    if isinstance(f, Tail):
        return progress(f.operand, letter)
    raise TypeError(f"not an LTLf formula: {f!r}")


class Verdict(str, Enum):
    """RV-LTL four-valued monitor verdict."""

    #: Every extension of the consumed prefix satisfies the formula.
    SATISFIED = "satisfied"
    #: Every extension violates it.
    VIOLATED = "violated"
    #: Undecided; satisfied if the trace ended here.
    PRESUMABLY_TRUE = "presumably-true"
    #: Undecided; violated if the trace ended here.
    PRESUMABLY_FALSE = "presumably-false"

    @property
    def decided(self) -> bool:
        """Is this verdict irrevocable?"""
        return self in (Verdict.SATISFIED, Verdict.VIOLATED)


class MonitorAutomaton:
    """A deterministic monitor automaton, built lazily by progression.

    States are progressed formulas; the transition function is memoized
    per (state, letter) in a cache that may be *shared* across automata
    of the same formula (trace slicing spawns one automaton per slice —
    all slices of a property reuse one table).  Letters are restricted
    to the formula's atom alphabet, so extractors may pass arbitrary
    valuations without fragmenting the cache.
    """

    def __init__(
        self,
        formula: Formula,
        cache: Optional[
            Dict[Tuple[Formula, FrozenSet[str]], Formula]
        ] = None,
    ) -> None:
        self.formula = formula
        self.alphabet = atoms(formula)
        self.state = formula
        self._cache = cache if cache is not None else {}
        self.steps = 0

    @property
    def verdict(self) -> Verdict:
        """The RV-LTL verdict after the consumed prefix."""
        if self.state is TRUE:
            return Verdict.SATISFIED
        if self.state is FALSE:
            return Verdict.VIOLATED
        return (Verdict.PRESUMABLY_TRUE if eval_empty(self.state)
                else Verdict.PRESUMABLY_FALSE)

    def step(self, letter: Mapping[str, bool]) -> Verdict:
        """Consume one trace letter; returns the updated verdict."""
        self.steps += 1
        if self.state is TRUE or self.state is FALSE:
            return self.verdict  # sink states
        key = (
            self.state,
            frozenset(a for a in self.alphabet if letter.get(a, False)),
        )
        nxt_state = self._cache.get(key)
        if nxt_state is None:
            nxt_state = progress(self.state, letter)
            self._cache[key] = nxt_state
        self.state = nxt_state
        return self.verdict

    def finalize(self) -> Verdict:
        """Close the trace: undecided states resolve by their
        empty-suffix value (the finite-trace verdict)."""
        if self.state is TRUE:
            return Verdict.SATISFIED
        if self.state is FALSE:
            return Verdict.VIOLATED
        return (Verdict.SATISFIED if eval_empty(self.state)
                else Verdict.VIOLATED)


# --------------------------------------------------------------------------
# Properties over the typed event stream
# --------------------------------------------------------------------------


#: Theorem 1 clauses whose UndoDecision marks a *definite* undo
#: (directly malicious / infected via data flow).
DEFINITE_UNDO_CONDITIONS = ("T1.1", "T1.3")

#: Theorem 2 clauses whose RedoDecision marks a *definite* redo.
DEFINITE_REDO_CONDITIONS = ("T2.1",)


@dataclass(frozen=True)
class Finding:
    """One failed property instance (pre-event form)."""

    prop: str
    verdict: str
    instance: str
    detail: str


class LtlProperty:
    """One LTLf formula evaluated over a projection of the stream.

    ``extract`` maps an event either to a trace letter (a dict of atom
    truth values) or to ``None`` — events outside the property's
    alphabet are skipped entirely, so each property reads its own
    subsequence of the run (projection semantics; identical online and
    offline).  A violated property reports once and goes quiet.
    """

    def __init__(
        self,
        name: str,
        formula: Formula,
        extract: Callable[[ObsEvent], Optional[Dict[str, bool]]],
        describe: Optional[Callable[[ObsEvent], str]] = None,
    ) -> None:
        self.name = name
        self.automaton = MonitorAutomaton(formula)
        self._extract = extract
        self._describe = describe
        self.violated = False

    def consume(self, event: ObsEvent) -> List[Finding]:
        if self.violated:
            return []
        letter = self._extract(event)
        if letter is None:
            return []
        if self.automaton.step(letter) is Verdict.VIOLATED:
            self.violated = True
            detail = (self._describe(event) if self._describe
                      else f"{event.kind} at t={event.time:g}")
            return [Finding(self.name, Verdict.VIOLATED.value, "", detail)]
        return []

    def finalize(self) -> List[Finding]:
        if self.violated:
            return []
        if self.automaton.finalize() is Verdict.VIOLATED:
            self.violated = True
            return [Finding(
                self.name, "finally-violated", "",
                "unresolved obligation at end of trace",
            )]
        return []


class SlicedLtlProperty:
    """A parametric property: one automaton per *slice* (task uid,
    order edge, ...), all sharing one transition cache.

    ``route`` maps an event to ``(spawn, steps)``: slice keys to create
    (ignored when already live or decided) and ``(key, letter)`` pairs
    to step.  A slice that reaches a *decided* verdict stays decided
    for the rest of the trace — a satisfied obligation cannot be
    re-opened by a later event that would respawn its key (a task
    undone-then-redone in one heal must not start a fresh
    redo-before-undo slice when a later heal redoes it again), and a
    violated slice reports exactly once.  At finalize, every still-live
    slice resolves by its empty-suffix verdict.
    """

    def __init__(
        self,
        name: str,
        formula: Formula,
        route: Callable[
            [ObsEvent],
            Tuple[Sequence[str], Sequence[Tuple[str, Dict[str, bool]]]],
        ],
        finally_detail: str = "unresolved obligation at end of trace",
    ) -> None:
        self.name = name
        self.formula = formula
        self._route = route
        self._cache: Dict[Tuple[Formula, FrozenSet[str]], Formula] = {}
        self.slices: Dict[str, MonitorAutomaton] = {}
        self._decided: set = set()
        self._finally_detail = finally_detail
        self.violations = 0

    def consume(self, event: ObsEvent) -> List[Finding]:
        spawn, steps = self._route(event)
        for key in spawn:
            if key not in self.slices and key not in self._decided:
                self.slices[key] = MonitorAutomaton(
                    self.formula, cache=self._cache
                )
        out: List[Finding] = []
        for key, letter in steps:
            automaton = self.slices.get(key)
            if automaton is None:
                continue
            verdict = automaton.step(letter)
            if verdict.decided:
                del self.slices[key]
                self._decided.add(key)
            if verdict is Verdict.VIOLATED:
                self.violations += 1
                out.append(Finding(
                    self.name, Verdict.VIOLATED.value, key,
                    f"{event.kind} at t={event.time:g}",
                ))
        return out

    def finalize(self) -> List[Finding]:
        out: List[Finding] = []
        for key in sorted(self.slices):
            if self.slices[key].finalize() is Verdict.VIOLATED:
                self.violations += 1
                out.append(Finding(
                    self.name, "finally-violated", key,
                    self._finally_detail,
                ))
        self._decided.update(self.slices)
        self.slices.clear()
        return out


class ClaimConsistencyProperty:
    """Plan-level blast radius: claimed definite sets vs decisions.

    The analyzer publishes an :class:`UndoDecision`/:class:`RedoDecision`
    per Theorem 1/2 clause it fires, and the system stamps the *plan's*
    claimed definite sets onto the claimed :class:`UnitEmitted` that
    queues it.  Within one scan window (the events between claimed unit
    emissions) the two must agree exactly — a dropped undo or an
    injected redo between analysis and queuing is visible right here,
    before any heal runs.  Stateful set bookkeeping feeds two atoms
    into ``G ¬missing-claim`` / ``G ¬unjustified-claim``; abstract
    simulators publish ``claimed=False`` units, which never open a
    window, so the property is vacuous for them by construction.
    """

    UNDO = "undo-claim-consistency"
    REDO = "redo-claim-consistency"

    def __init__(self) -> None:
        self.name = "claim-consistency"
        self._undo = MonitorAutomaton(always(lnot(prop("missing"))))
        self._redo = MonitorAutomaton(always(lnot(prop("unjustified"))))
        self._decided_undo: set = set()
        self._decided_redo: set = set()
        self.violations = 0

    def consume(self, event: ObsEvent) -> List[Finding]:
        if isinstance(event, UndoDecision):
            if event.condition in DEFINITE_UNDO_CONDITIONS:
                self._decided_undo.add(event.uid)
            return []
        if isinstance(event, RedoDecision):
            if event.condition in DEFINITE_REDO_CONDITIONS:
                self._decided_redo.add(event.uid)
            return []
        if not isinstance(event, UnitEmitted) or not event.claimed:
            return []
        claimed_undo = set(event.claimed_undo)
        claimed_redo = set(event.claimed_redo)
        missing = sorted(
            (self._decided_undo - claimed_undo)
            | (self._decided_redo - claimed_redo)
        )
        unjustified = sorted(
            (claimed_undo - self._decided_undo)
            | (claimed_redo - self._decided_redo)
        )
        self._decided_undo.clear()
        self._decided_redo.clear()
        out: List[Finding] = []
        if (self._undo.state is not FALSE
                and self._undo.step({"missing": bool(missing)})
                is Verdict.VIOLATED):
            self.violations += 1
            out.append(Finding(
                self.UNDO, Verdict.VIOLATED.value,
                " ".join(missing),
                f"plan at t={event.time:g} omits decided definite "
                f"uid(s): {' '.join(missing)}",
            ))
        if (self._redo.state is not FALSE
                and self._redo.step({"unjustified": bool(unjustified)})
                is Verdict.VIOLATED):
            self.violations += 1
            out.append(Finding(
                self.REDO, Verdict.VIOLATED.value,
                " ".join(unjustified),
                f"plan at t={event.time:g} claims undecided uid(s): "
                f"{' '.join(unjustified)}",
            ))
        return out

    def finalize(self) -> List[Finding]:
        # G-safety: nothing left to resolve at end of trace.  Decisions
        # whose plan never queued (a verifier rejection aborted the
        # scan) are deliberately not judged — there is no claim to
        # compare against.
        return []


def _one_hot(event: ObsEvent, **flags: bool) -> Dict[str, bool]:
    return dict(flags)


def _heal_alternation() -> LtlProperty:
    hs, hf = prop("hs"), prop("hf")
    formula = land(
        # No finish before the first start...
        weak_until(lnot(hf), hs),
        # ...every start is eventually finished, with no nested start;
        always(implies(hs, nxt(until(lnot(hs), hf)))),
        # ...and after a finish, no second finish before the next start.
        always(implies(hf, wnext(weak_until(lnot(hf), hs)))),
    )

    def extract(event: ObsEvent) -> Optional[Dict[str, bool]]:
        if isinstance(event, HealStarted):
            return {"hs": True, "hf": False}
        if isinstance(event, HealFinished):
            return {"hs": False, "hf": True}
        return None

    return LtlProperty(
        "heal-alternation", formula, extract,
        describe=lambda e: (
            f"{e.kind} at t={e.time:g} breaks the "
            f"HealStarted/HealFinished alternation"
        ),
    )


def _task_within_heal() -> LtlProperty:
    hs, act = prop("hs"), prop("act")
    formula = land(
        weak_until(lnot(act), hs),
        always(implies(prop("hf"), wnext(weak_until(lnot(act), hs)))),
    )

    def extract(event: ObsEvent) -> Optional[Dict[str, bool]]:
        if isinstance(event, HealStarted):
            return {"hs": True, "hf": False, "act": False}
        if isinstance(event, HealFinished):
            return {"hs": False, "hf": True, "act": False}
        if isinstance(event, (TaskUndone, TaskRedone)):
            return {"hs": False, "hf": False, "act": True}
        return None

    return LtlProperty(
        "task-within-heal", formula, extract,
        describe=lambda e: (
            f"{e.kind}({getattr(e, 'uid', '?')}) at t={e.time:g} "
            f"outside any HealStarted/HealFinished bracket"
        ),
    )


def _normal_refusal() -> LtlProperty:
    formula = always(lnot(prop("bad")))

    def extract(event: ObsEvent) -> Optional[Dict[str, bool]]:
        if isinstance(event, NormalTaskRefused):
            return {"bad": event.state == "NORMAL"}
        return None

    return LtlProperty(
        "normal-refusal", formula, extract,
        describe=lambda e: (
            f"normal task refused at t={e.time:g} while the system "
            f"reports NORMAL — Theorem 4's gate fired without cause"
        ),
    )


def _undo_completeness() -> SlicedLtlProperty:
    formula = eventually(prop("undone"))

    def route(event: ObsEvent):
        if (isinstance(event, UndoDecision)
                and event.condition in DEFINITE_UNDO_CONDITIONS):
            return (event.uid,), ()
        if isinstance(event, TaskUndone):
            return (), ((event.uid, {"undone": True}),)
        return (), ()

    return SlicedLtlProperty(
        "undo-completeness", formula, route,
        finally_detail=(
            "uid decided definitely-undone (Theorem 1.1/1.3) was never "
            "undone before the trace ended"
        ),
    )


def _redo_follow_through() -> SlicedLtlProperty:
    formula = eventually(prop("done"))

    def route(event: ObsEvent):
        if (isinstance(event, RedoDecision)
                and event.condition in DEFINITE_REDO_CONDITIONS):
            return (event.uid,), ()
        if isinstance(event, TaskRedone):
            return (), ((event.uid, {"done": True}),)
        if isinstance(event, TaskUndone) and event.reason == "abandoned":
            return (), ((event.uid, {"done": True}),)
        return (), ()

    return SlicedLtlProperty(
        "redo-follow-through", formula, route,
        finally_detail=(
            "uid decided definitely-redone (Theorem 2.1) was neither "
            "redone nor abandoned before the trace ended"
        ),
    )


def _undo_before_redo() -> SlicedLtlProperty:
    formula = weak_until(lnot(prop("redo")), prop("undone"))

    def route(event: ObsEvent):
        if isinstance(event, TaskUndone):
            return ((event.uid,),
                    ((event.uid, {"redo": False, "undone": True}),))
        if isinstance(event, TaskRedone) and event.mode == "redo":
            return ((event.uid,),
                    ((event.uid, {"redo": True, "undone": False}),))
        return (), ()

    return SlicedLtlProperty(
        "undo-before-redo", formula, route,
        finally_detail="re-execution without a prior undo",
    )


class _OrderConsistency(SlicedLtlProperty):
    """Theorem 3/4 edges vs the realized dispatch order.

    One slice per published :class:`OrderConstraint` edge, keyed
    ``"before < after"``.  Action strings are *not* plan-qualified: a
    batch heal dispatches several queued plans in FIFO order, and an
    earlier plan may legitimately dispatch an action with the same
    string as a later plan's ``after`` (the same instance re-touched by
    two plans), so the naive ``¬after W before`` would false-positive
    on honest batches.  The alias-robust encoding instead demands that
    *some* ``before`` dispatch is (weakly) followed by *some* ``after``
    dispatch — or that ``after`` never dispatches at all:
    ``G ¬after ∨ F(before ∧ F after)``.  A reversed edge (the
    ``reverse-edge`` fault injection) leaves every ``after`` strictly
    ahead of every ``before`` and resolves to ``finally-violated`` when
    the trace closes.  An index from action string to edge keys keeps
    routing linear in the dispatches actually constrained.
    """

    def __init__(self) -> None:
        before, after = prop("before"), prop("after")
        super().__init__(
            "order-consistency",
            lor(
                always(lnot(after)),
                eventually(land(before, eventually(after))),
            ),
            self._route_event,
            finally_detail=(
                "a constrained action was dispatched, and no dispatch "
                "of it ever followed its required predecessor"
            ),
        )
        self._edges: Dict[str, Tuple[str, str]] = {}
        self._by_action: Dict[str, List[str]] = {}

    def _route_event(self, event: ObsEvent):
        if isinstance(event, OrderConstraint):
            key = f"{event.before} < {event.after}"
            if key not in self._edges:
                self._edges[key] = (event.before, event.after)
                self._by_action.setdefault(event.before, []).append(key)
                if event.after != event.before:
                    self._by_action.setdefault(event.after, []).append(key)
            return (key,), ()
        if isinstance(event, ActionDispatched):
            steps = []
            for key in self._by_action.get(event.action, ()):
                before, after = self._edges[key]
                steps.append((key, {
                    "before": event.action == before,
                    "after": event.action == after,
                }))
            return (), steps
        return (), ()


def strict_property_pack(
    strategy: RecoveryStrategy = RecoveryStrategy.STRICT,
) -> List[Any]:
    """The Definition 2 property pack (one fresh instance per monitor).

    ==========================  ============================================
    property                    LTLf encoding (over its event projection)
    ==========================  ============================================
    heal-alternation            ``(¬hf W hs) ∧ G(hs → X(¬hs U hf)) ∧
                                G(hf → WX(¬hf W hs))``
    task-within-heal            ``(¬act W hs) ∧ G(hf → WX(¬act W hs))``
    normal-refusal              ``G ¬(refused ∧ state=NORMAL)``
    undo-completeness           per decided uid: ``F undone``
    redo-follow-through         per T2.1 uid: ``F (redone ∨ abandoned)``
    undo-before-redo            per uid: ``¬redo W undone``
    order-consistency           per T3/T4/XU edge: ``G ¬after ∨
                                F(before ∧ F after)``
    claim-consistency           per scan window: ``G ¬missing ∧
                                G ¬unjustified``
    ==========================  ============================================

    The pack is parameterized by the operational
    :class:`~repro.core.strategies.RecoveryStrategy` (Section III-D).
    Under ``RISK_NORMAL_ONLY`` the multi-version store lets normal
    tasks run during damage analysis, and tasks executed on stale
    snapshots are legitimately re-repaired *outside* the heal bracket
    that planned them — so ``task-within-heal`` (whose atoms cannot
    tell a bracketed repair from a later multi-version re-repair) is
    relaxed out of the pack.  Every other Definition 2 obligation —
    bracket alternation, per-uid lifecycle, dispatch order, claim
    consistency — still holds verbatim, because recovery itself stays
    correct under that strategy.  ``STRICT`` and ``RISK_ALL`` run the
    full pack.
    """
    pack: List[Any] = [
        _heal_alternation(),
        _task_within_heal(),
        _normal_refusal(),
        _undo_completeness(),
        _redo_follow_through(),
        _undo_before_redo(),
        _OrderConsistency(),
        ClaimConsistencyProperty(),
    ]
    if strategy is RecoveryStrategy.RISK_NORMAL_ONLY:
        pack = [p for p in pack if p.name != "task-within-heal"]
    return pack


# --------------------------------------------------------------------------
# The conformance monitor
# --------------------------------------------------------------------------


class ConformanceMonitor:
    """Runs the Definition 2 property pack over a typed event stream.

    Attach it to a bus (:meth:`attach`) for online monitoring, or drive
    it manually with :meth:`consume` — both return/publish one
    :class:`~repro.obs.events.ConformanceViolation` per failed property
    instance, stamped with the triggering event's time.  Call
    :meth:`finalize` when the run ends to resolve liveness obligations
    (``F undone`` and friends) into ``finally-violated`` verdicts; a
    monitor left unfinalized reports hard violations only.

    The monitor is deterministic and clock-free: the violation stream
    is a pure function of the event sequence, which is what makes
    online and offline (:func:`replay_conformance`) verdicts
    bit-identical.
    """

    #: Event types the property pack reads; subscription is typed so an
    #: attached monitor never sees unrelated traffic (or its own
    #: violations).
    CONSUMES = (
        HealStarted, HealFinished, TaskUndone, TaskRedone,
        NormalTaskRefused, UndoDecision, RedoDecision, OrderConstraint,
        ActionDispatched, UnitEmitted,
    )

    def __init__(
        self, strategy: RecoveryStrategy = RecoveryStrategy.STRICT,
    ) -> None:
        #: The operational strategy whose property pack this monitor
        #: runs (see :func:`strict_property_pack`).
        self.strategy = strategy
        self.properties = strict_property_pack(strategy)
        self.violations: List[ConformanceViolation] = []
        self.now = 0.0
        self.events_seen = 0
        self.finalized = False
        self._bus: Optional[EventBus] = None

    @property
    def violation_count(self) -> int:
        """Total violations so far (the conformance SLO's value)."""
        return len(self.violations)

    @property
    def clean(self) -> bool:
        """No property instance has failed."""
        return not self.violations

    def attach(self, bus: EventBus) -> "ConformanceMonitor":
        """Subscribe to ``bus`` and publish violations back onto it;
        returns self for chaining."""
        self._bus = bus
        bus.subscribe(self.handle, types=self.CONSUMES)
        return self

    def handle(self, event: ObsEvent) -> None:
        """Bus entry point: consume and publish any violations."""
        for violation in self.consume(event):
            if self._bus is not None:
                self._bus.publish(violation)

    def consume(self, event: ObsEvent) -> List[ConformanceViolation]:
        """Feed one event through every property; returns (and records)
        the violations it triggered."""
        if event.time > self.now:
            self.now = event.time
        self.events_seen += 1
        out: List[ConformanceViolation] = []
        for prop_ in self.properties:
            for finding in prop_.consume(event):
                out.append(self._violation(event.time, finding))
        return out

    def finalize(
        self, time: Optional[float] = None
    ) -> List[ConformanceViolation]:
        """Close the trace: unresolved obligations become
        ``finally-violated`` violations (idempotent)."""
        if self.finalized:
            return []
        self.finalized = True
        stamp = self.now if time is None else time
        out: List[ConformanceViolation] = []
        for prop_ in self.properties:
            for finding in prop_.finalize():
                violation = self._violation(stamp, finding)
                out.append(violation)
                if self._bus is not None:
                    self._bus.publish(violation)
        return out

    def _violation(
        self, time: float, finding: Finding
    ) -> ConformanceViolation:
        violation = ConformanceViolation(
            time,
            property=finding.prop,
            verdict=finding.verdict,
            instance=finding.instance,
            detail=finding.detail,
        )
        self.violations.append(violation)
        return violation

    def summary(self) -> Dict[str, Any]:
        """JSON-able snapshot (embedded in the health ``/slo``
        payload)."""
        by_property: Dict[str, int] = {}
        for violation in self.violations:
            by_property[violation.property] = (
                by_property.get(violation.property, 0) + 1
            )
        pending = 0
        for prop_ in self.properties:
            slices = getattr(prop_, "slices", None)
            if slices is not None:
                pending += len(slices)
        return {
            "strategy": self.strategy.value,
            "violations": self.violation_count,
            "by_property": dict(sorted(by_property.items())),
            "pending_obligations": pending,
            "events_seen": self.events_seen,
            "finalized": self.finalized,
        }


def replay_conformance(
    events: Sequence[ObsEvent], finalize: bool = True,
    strategy: RecoveryStrategy = RecoveryStrategy.STRICT,
) -> ConformanceMonitor:
    """Re-derive conformance verdicts offline from recorded events.

    Feeds every event through a fresh :class:`ConformanceMonitor`
    (recorded :class:`ConformanceViolation` events are skipped — they
    are the monitor's own output; other derived kinds are outside
    :attr:`ConformanceMonitor.CONSUMES` and ignore themselves) and
    optionally finalizes.  Because the monitor is a pure function of
    the event sequence, the replayed violation stream equals the online
    one exactly — compare :attr:`ConformanceMonitor.violations` against
    the recorded events to pin replay identity.  Replay with the same
    ``strategy`` the run was monitored under, or the property packs
    (and hence the verdicts) differ by construction.
    """
    monitor = ConformanceMonitor(strategy=strategy)
    for event in events:
        if isinstance(event, ConformanceViolation):
            continue
        if isinstance(event, monitor.CONSUMES):
            monitor.consume(event)
    if finalize:
        monitor.finalize()
    return monitor
