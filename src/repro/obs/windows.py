"""Sliding-window estimators and drift detectors for live conformance.

The CTMC's promises — loss probability (Definition 3), ε-convergence
(Definition 4) — are statements about rates and occupancies.  Checking
them *while the system runs* needs online estimators that forget old
data (a rate measured since t=0 can never see a mid-run shift) and
sequential change detectors with bounded false-alarm behaviour.  This
module provides the statistical primitives; :mod:`repro.obs.health`
assembles them into SLO verdicts.

Everything is driven by the caller's timestamps (simulated or wall
clock — the estimators never read a clock themselves), so the same
code monitors a Gillespie run in sim-time and a live deployment in
wall time, and replaying a flight log reproduces every estimate
exactly.

- :class:`SlidingWindow` — ring buffer of ``(time, value)`` samples
  evicted by age, with mean/quantiles;
- :class:`RateWindow` — event-rate estimator (``λ̂``) with a Poisson
  confidence interval;
- :class:`Ewma` — time-decayed exponentially weighted moving average;
- :class:`OccupancyWindow` — time-weighted occupancy histogram over
  integer levels (queue depths), the empirical side of the G-test;
- :class:`Cusum` — two-sided CUSUM on a standardized sample stream;
- :class:`PageHinkley` — Page–Hinkley mean-shift detector;
- :func:`g_test` — log-likelihood-ratio goodness-of-fit test of an
  observed histogram against model probabilities (χ² p-value via the
  Wilson–Hilferty approximation; no scipy needed).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError

__all__ = [
    "SlidingWindow",
    "RateWindow",
    "Ewma",
    "OccupancyWindow",
    "Cusum",
    "PageHinkley",
    "GTestResult",
    "g_test",
    "chi2_sf",
]


class SlidingWindow:
    """Ring buffer of timestamped samples with age-based eviction.

    Parameters
    ----------
    horizon:
        Maximum sample age: a sample recorded at ``t`` is forgotten
        once the window is advanced past ``t + horizon``.
    max_samples:
        Hard cap on retained samples (ring-buffer bound) so a burst
        cannot grow memory without limit.
    """

    def __init__(self, horizon: float, max_samples: int = 4096) -> None:
        if horizon <= 0:
            raise ObsError(f"window horizon must be > 0, got {horizon}")
        if max_samples < 1:
            raise ObsError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.horizon = float(horizon)
        self._samples: Deque[Tuple[float, float]] = deque(
            maxlen=max_samples
        )
        self._now = 0.0

    def add(self, time: float, value: float) -> None:
        """Record ``value`` at ``time`` (times must not decrease)."""
        self.advance(time)
        self._samples.append((time, float(value)))

    def advance(self, now: float) -> None:
        """Move the window edge to ``now``, evicting aged-out samples."""
        if now > self._now:
            self._now = now
        edge = self._now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < edge:
            samples.popleft()

    @property
    def count(self) -> int:
        """Samples currently inside the window."""
        return len(self._samples)

    def values(self) -> List[float]:
        """The retained sample values, oldest first."""
        return [v for _, v in self._samples]

    def mean(self) -> float:
        """Mean of the retained values (0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(v for _, v in self._samples) / len(self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of retained values."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(v for _, v in self._samples)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(rank, 0)]


class RateWindow:
    """Sliding-window event-rate estimator with a Poisson CI.

    ``observe(t)`` records one event; :meth:`rate` is the event count
    in the trailing window divided by the covered span.  The span is
    clipped to the time actually observed, so early estimates are not
    biased low by the not-yet-elapsed window.
    """

    def __init__(self, horizon: float, max_samples: int = 8192) -> None:
        self._window = SlidingWindow(horizon, max_samples=max_samples)
        self._t0: Optional[float] = None

    def observe(self, time: float, weight: float = 1.0) -> None:
        """Record ``weight`` events at ``time``."""
        if self._t0 is None:
            self._t0 = time
        self._window.add(time, weight)

    def advance(self, now: float) -> None:
        """Age the window to ``now`` without recording an event."""
        if self._t0 is None:
            self._t0 = now
        self._window.advance(now)

    @property
    def count(self) -> float:
        """Weighted event count inside the window."""
        return sum(self._window.values())

    def span(self, now: float) -> float:
        """The window span actually covered at ``now``."""
        if self._t0 is None:
            return 0.0
        return min(self._window.horizon, max(now - self._t0, 0.0))

    def rate(self, now: float) -> float:
        """Events per time unit over the trailing window (0 if no
        span has been covered yet)."""
        span = self.span(now)
        if span <= 0:
            return 0.0
        self._window.advance(now)
        return self.count / span

    def confidence_interval(
        self, now: float, z: float = 1.96
    ) -> Tuple[float, float]:
        """Normal-approximation Poisson CI for the rate: ``λ̂ ±
        z·√n/T`` (clipped at 0)."""
        span = self.span(now)
        if span <= 0:
            return (0.0, 0.0)
        self._window.advance(now)
        n = self.count
        half = z * math.sqrt(max(n, 1.0)) / span
        rate = n / span
        return (max(rate - half, 0.0), rate + half)


class Ewma:
    """Time-decayed exponentially weighted moving average.

    The weight of an old observation decays as ``2^(-age/halflife)``;
    irregular observation times are handled exactly (the decay uses
    the elapsed time since the previous update, not a fixed step).
    """

    def __init__(self, halflife: float) -> None:
        if halflife <= 0:
            raise ObsError(f"halflife must be > 0, got {halflife}")
        self.halflife = float(halflife)
        self._value: Optional[float] = None
        self._last: Optional[float] = None

    @property
    def value(self) -> float:
        """Current average (0 before the first update)."""
        return self._value if self._value is not None else 0.0

    @property
    def initialized(self) -> bool:
        """Has at least one observation arrived?"""
        return self._value is not None

    def update(self, time: float, value: float) -> float:
        """Fold in ``value`` observed at ``time``; returns the new
        average."""
        if self._value is None or self._last is None:
            self._value = float(value)
        else:
            dt = max(time - self._last, 0.0)
            alpha = 1.0 - math.pow(2.0, -dt / self.halflife)
            self._value += alpha * (float(value) - self._value)
        self._last = time
        return self._value


class OccupancyWindow:
    """Time-weighted occupancy histogram over integer levels.

    Tracks how long the monitored quantity (a queue depth) spent at
    each level within a trailing window, as a list of dwell segments.
    :meth:`histogram` returns time-in-level; :meth:`jump_counts`
    returns how many dwell segments *ended* at each level — the
    effective sample counts the G-test needs (dwell segments, not
    time, are the independent observations of a CTMC trajectory).
    """

    def __init__(self, horizon: float, max_samples: int = 8192) -> None:
        if horizon <= 0:
            raise ObsError(f"window horizon must be > 0, got {horizon}")
        self.horizon = float(horizon)
        self._segments: Deque[Tuple[float, float, int]] = deque(
            maxlen=max_samples
        )  # (start, end, level)
        self._level: Optional[int] = None
        self._since = 0.0
        self._now = 0.0

    @property
    def level(self) -> Optional[int]:
        """The current level (``None`` before the first set)."""
        return self._level

    def set_level(self, time: float, level: int) -> None:
        """The quantity moved to ``level`` at ``time``; closes the
        previous dwell segment."""
        if self._level is not None and time > self._since:
            self._segments.append((self._since, time, self._level))
        self._level = int(level)
        self._since = time
        self.advance(time)

    def advance(self, now: float) -> None:
        """Age out segments wholly older than the window."""
        if now > self._now:
            self._now = now
        edge = self._now - self.horizon
        segments = self._segments
        while segments and segments[0][1] <= edge:
            segments.popleft()

    def histogram(self, now: Optional[float] = None) -> Dict[int, float]:
        """Time spent per level inside the trailing window, the open
        segment included."""
        if now is not None:
            self.advance(now)
        t1 = self._now
        edge = t1 - self.horizon
        out: Dict[int, float] = {}
        for start, end, level in self._segments:
            weight = min(end, t1) - max(start, edge)
            if weight > 0:
                out[level] = out.get(level, 0.0) + weight
        if self._level is not None and t1 > max(self._since, edge):
            out[self._level] = out.get(self._level, 0.0) + (
                t1 - max(self._since, edge)
            )
        return out

    def jump_counts(self) -> Dict[int, int]:
        """Closed dwell segments per level inside the window — the
        independent-observation counts for the G-test."""
        out: Dict[int, int] = {}
        for _, _, level in self._segments:
            out[level] = out.get(level, 0) + 1
        return out


class Cusum:
    """Two-sided CUSUM detector on a standardized sample stream.

    Feed samples expected to have mean ``target`` under the null; the
    upper branch ``S⁺`` accumulates evidence of an upward mean shift,
    the lower branch ``S⁻`` of a downward one, each drifting back by
    the slack ``k`` per sample.  An alarm fires when either branch
    exceeds ``h``.  For exponential inter-arrival times scaled by the
    model rate (mean 1 under conformance), ``k≈0.25``/``h≈8`` detects
    a 2× rate change within tens of events at a negligible false-alarm
    rate.
    """

    def __init__(self, target: float = 1.0, k: float = 0.25,
                 h: float = 8.0) -> None:
        if h <= 0 or k < 0:
            raise ObsError(
                f"need h > 0 and k >= 0, got h={h}, k={k}"
            )
        self.target = float(target)
        self.k = float(k)
        self.h = float(h)
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.samples = 0

    @property
    def statistic(self) -> float:
        """The larger branch statistic."""
        return max(self.s_pos, self.s_neg)

    @property
    def tripped(self) -> bool:
        """Is either branch above the alarm level?"""
        return self.statistic > self.h

    def update(self, x: float) -> bool:
        """Fold in one sample; returns ``True`` when the alarm fires
        (the statistic stays latched until :meth:`reset`)."""
        dev = float(x) - self.target
        self.s_pos = max(0.0, self.s_pos + dev - self.k)
        self.s_neg = max(0.0, self.s_neg - dev - self.k)
        self.samples += 1
        return self.tripped

    @property
    def direction(self) -> str:
        """Which branch dominates (``"up"`` / ``"down"`` / ``""``)."""
        if self.s_pos > self.s_neg and self.s_pos > 0:
            return "up"
        if self.s_neg > self.s_pos and self.s_neg > 0:
            return "down"
        return ""

    def reset(self) -> None:
        """Re-arm both branches."""
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.samples = 0


class PageHinkley:
    """Two-sided Page–Hinkley test for a mean shift in a sample stream.

    Each side keeps its own cumulative deviation from the running mean
    with the drift allowance ``delta`` applied *against* that side's
    shift direction: the upward sum ``Σ(x − x̄ − δ)`` alarms when it
    rises more than ``threshold`` above its running minimum, the
    downward sum ``Σ(x − x̄ + δ)`` when it falls more than
    ``threshold`` below its running maximum.  (A single shared sum —
    a common implementation shortcut — makes the downward statistic
    grow without bound whenever typical samples sit below
    ``mean + δ``, i.e. always.)
    """

    def __init__(self, delta: float = 0.05,
                 threshold: float = 10.0,
                 min_samples: int = 10) -> None:
        if threshold <= 0:
            raise ObsError(
                f"threshold must be > 0, got {threshold}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._mean = 0.0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_dn = 0.0
        self._max_dn = 0.0
        self.samples = 0

    @property
    def stat_up(self) -> float:
        """Evidence of an upward mean shift."""
        return self._cum_up - self._min_up

    @property
    def stat_down(self) -> float:
        """Evidence of a downward mean shift."""
        return self._max_dn - self._cum_dn

    @property
    def statistic(self) -> float:
        """Max of the two one-sided deviations."""
        return max(self.stat_up, self.stat_down)

    @property
    def direction(self) -> str:
        """Which side dominates (``"up"`` / ``"down"`` / ``""``)."""
        if self.stat_up > self.stat_down:
            return "up"
        if self.stat_down > self.stat_up:
            return "down"
        return ""

    @property
    def tripped(self) -> bool:
        """Is the statistic above threshold (after warm-up)?"""
        return (self.samples >= self.min_samples
                and self.statistic > self.threshold)

    def update(self, x: float) -> bool:
        """Fold in one sample; returns ``True`` when the alarm fires."""
        x = float(x)
        self.samples += 1
        self._mean += (x - self._mean) / self.samples
        self._cum_up += x - self._mean - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_dn += x - self._mean + self.delta
        self._max_dn = max(self._max_dn, self._cum_dn)
        return self.tripped

    def reset(self) -> None:
        """Re-arm the detector."""
        self._mean = 0.0
        self._cum_up = self._min_up = 0.0
        self._cum_dn = self._max_dn = 0.0
        self.samples = 0


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def chi2_sf(x: float, df: int) -> float:
    """χ² survival function via the Wilson–Hilferty cube-root normal
    approximation — accurate to a few 1e-3 for df ≥ 1, which is ample
    for alarm thresholds (no scipy dependency)."""
    if df < 1:
        raise ObsError(f"df must be >= 1, got {df}")
    if x <= 0:
        return 1.0
    t = (x / df) ** (1.0 / 3.0)
    mu = 1.0 - 2.0 / (9.0 * df)
    sigma = math.sqrt(2.0 / (9.0 * df))
    return _normal_sf((t - mu) / sigma)


class GTestResult:
    """Outcome of one G-test: statistic, degrees of freedom, p-value."""

    __slots__ = ("statistic", "df", "p_value", "n")

    def __init__(self, statistic: float, df: int, p_value: float,
                 n: float) -> None:
        self.statistic = statistic
        self.df = df
        self.p_value = p_value
        self.n = n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GTestResult(G={self.statistic:.3g}, df={self.df}, "
                f"p={self.p_value:.3g}, n={self.n:g})")


def g_test(
    observed: Dict[int, float],
    expected_probs: Sequence[float],
    min_expected: float = 1.0,
) -> Optional[GTestResult]:
    """Log-likelihood-ratio goodness-of-fit of ``observed`` counts
    against model cell probabilities.

    ``observed`` maps level → count (levels beyond the model's support
    are folded into the last cell); cells whose expected count falls
    below ``min_expected`` are pooled with their neighbour so the χ²
    approximation holds.  Returns ``None`` when there is not enough
    data (fewer than two populated cells after pooling or zero total
    count) — callers treat that as "no verdict yet", never as a pass
    or fail.
    """
    k = len(expected_probs)
    if k < 2:
        return None
    total_prob = float(sum(expected_probs))
    if total_prob <= 0:
        return None
    obs = [0.0] * k
    for level, count in observed.items():
        cell = min(max(int(level), 0), k - 1)
        obs[cell] += float(count)
    n = sum(obs)
    if n <= 0:
        return None
    exp = [n * p / total_prob for p in expected_probs]

    # Pool adjacent low-expectation cells (right to left) so every
    # remaining cell has expected count >= min_expected.
    pooled_obs: List[float] = []
    pooled_exp: List[float] = []
    acc_o = acc_e = 0.0
    for o, e in zip(obs, exp):
        acc_o += o
        acc_e += e
        if acc_e >= min_expected:
            pooled_obs.append(acc_o)
            pooled_exp.append(acc_e)
            acc_o = acc_e = 0.0
    if acc_e > 0 and pooled_exp:
        pooled_obs[-1] += acc_o
        pooled_exp[-1] += acc_e
    if len(pooled_exp) < 2:
        return None

    g = 0.0
    for o, e in zip(pooled_obs, pooled_exp):
        if o > 0:
            g += o * math.log(o / e)
    g *= 2.0
    df = len(pooled_exp) - 1
    return GTestResult(g, df, chi2_sf(g, df), n)
