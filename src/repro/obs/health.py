"""Live SLO health monitoring and CTMC model-conformance checking.

The CTMC of Section IV sizes the system's buffers from assumed rates
(λ, μ_k, ξ_k) and promises a loss probability (Definition 3) and an
ε-convergence (Definition 4) in return.  Those promises are only worth
anything while reality matches the model — so this module watches the
live event stream and continuously answers two questions:

1. **Are we meeting the objective?**  A windowed loss-fraction estimate
   with a Wilson confidence interval drives a ``loss`` SLO through
   OK / WARN / BREACH.
2. **Is the model still right?**  Drift detectors compare the observed
   workload against the calibrated :class:`ModelPrediction`: a
   two-sided CUSUM on model-normalized inter-arrival times, a
   Page–Hinkley test on model-standardized alert-queue depth (armed
   only when the model leaves depth headroom), and a periodic G-test of
   the windowed alert-occupancy histogram against the steady-state
   marginal.  Any alarm breaches the ``model-conformance`` SLO.

The :class:`HealthMonitor` is driven purely by event timestamps —
simulated or wall-clock, it never reads a clock — so feeding it the
same event sequence always reproduces the same verdicts:
:func:`replay_verdicts` exploits that to re-derive a flight log's SLO
history bit for bit.  Per-replication :class:`ConformanceReport`
snapshots are plain data and merge order-independently
(:func:`merge_conformance`), which keeps batch runs bit-identical at
any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.strategies import RecoveryStrategy
from repro.errors import ObsError
from repro.obs.events import (
    ActionDispatched,
    AlertEnqueued,
    AlertLost,
    ConformanceViolation,
    DriftDetected,
    EventBus,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    ObsEvent,
    OrderConstraint,
    RedoDecision,
    ScanStep,
    SloTransition,
    StateTransition,
    TaskRedone,
    TaskUndone,
    UndoDecision,
    UnitEmitted,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import ConformanceMonitor
from repro.obs.windows import (
    Cusum,
    OccupancyWindow,
    PageHinkley,
    RateWindow,
    g_test,
)

if TYPE_CHECKING:  # deferred: repro.markov imports back into repro.core
    from repro.markov.stg import RecoverySTG

__all__ = [
    "SloState",
    "SloSpec",
    "Slo",
    "ModelPrediction",
    "HealthConfig",
    "HealthMonitor",
    "ConformanceReport",
    "merge_conformance",
    "replay_verdicts",
    "wilson_interval",
    "worst_state",
]


class SloState(str, Enum):
    """Verdict of one service-level objective."""

    OK = "OK"
    WARN = "WARN"
    BREACH = "BREACH"


#: Severity order used when merging verdicts (max wins).
_SEVERITY: Dict[SloState, int] = {
    SloState.OK: 0, SloState.WARN: 1, SloState.BREACH: 2,
}


def _worst(states: Sequence[SloState]) -> SloState:
    worst = SloState.OK
    for s in states:
        if _SEVERITY[s] > _SEVERITY[worst]:
            worst = s
    return worst


def worst_state(states: Sequence[SloState]) -> SloState:
    """Max-severity fold of SLO states (OK < WARN < BREACH).

    The associative, commutative rollup the fleet ``/slo`` view uses
    to aggregate per-tenant verdicts — any grouping or ordering of
    tenants yields the same fleet verdict.
    """
    return _worst(states)


def wilson_interval(
    successes: float, trials: float, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at p≈0 — exactly where a healthy system's loss
    fraction lives — unlike the normal approximation, which collapses
    to a zero-width interval there.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials)
    )
    return (max(center - half, 0.0), min(center + half, 1.0))


@dataclass(frozen=True)
class SloSpec:
    """Definition of one SLO: the measured value must stay at or below
    ``objective``."""

    name: str
    objective: float
    description: str = ""
    min_samples: int = 50


class Slo:
    """One SLO's state machine.

    Verdict rules (after the ``min_samples`` warm-up):

    - ``value <= objective`` → OK;
    - value above objective but the CI still contains it
      (``ci_low <= objective``) → WARN — plausibly still fine;
    - the whole CI above the objective (``ci_low > objective``) →
      BREACH — statistically incompatible with the target.

    The warm-up keeps the false-positive rate bounded: verdicts are
    withheld (state stays where it was) until enough samples exist for
    the interval to mean something.
    """

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.state = SloState.OK
        self.value = 0.0
        self.ci: Tuple[float, float] = (0.0, 0.0)
        self.samples = 0.0
        self.transitions = 0

    @property
    def burn_rate(self) -> float:
        """How fast the budget burns: measured value / objective (1.0
        means exactly at target)."""
        if self.spec.objective <= 0:
            return math.inf if self.value > 0 else 0.0
        return self.value / self.spec.objective

    def evaluate(
        self,
        value: float,
        ci: Tuple[float, float],
        samples: float,
    ) -> Optional[Tuple[SloState, SloState]]:
        """Fold in a new measurement; returns ``(old, new)`` when the
        verdict changed, else ``None``."""
        self.value = value
        self.ci = ci
        self.samples = samples
        if samples < self.spec.min_samples:
            return None
        if value <= self.spec.objective:
            new = SloState.OK
        elif ci[0] <= self.spec.objective:
            new = SloState.WARN
        else:
            new = SloState.BREACH
        if new is self.state:
            return None
        old, self.state = self.state, new
        self.transitions += 1
        return (old, new)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (the ``/slo`` endpoint's row)."""
        return {
            "name": self.spec.name,
            "state": self.state.value,
            "value": self.value,
            "objective": self.spec.objective,
            "ci": [self.ci[0], self.ci[1]],
            "burn_rate": self.burn_rate,
            "samples": self.samples,
            "transitions": self.transitions,
            "description": self.spec.description,
        }


@dataclass(frozen=True)
class ModelPrediction:
    """What the calibrated CTMC promises — the monitor's null model.

    Built once per run via :meth:`from_stg` (a steady-state solve);
    plain data so it pickles to replication workers.
    """

    arrival_rate: float
    loss_probability: float
    expected_alerts: float
    expected_units: float
    alert_marginal: Tuple[float, ...]
    unit_marginal: Tuple[float, ...]
    alert_buffer: int
    recovery_buffer: int
    convergence_time: Optional[float] = None
    #: π-weighted integrated autocorrelation time of the alert levels
    #: (:func:`repro.markov.metrics.occupancy_correlation_time`) — the
    #: design-effect timescale the occupancy G-test divides window time
    #: by to get an honest effective sample size.
    occupancy_corr_time: float = 1.0

    @classmethod
    def from_stg(
        cls,
        stg: RecoverySTG,
        backend: Optional[str] = None,
        with_convergence: bool = False,
        convergence_tol: float = 1e-3,
        convergence_horizon: float = 50.0,
    ) -> "ModelPrediction":
        """Solve ``stg``'s steady state and package the predictions.

        ``with_convergence`` additionally computes Definition 4's
        time-to-convergence (a transient sweep — noticeably more work
        than the steady-state solve, so off by default).
        """
        from repro.markov.metrics import (
            convergence_time,
            expected_alerts,
            expected_recovery_units,
            loss_probability,
            occupancy_correlation_time,
        )
        from repro.markov.steady_state import steady_state

        chain = stg.ctmc()
        pi = steady_state(chain, backend=backend)
        alert_m = [0.0] * (stg.alert_buffer + 1)
        unit_m = [0.0] * (stg.recovery_buffer + 1)
        for s in stg.states:
            p = float(pi[chain.index_of(s)])
            alert_m[s.alerts] += p
            unit_m[s.units] += p
        conv: Optional[float] = None
        if with_convergence:
            conv = convergence_time(
                stg, tol=convergence_tol,
                horizon=convergence_horizon, backend=backend,
            )
        return cls(
            arrival_rate=stg.arrival_rate,
            loss_probability=loss_probability(stg, pi),
            expected_alerts=expected_alerts(stg, pi),
            expected_units=expected_recovery_units(stg, pi),
            alert_marginal=tuple(alert_m),
            unit_marginal=tuple(unit_m),
            alert_buffer=stg.alert_buffer,
            recovery_buffer=stg.recovery_buffer,
            convergence_time=conv,
            occupancy_corr_time=occupancy_correlation_time(stg),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (embedded in the ``/slo`` payload)."""
        return {
            "arrival_rate": self.arrival_rate,
            "loss_probability": self.loss_probability,
            "expected_alerts": self.expected_alerts,
            "expected_units": self.expected_units,
            "alert_buffer": self.alert_buffer,
            "recovery_buffer": self.recovery_buffer,
            "convergence_time": self.convergence_time,
            "occupancy_corr_time": self.occupancy_corr_time,
        }


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the :class:`HealthMonitor`.

    The defaults are sized for the paper's Figure 4/5 workloads (event
    rates of order 1–20 per time unit): a window long enough to hold a
    few hundred arrivals, detector thresholds with in-control average
    run lengths of tens of thousands of events (so a no-drift run
    essentially never false-alarms — pinned by the detector tests).
    """

    window: float = 200.0
    z: float = 1.96
    loss_objective: Optional[float] = None
    loss_min_samples: int = 50
    cusum_k: float = 0.5
    cusum_h: float = 24.0
    #: Winsorization cap on the model-normalized inter-arrival gap fed
    #: to the CUSUM.  Exp(1) gaps are heavy-tailed — a handful of long
    #: gaps can spike the rate-decrease side without any rate change;
    #: clipping at 8 (exceeded with probability ~3e-4 per arrival)
    #: bounds the per-sample jump while leaving any *sustained* shift
    #: fully visible.
    cusum_clip: float = 8.0
    #: Page–Hinkley drift allowance / alarm threshold, in units of the
    #: model marginal's depth standard deviation (the monitor feeds the
    #: detector ``(depth − μ_model)/σ_model``).
    ph_delta: float = 0.5
    ph_threshold: float = 25.0
    ph_min_samples: int = 30
    #: Minimum model headroom ``(buffer − μ_model)/σ_model`` required to
    #: arm Page–Hinkley at all.  A heavily loaded model whose marginal
    #: already spans the whole buffer (e.g. λ=2 with buffer 8) leaves no
    #: depth regime the detector could call anomalous — conformant
    #: excursions saturate the queue for long autocorrelated stretches
    #: and any mean-shift test on them false-alarms.  With no headroom
    #: the occupancy G-test and the arrival CUSUM carry drift detection.
    ph_min_headroom: float = 3.0
    gtest_alpha: float = 1e-4
    gtest_every: int = 64
    gtest_min_count: int = 200
    #: Run the LTLf strict-correctness monitor
    #: (:class:`repro.obs.monitor.ConformanceMonitor`) and surface its
    #: verdict as the ``conformance`` SLO.  On by default — the monitor
    #: is cheap (a handful of automaton steps per event) and silent on
    #: honest runs.
    conformance: bool = True
    #: Which Section III-D strategy's property pack the conformance
    #: monitor runs (:func:`repro.obs.monitor.strict_property_pack`):
    #: ``RISK_NORMAL_ONLY`` relaxes ``task-within-heal``, whose heal
    #: bracketing multi-version re-repairs legitimately break.  The
    #: fleet selects this per tenant via the tenant profile's health
    #: config.
    strategy: RecoveryStrategy = RecoveryStrategy.STRICT

    def resolved_loss_objective(self, prediction: ModelPrediction) -> float:
        """The loss SLO target: explicit when set, else three times the
        model's predicted loss probability floored at 1e-3 (a correctly
        sized system keeps a healthy margin below this)."""
        if self.loss_objective is not None:
            return self.loss_objective
        return max(3.0 * prediction.loss_probability, 1e-3)


#: Category-level codes for the state-occupancy window.
_CATEGORY_LEVEL = {"NORMAL": 0, "SCAN": 1, "RECOVERY": 2}


def _parse_state(name: str) -> Optional[Tuple[int, int]]:
    """Decode a full STG state string into ``(alerts, units)``.

    Understands the :class:`~repro.markov.stg.State` renderings ``"N"``,
    ``"S:a/r"``, ``"R:r"``; returns ``None`` for category-only names
    (the fullstack system's NORMAL/SCAN/RECOVERY), where queue depths
    come from the per-event ``queue_depth`` fields instead.
    """
    if name == "N":
        return (0, 0)
    if name.startswith("S:"):
        try:
            a, r = name[2:].split("/", 1)
            return (int(a), int(r))
        except ValueError:
            return None
    if name.startswith("R:"):
        try:
            return (0, int(name[2:]))
        except ValueError:
            return None
    return None


class HealthMonitor:
    """Online conformance monitor: event stream in, verdicts out.

    Subscribe it to the bus the system/simulator publishes on
    (:meth:`attach`); it estimates λ̂, μ̂, ξ̂, queue occupancies and the
    loss fraction over a trailing window, evaluates its SLOs on every
    arrival, and runs the drift detectors.  Verdict changes are
    published back onto the same bus as
    :class:`~repro.obs.events.SloTransition` /
    :class:`~repro.obs.events.DriftDetected` events (and always
    collected in :attr:`emitted`), so the flight recorder logs them in
    causal order — attach the recorder *before* the monitor and each
    verdict lands just after the event that triggered it.

    The monitor subscribes with an explicit type list that excludes its
    own event kinds, so republishing through the bus cannot loop.
    """

    #: Event types the monitor consumes (the estimators' inputs plus
    #: everything the embedded LTLf conformance monitor reads).
    CONSUMES = (
        AlertEnqueued, AlertLost, ScanStep, UnitEmitted,
        StateTransition, HealFinished,
        HealStarted, TaskUndone, TaskRedone, NormalTaskRefused,
        UndoDecision, RedoDecision, OrderConstraint, ActionDispatched,
    )

    def __init__(
        self,
        prediction: ModelPrediction,
        config: Optional[HealthConfig] = None,
        bus: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.prediction = prediction
        self.config = config if config is not None else HealthConfig()
        self._bus = bus
        cfg = self.config

        # -- estimators ---------------------------------------------------
        self._arrivals = RateWindow(cfg.window)
        self._losses = RateWindow(cfg.window)
        self._scans = RateWindow(cfg.window)
        self._recoveries = RateWindow(cfg.window)
        self._alert_occ = OccupancyWindow(cfg.window)
        self._unit_occ = OccupancyWindow(cfg.window)
        self._category_occ = OccupancyWindow(cfg.window)

        # -- drift detectors ----------------------------------------------
        self._cusum = Cusum(target=1.0, k=cfg.cusum_k, h=cfg.cusum_h)
        self._ph = PageHinkley(delta=cfg.ph_delta,
                               threshold=cfg.ph_threshold,
                               min_samples=cfg.ph_min_samples)
        # Page–Hinkley runs on model-standardized depth samples, and
        # only when the model's own marginal leaves headroom below the
        # buffer ceiling (see HealthConfig.ph_min_headroom).
        marginal = prediction.alert_marginal
        depth_mean = sum(k * p for k, p in enumerate(marginal))
        depth_var = (sum(k * k * p for k, p in enumerate(marginal))
                     - depth_mean * depth_mean)
        self._depth_mean = depth_mean
        self._depth_sd = max(math.sqrt(max(depth_var, 0.0)), 0.5)
        buffer_top = max(len(marginal) - 1, 1)
        self.ph_armed = (
            (buffer_top - depth_mean) / self._depth_sd
            >= cfg.ph_min_headroom
        )
        self._last_arrival: Optional[float] = None
        self._tripped: Dict[str, DriftDetected] = {}
        self._gtest_p: Optional[float] = None

        # -- totals (cumulative — feed the ConformanceReport) -------------
        self.now = 0.0
        self.total_arrivals = 0
        self.total_losses = 0
        self.total_scans = 0
        self.total_recoveries = 0

        # -- SLOs ----------------------------------------------------------
        loss_obj = cfg.resolved_loss_objective(prediction)
        self.slos: Dict[str, Slo] = {
            "loss": Slo(SloSpec(
                name="loss",
                objective=loss_obj,
                description="windowed alert loss fraction vs Definition 3",
                min_samples=cfg.loss_min_samples,
            )),
            "model-conformance": Slo(SloSpec(
                name="model-conformance",
                objective=1.0,
                description="drift-detector statistic vs alarm threshold",
                min_samples=0,
            )),
        }
        #: LTLf strict-correctness monitor (None when disabled).
        self.conformance: Optional[ConformanceMonitor] = (
            ConformanceMonitor(strategy=cfg.strategy)
            if cfg.conformance else None
        )
        if self.conformance is not None:
            self.slos["conformance"] = Slo(SloSpec(
                name="conformance",
                objective=0.0,
                description=("LTLf strict-correctness violations over "
                             "the event stream (Definition 2)"),
                min_samples=0,
            ))

        #: Every SloTransition / DriftDetected this monitor produced,
        #: in order — the verdict history replay compares against.
        self.emitted: List[ObsEvent] = []

        self._registry = registry
        if registry is not None:
            self._g_lambda = registry.gauge(
                "repro_health_arrival_rate",
                help="windowed arrival-rate estimate (lambda-hat)")
            self._g_loss = registry.gauge(
                "repro_health_loss_fraction",
                help="windowed alert loss fraction")
            self._g_slo: Dict[str, Any] = {
                name: registry.gauge(
                    "repro_health_slo_state", labels={"slo": name},
                    help="SLO verdict (0=OK, 1=WARN, 2=BREACH)")
                for name in self.slos
            }
            self._c_drift = registry.counter(
                "repro_health_drift_detected_total",
                help="drift-detector alarms raised")
            self._c_transitions = registry.counter(
                "repro_health_slo_transitions_total",
                help="SLO verdict changes")
            self._c_violations = registry.counter(
                "repro_conformance_violations_total",
                help="LTLf strict-correctness property violations")

    # -- wiring ------------------------------------------------------------

    @property
    def bus(self) -> Optional[EventBus]:
        """The bus this monitor rides (``None`` before :meth:`attach`)."""
        return self._bus

    @property
    def registry(self) -> Optional[MetricsRegistry]:
        """The metrics registry the gauges live in (``None`` when the
        monitor was built without one)."""
        return self._registry

    def attach(self, bus: EventBus) -> "HealthMonitor":
        """Subscribe to ``bus`` (typed — never sees its own events) and
        publish verdicts back onto it; returns self for chaining."""
        self._bus = bus
        bus.subscribe(self.handle, types=self.CONSUMES)
        return self

    # -- event handling ----------------------------------------------------

    def handle(self, event: ObsEvent) -> None:
        """Fold one event into the estimators and re-evaluate.

        Public so replays can drive the monitor without a bus.
        """
        if event.time > self.now:
            self.now = event.time
        if (self.conformance is not None
                and isinstance(event, ConformanceMonitor.CONSUMES)):
            self._conformance_step(
                event.time, self.conformance.consume(event)
            )
        if isinstance(event, AlertEnqueued):
            self._on_arrival(event.time, lost=False)
            self._note_alert_depth(event.time, event.queue_depth)
        elif isinstance(event, AlertLost):
            self._on_arrival(event.time, lost=True)
            self._note_alert_depth(event.time, event.queue_depth)
        elif isinstance(event, UnitEmitted):
            self.total_scans += 1
            self._scans.observe(event.time)
            self._unit_occ.set_level(event.time, event.queue_depth)
        elif isinstance(event, ScanStep):
            pass  # scan work cost; rate comes from UnitEmitted
        elif isinstance(event, StateTransition):
            self._on_transition(event)
        elif isinstance(event, HealFinished):
            # The operational system heals in one batch; count it as
            # one recovery completion (the Gillespie path counts exact
            # unit-decrease jumps via StateTransition instead).
            self.total_recoveries += 1
            self._recoveries.observe(event.time)

    def finalize(self, time: Optional[float] = None) -> None:
        """Close the monitored trace: unresolved LTLf obligations become
        ``finally-violated`` conformance violations (idempotent; no-op
        when conformance monitoring is disabled).  Call at end of run —
        mid-run verdicts never depend on it."""
        if self.conformance is None:
            return
        stamp = self.now if time is None else time
        self._conformance_step(stamp, self.conformance.finalize(stamp))

    def _conformance_step(
        self, time: float, violations: Sequence[ConformanceViolation]
    ) -> None:
        """Publish fresh violations and re-evaluate the conformance SLO."""
        for violation in violations:
            if self._registry is not None:
                self._c_violations.inc()
            self._publish(violation)
        if violations:
            self._evaluate_strictness(time)

    def _evaluate_strictness(self, time: float) -> None:
        # The conformance SLO is two-state: any violation is a hard
        # BREACH (the CI is the point — a logic violation is not a
        # statistical excursion), zero violations is OK.  No WARN band,
        # so adding the SLO cannot perturb fleet scheduling or watch
        # exit codes on honest runs.
        if self.conformance is None:
            return
        value = float(self.conformance.violation_count)
        slo = self.slos["conformance"]
        self._transition_slo(
            time, slo,
            slo.evaluate(value, (value, value), samples=math.inf),
        )

    def _on_arrival(self, time: float, lost: bool) -> None:
        self.total_arrivals += 1
        self._arrivals.observe(time)
        if lost:
            self.total_losses += 1
            self._losses.observe(time)
        else:
            self._losses.advance(time)

        # CUSUM on model-normalized inter-arrival times: under the
        # calibrated model the gaps are Exp(λ0), so λ0·Δt has mean 1;
        # a sustained mean below 1 is a rate increase.  Gaps are
        # winsorized (cusum_clip) so single heavy-tail outliers cannot
        # spike the rate-decrease side.
        if self._last_arrival is not None:
            x = min(
                self.prediction.arrival_rate * (time - self._last_arrival),
                self.config.cusum_clip,
            )
            if self._cusum.update(x) and "cusum-arrival" not in self._tripped:
                direction = self._cusum.direction
                self._drift(
                    time, "cusum-arrival", self._cusum.statistic,
                    self._cusum.h,
                    "rate-increase" if direction == "down"
                    else "rate-decrease",
                )
        self._last_arrival = time

        self._evaluate_loss(time)
        if (self.config.gtest_every > 0
                and self.total_arrivals % self.config.gtest_every == 0):
            self._run_gtest(time)

    def _note_alert_depth(self, time: float, depth: int) -> None:
        self._alert_occ.set_level(time, depth)
        # Page–Hinkley on model-standardized depth samples: a sustained
        # occupancy rise (queue filling faster than the model says)
        # shifts the mean.  Disarmed when the model itself predicts
        # routine saturation — no depth regime is anomalous then.
        if not self.ph_armed:
            return
        x = (float(depth) - self._depth_mean) / self._depth_sd
        if self._ph.update(x) and "page-hinkley" not in self._tripped:
            self._drift(time, "page-hinkley", self._ph.statistic,
                        self._ph.threshold, "occupancy-shift")

    def _on_transition(self, event: StateTransition) -> None:
        level = _CATEGORY_LEVEL.get(event.category_to)
        if level is not None:
            self._category_occ.set_level(event.time, level)
        old = _parse_state(event.old)
        new = _parse_state(event.new)
        if old is None or new is None:
            return
        self._alert_occ.set_level(event.time, new[0])
        self._unit_occ.set_level(event.time, new[1])
        if new[1] == old[1] - 1:
            self.total_recoveries += 1
            self._recoveries.observe(event.time)

    # -- verdicts ----------------------------------------------------------

    def _publish(self, event: ObsEvent) -> None:
        self.emitted.append(event)
        if self._bus is not None:
            self._bus.publish(event)

    def _drift(self, time: float, detector: str, statistic: float,
               threshold: float, signal: str) -> None:
        event = DriftDetected(time, detector=detector,
                              statistic=statistic, threshold=threshold,
                              signal=signal)
        self._tripped[detector] = event
        if self._registry is not None:
            self._c_drift.inc()
        self._publish(event)
        self._evaluate_conformance(time)

    def _transition_slo(self, time: float, slo: Slo,
                        change: Optional[Tuple[SloState, SloState]]) -> None:
        if self._registry is not None:
            self._g_slo[slo.spec.name].set(_SEVERITY[slo.state])
        if change is None:
            return
        old, new = change
        if self._registry is not None:
            self._c_transitions.inc()
        self._publish(SloTransition(
            time, slo=slo.spec.name, old=old.value, new=new.value,
            value=slo.value, objective=slo.spec.objective,
        ))

    def _evaluate_loss(self, time: float) -> None:
        arrived = self._arrivals.count
        lost = self._losses.count
        fraction = lost / arrived if arrived else 0.0
        ci = wilson_interval(lost, arrived, z=self.config.z)
        slo = self.slos["loss"]
        self._transition_slo(time, slo,
                             slo.evaluate(fraction, ci, arrived))
        if self._registry is not None:
            self._g_lambda.set(self._arrivals.rate(time))
            self._g_loss.set(fraction)

    def _evaluate_conformance(self, time: float) -> None:
        # Value = worst detector statistic normalized by its threshold;
        # > 1 means some detector is past its alarm level.
        ratios = [0.0]
        if self._cusum.h > 0:
            ratios.append(self._cusum.statistic / self._cusum.h)
        if self._ph.samples >= self._ph.min_samples:
            ratios.append(self._ph.statistic / self._ph.threshold)
        if self._gtest_p is not None and self._gtest_p > 0:
            alpha = self.config.gtest_alpha
            # log-scale ratio: 1.0 exactly at p == alpha.
            ratios.append(math.log(1.0 / self._gtest_p)
                          / math.log(1.0 / alpha))
        for drift in self._tripped.values():
            if drift.threshold > 0:
                ratios.append(drift.statistic / drift.threshold)
        value = max(ratios)
        slo = self.slos["model-conformance"]
        # A tripped detector is a hard breach: the CI is the point.
        ci = (value, value) if self._tripped else (0.0, value)
        self._transition_slo(time, slo,
                             slo.evaluate(value, ci, samples=math.inf))

    def _run_gtest(self, time: float) -> None:
        # The null (the steady-state alert marginal) is time-weighted,
        # so the observed side must be too: raw dwell-segment counts
        # per level would overweight high-turnover levels (visits scale
        # with π·exit-rate, not π).  The windowed time-in-level
        # proportions are scaled to an effective sample size bounded
        # both by half the closed dwell segments (one occupancy cycle
        # spans roughly an up- and a down-crossing) and by the model's
        # design effect ``T / 2τ̄`` (τ̄ the π-weighted integrated
        # autocorrelation time of the level indicators): a slowly
        # mixing workload closes many segments per excursion, but those
        # segments are heavily dependent, and pretending otherwise
        # false-alarms on the model's own conformant trajectories.
        segments = sum(self._alert_occ.jump_counts().values())
        if segments < self.config.gtest_min_count:
            return
        hist = self._alert_occ.histogram(time)
        total_time = sum(hist.values())
        if total_time <= 0:
            return
        tau = max(self.prediction.occupancy_corr_time, 1e-9)
        effective_n = min(segments / 2.0, total_time / (2.0 * tau))
        if effective_n < 2.0:
            return
        counts = {
            level: effective_n * weight / total_time
            for level, weight in hist.items()
        }
        result = g_test(counts, self.prediction.alert_marginal)
        if result is None:
            return
        self._gtest_p = result.p_value
        if (result.p_value < self.config.gtest_alpha
                and "gtest-occupancy" not in self._tripped):
            # Statistic/threshold on the log-evidence scale so the
            # alarm condition is statistic > threshold, like the other
            # detectors: log(1/p) crosses log(1/alpha) at p = alpha.
            floor = 1e-300
            self._drift(
                time, "gtest-occupancy",
                math.log(1.0 / max(result.p_value, floor)),
                math.log(1.0 / self.config.gtest_alpha),
                "occupancy-shift",
            )
        else:
            self._evaluate_conformance(time)

    # -- reading -----------------------------------------------------------

    @property
    def verdict(self) -> SloState:
        """Worst current SLO state."""
        return _worst([s.state for s in self.slos.values()])

    @property
    def drifts(self) -> List[DriftDetected]:
        """Detectors currently tripped, in alarm order."""
        return sorted(self._tripped.values(), key=lambda d: d.time)

    def rates(self) -> Dict[str, float]:
        """Windowed rate estimates λ̂ / μ̂ / ξ̂.

        μ̂ and ξ̂ are completions per unit time *in the serving state*
        (scan completions over SCAN time, recovery completions over
        RECOVERY time) — the quantities the model's μ_k / ξ_k schedules
        govern; 0 when the state was not visited inside the window.
        """
        now = self.now
        cat = self._category_occ.histogram(now)
        scan_time = cat.get(_CATEGORY_LEVEL["SCAN"], 0.0)
        rec_time = cat.get(_CATEGORY_LEVEL["RECOVERY"], 0.0)
        self._scans.advance(now)
        self._recoveries.advance(now)
        return {
            "lambda_hat": self._arrivals.rate(now),
            "mu_hat": (self._scans.count / scan_time
                       if scan_time > 0 else 0.0),
            "xi_hat": (self._recoveries.count / rec_time
                       if rec_time > 0 else 0.0),
        }

    def summary(self) -> Dict[str, Any]:
        """JSON-able health snapshot — the ``/slo`` endpoint payload."""
        now = self.now
        arrived = self._arrivals.count
        lost = self._losses.count
        alert_hist = self._alert_occ.histogram(now)
        unit_hist = self._unit_occ.histogram(now)

        def _mean_level(hist: Dict[int, float]) -> float:
            total = sum(hist.values())
            if total <= 0:
                return 0.0
            return sum(k * v for k, v in hist.items()) / total

        return {
            "time": now,
            "verdict": self.verdict.value,
            "window": self.config.window,
            "rates": self.rates(),
            "arrival_ci": list(
                self._arrivals.confidence_interval(now, z=self.config.z)
            ),
            "loss": {
                "fraction": lost / arrived if arrived else 0.0,
                "ci": list(wilson_interval(lost, arrived,
                                           z=self.config.z)),
                "window_arrivals": arrived,
                "window_losses": lost,
                "total_arrivals": self.total_arrivals,
                "total_losses": self.total_losses,
            },
            "occupancy": {
                "alert_mean": _mean_level(alert_hist),
                "unit_mean": _mean_level(unit_hist),
                "gtest_p": self._gtest_p,
            },
            "slos": {name: slo.as_dict()
                     for name, slo in sorted(self.slos.items())},
            "drifts": [d.to_dict() for d in self.drifts],
            "conformance": (self.conformance.summary()
                            if self.conformance is not None else None),
            "prediction": self.prediction.as_dict(),
        }

    def report(self) -> "ConformanceReport":
        """Freeze this monitor into a mergeable per-run verdict."""
        return ConformanceReport(
            duration=self.now,
            arrivals=self.total_arrivals,
            losses=self.total_losses,
            scans=self.total_scans,
            recoveries=self.total_recoveries,
            predicted_loss=self.prediction.loss_probability,
            loss_objective=self.slos["loss"].spec.objective,
            slo_states=tuple(sorted(
                (name, slo.state.value)
                for name, slo in self.slos.items()
            )),
            slo_transitions=sum(
                s.transitions for s in self.slos.values()
            ),
            drifts=tuple(
                (d.detector, d.time, d.statistic, d.signal)
                for d in self.drifts
            ),
            violations=(self.conformance.violation_count
                        if self.conformance is not None else 0),
        )


@dataclass(frozen=True)
class ConformanceReport:
    """One run's conformance verdict, as plain mergeable data.

    Everything in here is a deterministic function of the event stream
    that produced it, and :func:`merge_conformance` combines reports
    with commutative operations only (sums, max-severity) — so batch
    runs produce bit-identical merged verdicts at any worker count and
    in any merge order (pinned by a hypothesis test).
    """

    duration: float
    arrivals: int
    losses: int
    scans: int
    recoveries: int
    predicted_loss: float
    loss_objective: float
    slo_states: Tuple[Tuple[str, str], ...]
    slo_transitions: int
    drifts: Tuple[Tuple[str, float, float, str], ...] = ()
    replications: int = 1
    #: LTLf strict-correctness violations across the covered run(s).
    violations: int = 0

    @property
    def loss_fraction(self) -> float:
        """Lost / offered alerts across the covered run(s)."""
        return self.losses / self.arrivals if self.arrivals else 0.0

    @property
    def verdict(self) -> SloState:
        """Worst SLO state in the report."""
        return _worst([SloState(v) for _, v in self.slo_states]
                      or [SloState.OK])

    @property
    def drift_count(self) -> int:
        """Detector alarms across the covered run(s)."""
        return len(self.drifts)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (batch summaries, snapshots)."""
        return {
            "verdict": self.verdict.value,
            "replications": self.replications,
            "duration": self.duration,
            "arrivals": self.arrivals,
            "losses": self.losses,
            "loss_fraction": self.loss_fraction,
            "predicted_loss": self.predicted_loss,
            "loss_objective": self.loss_objective,
            "scans": self.scans,
            "recoveries": self.recoveries,
            "slo_states": [list(pair) for pair in self.slo_states],
            "slo_transitions": self.slo_transitions,
            "drift_count": self.drift_count,
            "drifts": [list(d) for d in self.drifts],
            "violations": self.violations,
        }


def merge_conformance(
    reports: Sequence[ConformanceReport],
) -> ConformanceReport:
    """Combine per-replication reports into one batch verdict.

    Order-independent by construction: counts add, durations add,
    per-SLO states merge by max severity, drift tuples merge as a
    sorted union — so any permutation of ``reports`` (any worker
    schedule) yields the identical merged report.
    """
    if not reports:
        raise ObsError("cannot merge zero conformance reports")
    states: Dict[str, SloState] = {}
    for rep in reports:
        for name, value in rep.slo_states:
            state = SloState(value)
            prev = states.get(name)
            if prev is None or _SEVERITY[state] > _SEVERITY[prev]:
                states[name] = state
    drifts = tuple(sorted(
        {d for rep in reports for d in rep.drifts},
        key=lambda d: (d[1], d[0], d[2], d[3]),
    ))
    first = reports[0]
    return ConformanceReport(
        duration=sum(r.duration for r in reports),
        arrivals=sum(r.arrivals for r in reports),
        losses=sum(r.losses for r in reports),
        scans=sum(r.scans for r in reports),
        recoveries=sum(r.recoveries for r in reports),
        predicted_loss=first.predicted_loss,
        loss_objective=first.loss_objective,
        slo_states=tuple(sorted(
            (name, state.value) for name, state in states.items()
        )),
        slo_transitions=sum(r.slo_transitions for r in reports),
        drifts=drifts,
        replications=sum(r.replications for r in reports),
        violations=sum(r.violations for r in reports),
    )


#: Event kinds a monitor produces — stripped before re-feeding a log.
_DERIVED = (SloTransition, DriftDetected, ConformanceViolation)


def replay_verdicts(
    events: Sequence[ObsEvent],
    prediction: ModelPrediction,
    config: Optional[HealthConfig] = None,
    finalize: bool = False,
) -> List[ObsEvent]:
    """Re-derive the SLO verdict history from a recorded event stream.

    Feeds every non-derived event of ``events`` (a flight log's typed
    events) through a fresh :class:`HealthMonitor` with the same
    ``prediction``/``config`` and returns the SloTransition /
    DriftDetected / ConformanceViolation events it produces.  Because
    the monitor is a pure function of the event sequence, the result
    equals the recorded verdicts exactly — the replay guarantee the
    acceptance test pins.

    Pass ``finalize=True`` when the recorded run closed its trace
    through :meth:`HealthMonitor.finalize` before the flight log was
    written (such logs carry ``meta["conformance_finalized"]``) — the
    replayed monitor then resolves end-of-trace LTLf obligations the
    same way, keeping the streams identical.
    """
    monitor = HealthMonitor(prediction, config=config)
    for event in events:
        if isinstance(event, _DERIVED):
            continue
        monitor.handle(event)
    if finalize:
        monitor.finalize()
    return list(monitor.emitted)
