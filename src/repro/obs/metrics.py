"""Metrics primitives and the pipeline-metrics collector.

Three instrument kinds, deliberately minimal and dependency-free:

- :class:`Counter` — monotonically increasing count;
- :class:`Gauge` — settable level with a high-water mark (queue depths);
- :class:`Histogram` — fixed-bucket distribution (dwell times, service
  times, undo/redo set sizes).

A :class:`MetricsRegistry` names and owns instruments (optionally with
labels, Prometheus-style), and :class:`PipelineMetrics` subscribes a
registry to an event bus, deriving the paper's quantities — state dwell
times, queue high-water marks, loss counts, per-heal work — from the
typed event stream of :mod:`repro.obs.events`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.locks import make_lock
from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    HealFinished,
    HealStarted,
    NormalTaskRefused,
    ObsEvent,
    QueueItemDropped,
    ScanStep,
    StateTransition,
    TaskRedone,
    TaskUndone,
    UnitEmitted,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PipelineMetrics",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default histogram buckets for durations (seconds / sim-time units).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0,
)

#: Default histogram buckets for set sizes / queue lengths.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 3, 5, 8, 13, 21, 34, 55,
)

LabelsArg = Optional[Mapping[str, str]]
LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: LabelsArg) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _Metric:
    """Common identity of every instrument.

    Every instrument carries its own lock at the ``metric`` tier of
    the hierarchy in :mod:`repro.obs.locks`; all mutating operations
    (and the compound read-modify-write ones in particular, such as
    :meth:`Gauge.inc`) hold it, so instruments can be shared across
    the fleet worker pool without losing updates.  Single-field reads
    stay lock-free — on CPython a ``float`` load is atomic — while
    compound reads (:meth:`Histogram.mean`,
    :meth:`Histogram.bucket_counts`) copy under the lock.
    """

    kind = "untyped"

    def __init__(self, name: str, labels: LabelsKey, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = make_lock("metric")

    @property
    def label_str(self) -> str:
        """Prometheus-style label suffix (`{state="SCAN"}` or empty)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = (),
                 help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self._value = 0.0


class Gauge(_Metric):
    """Settable level that remembers its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = (),
                 help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0
        self._high_water = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    @property
    def high_water(self) -> float:
        """Maximum level seen since creation / last reset."""
        return self._high_water

    def _set_locked(self, value: float) -> None:
        self._value = float(value)
        if self._value > self._high_water:
            self._high_water = self._value

    def set(self, value: float) -> None:
        """Set the level (updates the high-water mark)."""
        with self._lock:
            self._set_locked(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (atomic read-modify-write)."""
        with self._lock:
            self._set_locked(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the level by ``-amount`` (atomic read-modify-write)."""
        with self._lock:
            self._set_locked(self._value - amount)

    def reset(self) -> None:
        """Zero the level and re-base the high-water mark."""
        with self._lock:
            self._value = 0.0
            self._high_water = 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram with sum and count.

    ``buckets`` are upper bounds, strictly increasing; an implicit
    ``+inf`` bucket catches the tail.  Bucket counts are per-bucket
    (not cumulative); the Prometheus renderer accumulates them.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: LabelsKey = (),
        help: str = "",
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty).

        Reads two fields, so it takes the lock: a concurrent
        ``observe`` between the reads would pair a new sum with an old
        count.
        """
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts; the last entry is the ``+inf`` bucket.

        Copied under the lock — handing out a snapshot taken while a
        writer is mid-``observe`` would tear counts against sum.
        """
        with self._lock:
            return tuple(self._counts)

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1

    def reset(self) -> None:
        """Drop every observation."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Named, get-or-create home for instruments.

    Instruments are identified by ``(name, labels)``; requesting an
    existing pair returns the same object (so instrumentation sites can
    be stateless).  Re-requesting a name with a different instrument
    kind is an error.

    Get-or-create is guarded by a registry lock: two threads racing to
    create the same ``(name, labels)`` pair receive the *same*
    instrument (the unguarded check-then-insert would let one thread's
    instrument — and every update made through it — be silently
    replaced).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], _Metric] = {}
        self._lock = make_lock("registry")

    def _get_or_create(self, cls, name: str, labels: LabelsArg,
                       help: str, **kwargs) -> _Metric:
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, labels=key[1], help=help, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, labels: LabelsArg = None,
                help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels: LabelsArg = None,
              help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: LabelsArg = None,
        help: str = "",
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def metrics(self) -> List[_Metric]:
        """Every instrument, sorted by ``(name, labels)``."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, labels: LabelsArg = None) -> Optional[_Metric]:
        """Look up an instrument; ``None`` when absent."""
        with self._lock:
            return self._metrics.get((name, _labels_key(labels)))

    def reset(self) -> None:
        """Reset every instrument in place."""
        with self._lock:
            instruments = list(self._metrics.values())
        for metric in instruments:
            metric.reset()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


class PipelineMetrics:
    """Event-bus subscriber deriving the paper's runtime quantities.

    Maintains, in a :class:`MetricsRegistry`:

    - counters ``repro_alerts_enqueued_total`` / ``repro_alerts_lost_total``
      (Definition 3's numerator, observed), ``repro_scan_steps_total``,
      ``repro_units_emitted_total``, ``repro_heals_total``,
      ``repro_tasks_undone_total`` / ``repro_tasks_redone_total``,
      ``repro_normal_tasks_refused_total`` (Theorem 4's cost);
    - gauges ``repro_alert_queue_depth`` / ``repro_recovery_queue_depth``
      with high-water marks (Section IV-E's buffer pressure);
    - histograms ``repro_state_dwell_time{state=...}`` (Section IV-C
      occupancy), ``repro_scan_cost`` (the μ_k dependence checks),
      ``repro_heal_duration``, ``repro_heal_undo_size`` /
      ``repro_heal_redo_size``.

    Time accounting starts at the first event (or an explicit
    :meth:`start`) and must be closed with :meth:`finalize` so the last
    state's dwell interval is counted.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.alerts_enqueued = r.counter(
            "repro_alerts_enqueued_total",
            help="IDS alerts accepted into the alert queue")
        self.alerts_lost = r.counter(
            "repro_alerts_lost_total",
            help="IDS alerts rejected by a full alert queue")
        self.scan_steps = r.counter(
            "repro_scan_steps_total",
            help="alerts processed by the recovery analyzer")
        self.units_emitted = r.counter(
            "repro_units_emitted_total",
            help="recovery units emitted into the recovery-task queue")
        self.heals = r.counter(
            "repro_heals_total", help="batch heals committed")
        self.tasks_undone = r.counter(
            "repro_tasks_undone_total", help="task instances undone")
        self.tasks_redone = r.counter(
            "repro_tasks_redone_total",
            help="task instances redone or newly executed")
        self.normal_refused = r.counter(
            "repro_normal_tasks_refused_total",
            help="normal tasks refused by strict correctness")
        self.alert_depth = r.gauge(
            "repro_alert_queue_depth", help="alerts currently queued")
        self.recovery_depth = r.gauge(
            "repro_recovery_queue_depth",
            help="recovery units currently queued")
        self.scan_cost = r.histogram(
            "repro_scan_cost", buckets=(1, 2, 5, 10, 25, 50, 100, 250,
                                        500, 1000),
            help="dependence checks per scan step (the mu_k work)")
        self.heal_duration = r.histogram(
            "repro_heal_duration", help="duration of each batch heal")
        self.undo_size = r.histogram(
            "repro_heal_undo_size", buckets=DEFAULT_SIZE_BUCKETS,
            help="instances undone per heal")
        self.redo_size = r.histogram(
            "repro_heal_redo_size", buckets=DEFAULT_SIZE_BUCKETS,
            help="instances redone (or newly executed) per heal")

        self._dwell: Dict[str, Histogram] = {}
        self._time_in_state: Dict[str, float] = {}
        self._state: Optional[str] = None
        self._state_since = 0.0
        self._started = False
        self._finalized_at: Optional[float] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, bus: EventBus) -> "PipelineMetrics":
        """Subscribe to ``bus``; returns self for chaining."""
        bus.subscribe(self)
        return self

    def bind_queue(self, queue, which: str) -> None:
        """Drive the ``which`` ('alert' | 'recovery') depth gauge from a
        :class:`~repro.ids.alerts.BoundedQueue` instrumentation hook."""
        gauge = (self.alert_depth if which == "alert"
                 else self.recovery_depth)
        gauge.set(len(queue))

        def hook(op: str, q) -> None:
            gauge.set(len(q))

        queue.set_hook(hook)

    # -- event handling ----------------------------------------------------

    def start(self, now: float, state: str = "NORMAL") -> None:
        """Open time accounting at ``now`` in ``state``."""
        self._state = state
        self._state_since = now
        self._started = True

    def __call__(self, event: ObsEvent) -> None:
        if isinstance(event, StateTransition):
            self._on_transition(event)
            return
        if isinstance(event, AlertEnqueued):
            self.alerts_enqueued.inc()
            self.alert_depth.set(event.queue_depth)
        elif isinstance(event, AlertLost):
            self.alerts_lost.inc()
            self.alert_depth.set(event.queue_depth)
        elif isinstance(event, ScanStep):
            self.scan_steps.inc()
            self.scan_cost.observe(event.cost)
        elif isinstance(event, UnitEmitted):
            self.units_emitted.inc(event.units)
            self.recovery_depth.set(event.queue_depth)
        elif isinstance(event, HealFinished):
            self.heals.inc()
            self.heal_duration.observe(event.duration)
            self.undo_size.observe(event.undone)
            self.redo_size.observe(event.redone + event.new_executions)
        elif isinstance(event, TaskUndone):
            # Disposition-only notes (an abandoned record the closure
            # already rolled back) are not a second undo operation.
            if not event.disposition:
                self.tasks_undone.inc()
        elif isinstance(event, TaskRedone):
            self.tasks_redone.inc()
        elif isinstance(event, NormalTaskRefused):
            self.normal_refused.inc()
        elif isinstance(event, QueueItemDropped):
            self.registry.counter(
                "repro_queue_dropped_total",
                labels={"queue": event.queue},
                help="items rejected by a full bounded queue",
            ).inc()
        if not self._started:
            # First event anchors the clock for dwell accounting.
            self.start(event.time)

    def _dwell_histogram(self, state: str) -> Histogram:
        hist = self._dwell.get(state)
        if hist is None:
            hist = self.registry.histogram(
                "repro_state_dwell_time", labels={"state": state},
                help="time per contiguous stay in each system state")
            self._dwell[state] = hist
        return hist

    def _close_interval(self, now: float) -> None:
        if self._state is None:
            return
        dwell = now - self._state_since
        if dwell < 0:
            dwell = 0.0
        self._dwell_histogram(self._state).observe(dwell)
        self._time_in_state[self._state] = (
            self._time_in_state.get(self._state, 0.0) + dwell
        )

    def _on_transition(self, event: StateTransition) -> None:
        if not self._started:
            self.start(event.time, event.category_from)
        self._close_interval(event.time)
        self._state = event.category_to
        self._state_since = event.time

    def observe_dwell(self, state: str, duration: float) -> None:
        """Record an externally-accounted stay of ``duration`` in
        ``state``.

        Used when dwell time is measured somewhere the event stream
        cannot reach — e.g. replication workers in another process
        (:mod:`repro.sim.batch`) whose per-category occupancy is merged
        into one collector after the fact.
        """
        if duration < 0:
            raise ValueError(
                f"dwell duration must be >= 0, got {duration}"
            )
        self._dwell_histogram(state).observe(duration)
        self._time_in_state[state] = (
            self._time_in_state.get(state, 0.0) + duration
        )

    def finalize(self, now: float) -> None:
        """Close the open dwell interval at ``now`` (idempotent)."""
        if self._finalized_at == now:
            return
        self._close_interval(now)
        self._state_since = now
        self._finalized_at = now

    # -- derived quantities ------------------------------------------------

    @property
    def loss_fraction(self) -> float:
        """Lost alerts / all offered alerts (Definition 3, observed)."""
        offered = self.alerts_enqueued.value + self.alerts_lost.value
        return self.alerts_lost.value / offered if offered else 0.0

    def time_in_state(self, state: str) -> float:
        """Total accumulated time in ``state`` (after finalize)."""
        return self._time_in_state.get(state, 0.0)

    def occupancy(self) -> Dict[str, float]:
        """Fraction of accounted time per state (sums to 1)."""
        total = sum(self._time_in_state.values())
        if total <= 0:
            return {}
        return {s: t / total for s, t in self._time_in_state.items()}

    def dwell_states(self) -> List[str]:
        """States with at least one closed dwell interval, sorted."""
        return sorted(self._time_in_state)

    def summary_rows(self) -> List[Tuple[str, object]]:
        """``(metric, value)`` rows for the human-readable report."""
        rows: List[Tuple[str, object]] = []
        occ = self.occupancy()
        for state in self.dwell_states():
            hist = self._dwell[state]
            rows.append((f"dwell[{state}] total", self.time_in_state(state)))
            rows.append((f"dwell[{state}] mean", hist.mean))
            if occ:
                rows.append((f"occupancy[{state}]", occ[state]))
        rows.extend([
            ("alerts enqueued", int(self.alerts_enqueued.value)),
            ("alerts lost", int(self.alerts_lost.value)),
            ("alert loss fraction", self.loss_fraction),
            ("alert queue high-water", int(self.alert_depth.high_water)),
            ("recovery queue high-water",
             int(self.recovery_depth.high_water)),
            ("scan steps", int(self.scan_steps.value)),
            ("mean scan cost", self.scan_cost.mean),
            ("recovery units emitted", int(self.units_emitted.value)),
            ("heals", int(self.heals.value)),
            ("tasks undone", int(self.tasks_undone.value)),
            ("tasks redone", int(self.tasks_redone.value)),
            ("mean undo set size", self.undo_size.mean),
            ("mean redo set size", self.redo_size.mean),
            ("normal tasks refused", int(self.normal_refused.value)),
        ])
        return rows
