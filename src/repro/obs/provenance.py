"""Recovery provenance: deterministic replay and causal explanation.

A flight log (:mod:`repro.obs.recorder`) contains everything the
pipeline decided and did: which Theorem 1/2 condition fired per
undo/redo decision, which Theorem 3/4 rule added each ordering edge,
which slot each action took in the realized schedule, and the raw
pipeline events the metrics collector consumes.  This module turns a
log back into:

- :func:`replay` — the reconstructed run: recovery plan (undo/redo
  sets), partial order (rule-tagged edge set), realized schedule, and a
  freshly rebuilt :class:`~repro.obs.metrics.PipelineMetrics` that is
  bit-for-bit equal to the live run's (same Prometheus exposition, same
  summary rows);
- :func:`explain` — the causal chain for one task instance: alert →
  Theorem 1 condition (with the dependency path that carried the
  infection) → Theorem 2 decision → ordering constraints → schedule
  position → execution outcome;
- :func:`build_span_tree` — a span tree reconstructed from the event
  timeline, for the Chrome-trace exporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ObsError
from repro.obs.events import (
    ActionDispatched,
    AlertEnqueued,
    AlertLost,
    DriftDetected,
    HealFinished,
    HealStarted,
    ObsEvent,
    OrderConstraint,
    RedoDecision,
    ScanStep,
    SloTransition,
    StateTransition,
    TaskRedone,
    TaskUndone,
    UndoDecision,
)
from repro.obs.metrics import Gauge, PipelineMetrics
from repro.obs.recorder import FlightLog
from repro.obs.tracing import Span

__all__ = ["ReplayedRun", "replay", "explain", "build_span_tree"]

#: Theorem 1 conditions that make an undo *definite* (vs candidate).
_DEFINITE_UNDO = ("T1.1", "T1.3")


@dataclass
class ReplayedRun:
    """Everything :func:`replay` reconstructs from a flight log.

    Attributes
    ----------
    header:
        The log's header record (schema, label, meta).
    events:
        The typed event stream, in log order.
    undo_decisions / redo_decisions / order_constraints / dispatches:
        The provenance events, in decision order.
    plan_undo / plan_redo:
        The *definite* undo and redo sets of the reconstructed recovery
        plan (Theorem 1 conditions 1/3; Theorem 2 condition 1).
    undo_candidates / redo_candidates:
        Instances whose undo/redo was conditional (T1.2/T1.4; T2.2).
    order_edges:
        The Theorem 3/4 partial order as ``(rule, before, after)``
        triples over action strings.
    schedule:
        Action strings in realized dispatch order.
    executed_undone / executed_redone:
        ``uid → reason`` / ``uid → mode`` for what the healer actually
        did (a candidate may be resolved either way).
    slo_transitions / drifts:
        The health monitor's verdict stream, in log order — every
        recorded :class:`~repro.obs.events.SloTransition` and
        :class:`~repro.obs.events.DriftDetected`.  Empty for logs of
        unmonitored runs.  :func:`repro.obs.health.replay_verdicts`
        recomputes the same stream from the log's *raw* events, which
        is how replay proves the recorded verdicts were earned.
    metrics:
        A fresh :class:`~repro.obs.metrics.PipelineMetrics` rebuilt by
        re-feeding the event stream between the log's ``start`` and
        ``finalize`` marks.
    """

    header: Dict[str, object]
    events: List[ObsEvent]
    undo_decisions: List[UndoDecision] = field(default_factory=list)
    redo_decisions: List[RedoDecision] = field(default_factory=list)
    order_constraints: List[OrderConstraint] = field(default_factory=list)
    dispatches: List[ActionDispatched] = field(default_factory=list)
    plan_undo: FrozenSet[str] = frozenset()
    plan_redo: FrozenSet[str] = frozenset()
    undo_candidates: FrozenSet[str] = frozenset()
    redo_candidates: FrozenSet[str] = frozenset()
    order_edges: FrozenSet[Tuple[str, str, str]] = frozenset()
    schedule: Tuple[str, ...] = ()
    executed_undone: Dict[str, str] = field(default_factory=dict)
    executed_redone: Dict[str, str] = field(default_factory=dict)
    slo_transitions: List[SloTransition] = field(default_factory=list)
    drifts: List[DriftDetected] = field(default_factory=list)
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)


def replay(log: FlightLog) -> ReplayedRun:
    """Deterministically reconstruct a run from its flight log.

    The metrics collector is rebuilt by replaying the captured events
    through a fresh :class:`~repro.obs.metrics.PipelineMetrics`, with
    the log's ``start``/``finalize`` marks driving dwell accounting —
    exactly the inputs the live collector saw, so the replayed snapshot
    renders the identical Prometheus exposition and summary rows.
    """
    run = ReplayedRun(header=dict(log.header), events=list(log.events))

    start = log.mark("start")
    if start is not None:
        run.metrics.start(float(start["time"]),
                          state=str(start.get("state", "NORMAL")))
    for event in log.events:
        run.metrics(event)
        if isinstance(event, UndoDecision):
            run.undo_decisions.append(event)
        elif isinstance(event, RedoDecision):
            run.redo_decisions.append(event)
        elif isinstance(event, OrderConstraint):
            run.order_constraints.append(event)
        elif isinstance(event, ActionDispatched):
            run.dispatches.append(event)
        elif isinstance(event, TaskUndone):
            run.executed_undone[event.uid] = event.reason
        elif isinstance(event, TaskRedone):
            run.executed_redone[event.uid] = event.mode
        elif isinstance(event, SloTransition):
            run.slo_transitions.append(event)
        elif isinstance(event, DriftDetected):
            run.drifts.append(event)
    finalize = log.mark("finalize")
    if finalize is not None:
        run.metrics.finalize(float(finalize["time"]))
        # Final gauge readings snapshotted by the recorder (gauges can
        # move on un-evented operations like queue pops).
        for name, value in (finalize.get("gauges") or {}).items():
            gauge = run.metrics.registry.get(name)
            if isinstance(gauge, Gauge):
                gauge.set(float(value))

    run.plan_undo = frozenset(
        d.uid for d in run.undo_decisions if d.condition in _DEFINITE_UNDO
    )
    run.undo_candidates = frozenset(
        d.uid for d in run.undo_decisions
        if d.condition not in _DEFINITE_UNDO
    ) - run.plan_undo
    run.plan_redo = frozenset(
        d.uid for d in run.redo_decisions if d.condition == "T2.1"
    )
    run.redo_candidates = frozenset(
        d.uid for d in run.redo_decisions if d.condition == "T2.2"
    )
    run.order_edges = frozenset(
        (c.rule, c.before, c.after) for c in run.order_constraints
    )
    # Log order is dispatch order (positions restart per recovery unit,
    # so sorting by position would interleave units incorrectly).
    run.schedule = tuple(d.action for d in run.dispatches)
    return run


def _mentions(action_str: str, uid: str) -> bool:
    """Does an action string (``undo(uid)`` / ``redo(uid)`` / bare
    normal uid) refer to ``uid``?"""
    return action_str in (f"undo({uid})", f"redo({uid})", uid)


def explain(log: FlightLog, uid: str) -> str:
    """The causal chain that led to ``uid``'s recovery, as text.

    Walks the provenance captured in ``log``: the triggering alert (or
    the dependency path back to one), every Theorem 1/2 condition that
    fired for ``uid``, every Theorem 3/4 ordering edge touching its
    actions, its slot(s) in the realized schedule, and what the healer
    finally did.  Raises :class:`~repro.errors.ObsError` when the log
    never mentions ``uid``.
    """
    run = replay(log)
    lines: List[str] = [uid]

    alerted = {
        e.uid for e in run.events if isinstance(e, AlertEnqueued)
    }
    if uid in alerted:
        lines.append("  alert: reported malicious by the IDS")

    undo_ds = [d for d in run.undo_decisions if d.uid == uid]
    redo_ds = [d for d in run.redo_decisions if d.uid == uid]
    for d in undo_ds:
        desc = {
            "T1.1": "directly malicious (Theorem 1 cond. 1)",
            "T1.2": "control candidate (Theorem 1 cond. 2)",
            "T1.3": "infected via data flow (Theorem 1 cond. 3)",
            "T1.4": "stale-read candidate (Theorem 1 cond. 4)",
        }.get(d.condition, d.condition)
        line = f"  undo[{d.condition}]: {desc}"
        if d.via:
            line += " via " + " -> ".join(d.via + (uid,))
        if d.objects:
            line += " through objects {" + ", ".join(d.objects) + "}"
        lines.append(line)
        # Tie the chain back to its alert seed.
        seed = d.via[0] if d.via else uid
        if seed != uid and seed in alerted:
            lines.append(f"    seeded by alert on {seed}")
    for d in redo_ds:
        desc = {
            "T2.1": "not control dependent on another bad instance "
                    "(Theorem 2 cond. 1) — definitely redone",
            "T2.2": "control dependent on bad instance(s) "
                    "(Theorem 2 cond. 2) — redo decided by re-execution",
        }.get(d.condition, d.condition)
        line = f"  redo[{d.condition}]: {desc}"
        if d.via:
            line += " [controlled by " + ", ".join(d.via) + "]"
        lines.append(line)

    edges = [
        c for c in run.order_constraints
        if _mentions(c.before, uid) or _mentions(c.after, uid)
    ]
    for c in edges:
        lines.append(f"  order[{c.rule}]: {c.before} < {c.after}")

    slots = [
        d for d in run.dispatches if _mentions(d.action, uid)
    ]
    for d in slots:
        line = f"  scheduled: {d.action} at position {d.position}"
        if d.satisfied:
            line += " after " + ", ".join(d.satisfied)
        lines.append(line)

    if uid in run.executed_undone:
        reason = run.executed_undone[uid]
        lines.append(f"  executed: undone"
                     + (f" ({reason})" if reason else ""))
    if uid in run.executed_redone:
        mode = run.executed_redone[uid]
        lines.append(f"  executed: redone"
                     + (" (new path)" if mode == "new" else ""))

    if len(lines) == 1:
        raise ObsError(
            f"flight log never mentions instance {uid!r} — nothing to "
            "explain (known instances appear in undo/redo decisions, "
            "order constraints, dispatches, or task events)"
        )
    return "\n".join(lines)


def build_span_tree(log: FlightLog) -> List[Span]:
    """Reconstruct a span tree from a flight log's event timeline.

    The tree is derived, not recorded: one root span covering the run
    (``start`` mark to ``finalize`` mark, falling back to first/last
    event time), one child per contiguous state dwell, and one child
    per heal (``HealStarted`` → ``HealFinished``).  Decision-level
    events are better rendered as instants — pass ``log.events`` to
    :func:`repro.obs.export.spans_to_chrome_trace` alongside the tree.
    """
    times = [e.time for e in log.events]
    start = log.mark("start")
    finalize = log.mark("finalize")
    t0 = float(start["time"]) if start is not None else (
        times[0] if times else 0.0
    )
    t1 = float(finalize["time"]) if finalize is not None else (
        times[-1] if times else t0
    )
    root = Span("run", t0, {"label": log.label})
    root.end = t1

    state = str(start.get("state", "NORMAL")) if start is not None \
        else "NORMAL"
    since = t0
    for event in log.events:
        if isinstance(event, StateTransition):
            dwell = Span("state:" + (event.old_category or event.old),
                         since)
            dwell.end = event.time
            root.children.append(dwell)
            state = event.new_category or event.new
            since = event.time
    closing = Span("state:" + state, since)
    closing.end = t1
    root.children.append(closing)

    open_heal: Optional[Span] = None
    for event in log.events:
        if isinstance(event, HealStarted):
            open_heal = Span("heal", event.time,
                             {"malicious": ", ".join(event.malicious)})
        elif isinstance(event, HealFinished) and open_heal is not None:
            open_heal.end = event.time
            open_heal.set_attribute("undone", event.undone)
            open_heal.set_attribute("redone", event.redone)
            root.children.append(open_heal)
            open_heal = None
    if open_heal is not None:  # crashed mid-heal: keep it, unfinished
        root.children.append(open_heal)
    return [root]
