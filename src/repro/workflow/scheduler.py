"""Partial-order task scheduler.

"The task scheduler schedules both recovery tasks and normal tasks
according to their partial orders" (Section IV-A), repeatedly executing
``minimal(S, ≺)``.  This module provides that executor over any
:class:`~repro.workflow.precedence.PartialOrder`: it runs every element
in some linear extension, invoking a caller-supplied executor callback,
and records the order actually taken.
"""

from __future__ import annotations

import random
import time as _time
from typing import (
    Callable,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    TypeVar,
)

from repro.errors import CyclicOrderError
from repro.obs.events import ActionDispatched, EventBus
from repro.workflow.precedence import PartialOrder, minimal

__all__ = ["PartialOrderScheduler"]

T = TypeVar("T", bound=Hashable)


class PartialOrderScheduler(Generic[T]):
    """Executes the elements of a partial order, minimal-first.

    Parameters
    ----------
    order:
        The constraints to respect.  Checked for cycles up front.
    executor:
        Called once per element when it is dispatched.  Exceptions
        propagate to the caller of :meth:`run`; the schedule so far is
        preserved in :attr:`executed`.
    rng:
        Randomizes tie-breaking among minimal elements (the paper:
        "we randomly select one qualified result"); deterministic
        (sorted by ``repr``) when omitted.
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached,
        every dispatch publishes an
        :class:`~repro.obs.events.ActionDispatched` naming the element,
        its slot in the realized linear extension, and the
        direct-predecessor constraints its dispatch satisfied.
    clock:
        Timestamp source for published events (default
        ``time.monotonic``).
    """

    def __init__(
        self,
        order: PartialOrder[T],
        executor: Callable[[T], None],
        rng: Optional[random.Random] = None,
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        order.check_acyclic()
        self._order = order
        self._executor = executor
        self._rng = rng
        self._bus = bus if bus is not None and bus.active else None
        self._clock = clock if clock is not None else _time.monotonic  # lint: allow[DET001] injectable clock; wall time is the live default
        self._executed: List[T] = []

    @property
    def executed(self) -> List[T]:
        """Elements dispatched so far, in dispatch order."""
        return list(self._executed)

    @property
    def pending(self) -> Set[T]:
        """Elements not yet dispatched."""
        return set(self._order.elements()) - set(self._executed)

    def step(self) -> Optional[T]:
        """Dispatch one minimal pending element; ``None`` when done."""
        pending = self.pending
        if not pending:
            return None
        # Minimality is judged against pending elements only: an element
        # whose predecessors all executed is free to run.
        candidates = [
            x
            for x in pending
            if not (self._order.direct_predecessors(x) & pending)
        ]
        if not candidates:
            raise CyclicOrderError(
                "no dispatchable element — cycle among pending tasks"
            )
        chosen = minimal(candidates, self._order, rng=self._rng)
        self._executor(chosen)
        if self._bus is not None and self._bus.active:
            self._bus.publish(ActionDispatched(
                self._clock(),
                action=str(chosen),
                position=len(self._executed),
                satisfied=tuple(sorted(
                    str(p) for p in self._order.direct_predecessors(chosen)
                )),
            ))
        self._executed.append(chosen)
        return chosen

    def run(self) -> List[T]:
        """Dispatch everything; returns the realized linear extension."""
        while self.step() is not None:
            pass
        return self.executed
