"""Partial-order task scheduler.

"The task scheduler schedules both recovery tasks and normal tasks
according to their partial orders" (Section IV-A), repeatedly executing
``minimal(S, ≺)``.  This module provides that executor over any
:class:`~repro.workflow.precedence.PartialOrder`: it runs every element
in some linear extension, invoking a caller-supplied executor callback,
and records the order actually taken.
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    TypeVar,
)

from repro.errors import CyclicOrderError
from repro.workflow.precedence import PartialOrder, minimal

__all__ = ["PartialOrderScheduler"]

T = TypeVar("T", bound=Hashable)


class PartialOrderScheduler(Generic[T]):
    """Executes the elements of a partial order, minimal-first.

    Parameters
    ----------
    order:
        The constraints to respect.  Checked for cycles up front.
    executor:
        Called once per element when it is dispatched.  Exceptions
        propagate to the caller of :meth:`run`; the schedule so far is
        preserved in :attr:`executed`.
    rng:
        Randomizes tie-breaking among minimal elements (the paper:
        "we randomly select one qualified result"); deterministic
        (sorted by ``repr``) when omitted.
    """

    def __init__(
        self,
        order: PartialOrder[T],
        executor: Callable[[T], None],
        rng: Optional[random.Random] = None,
    ) -> None:
        order.check_acyclic()
        self._order = order
        self._executor = executor
        self._rng = rng
        self._executed: List[T] = []

    @property
    def executed(self) -> List[T]:
        """Elements dispatched so far, in dispatch order."""
        return list(self._executed)

    @property
    def pending(self) -> Set[T]:
        """Elements not yet dispatched."""
        return set(self._order.elements()) - set(self._executed)

    def step(self) -> Optional[T]:
        """Dispatch one minimal pending element; ``None`` when done."""
        pending = self.pending
        if not pending:
            return None
        # Minimality is judged against pending elements only: an element
        # whose predecessors all executed is free to run.
        candidates = [
            x
            for x in pending
            if not (self._order.direct_predecessors(x) & pending)
        ]
        if not candidates:
            raise CyclicOrderError(
                "no dispatchable element — cycle among pending tasks"
            )
        chosen = minimal(candidates, self._order, rng=self._rng)
        self._executor(chosen)
        self._executed.append(chosen)
        return chosen

    def run(self) -> List[T]:
        """Dispatch everything; returns the realized linear extension."""
        while self.step() is not None:
            pass
        return self.executed
