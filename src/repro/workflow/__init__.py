"""Workflow management substrate.

This package implements the workflow model of Section II of the paper:
workflow specifications as directed graphs, tasks with read/write sets,
execution paths, the system log, traces, the precedence relation, and the
data/control dependency relations that the recovery theory is built on.

Public API
----------
- :class:`~repro.workflow.task.TaskSpec`,
  :class:`~repro.workflow.task.TaskInstance`
- :class:`~repro.workflow.spec.WorkflowSpec` and the
  :func:`~repro.workflow.spec.workflow` builder
- :class:`~repro.workflow.data.DataStore`,
  :class:`~repro.workflow.data.MultiVersionDataStore`
- :class:`~repro.workflow.log.SystemLog`, :class:`~repro.workflow.log.LogRecord`
- :class:`~repro.workflow.engine.WorkflowRun`,
  :class:`~repro.workflow.engine.Engine`
- :mod:`~repro.workflow.precedence` — the ``≺`` relation and ``minimal``
- :mod:`~repro.workflow.dependency` — flow / anti-flow / output / control
  dependencies (Definition 1 and Section II-D)
"""

from repro.workflow.data import DataStore, MultiVersionDataStore, Version
from repro.workflow.dependency import (
    ControlDependencies,
    DependencyAnalyzer,
    DependencyEdge,
    DependencyKind,
)
from repro.workflow.dominators import (
    branch_nodes,
    dominators,
    unavoidable_nodes,
)
from repro.workflow.engine import Engine, RunResult, WorkflowRun
from repro.workflow.expr import Expr, ExprError, compile_expr
from repro.workflow.log import LogRecord, SystemLog
from repro.workflow.segments import LogSegment, SegmentedLog
from repro.workflow.serialize import TaskDocument, WorkflowDocument
from repro.workflow.precedence import PartialOrder, minimal
from repro.workflow.scheduler import PartialOrderScheduler
from repro.workflow.spec import WorkflowSpec, workflow
from repro.workflow.task import TaskInstance, TaskSpec

__all__ = [
    "TaskSpec",
    "TaskInstance",
    "WorkflowSpec",
    "workflow",
    "DataStore",
    "MultiVersionDataStore",
    "Version",
    "SystemLog",
    "LogRecord",
    "Engine",
    "WorkflowRun",
    "RunResult",
    "PartialOrder",
    "minimal",
    "DependencyAnalyzer",
    "DependencyEdge",
    "DependencyKind",
    "ControlDependencies",
    "dominators",
    "unavoidable_nodes",
    "branch_nodes",
    "PartialOrderScheduler",
    "Expr",
    "ExprError",
    "compile_expr",
    "WorkflowDocument",
    "TaskDocument",
    "SegmentedLog",
    "LogSegment",
]
