"""Segmented (distributed) system logs.

Footnote 1 of the paper: "Since the workflow could be processed in a
distributed style, the system log may be stored in segments.  But it
does not affect our discussion."  Section VII adds that in decentralized
models the recovery theory still applies — one simply has to process
the specification and log in a distributed style.

This module makes that claim executable.  Each processing *node* owns a
log segment; commits carry Lamport timestamps so that merging the
segments reconstructs a total commit order consistent with causality
(and with the per-node orders).  The merged log is an ordinary
:class:`~repro.workflow.log.SystemLog`, so damage analysis and healing
run unchanged — which is exactly the paper's "does not affect our
discussion", now a tested property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import LogError
from repro.workflow.log import LogRecord, RecordKind, SystemLog
from repro.workflow.task import TaskInstance

__all__ = ["SegmentEntry", "LogSegment", "SegmentedLog"]


@dataclass(frozen=True)
class SegmentEntry:
    """One commit stored on one node.

    Attributes
    ----------
    node:
        Owning node's identifier.
    lamport:
        Lamport timestamp assigned at commit.
    local_seq:
        Position within the node's own segment (FIFO per node).
    instance, reads, writes, chosen:
        As in :class:`~repro.workflow.log.LogRecord`.
    """

    node: str
    lamport: int
    local_seq: int
    instance: TaskInstance
    reads: Mapping[str, int]
    writes: Mapping[str, int]
    chosen: Optional[str] = None


class LogSegment:
    """The portion of the system log held by one node."""

    def __init__(self, node: str) -> None:
        self._node = node
        self._entries: List[SegmentEntry] = []
        self._clock = 0

    @property
    def node(self) -> str:
        """The owning node's identifier."""
        return self._node

    @property
    def clock(self) -> int:
        """Current Lamport clock value."""
        return self._clock

    def witness(self, timestamp: int) -> None:
        """Advance the clock past an observed remote timestamp (message
        receipt in Lamport's scheme)."""
        self._clock = max(self._clock, timestamp)

    def commit(
        self,
        instance: TaskInstance,
        reads: Mapping[str, int],
        writes: Mapping[str, int],
        chosen: Optional[str] = None,
    ) -> SegmentEntry:
        """Append a commit to this node's segment."""
        self._clock += 1
        entry = SegmentEntry(
            node=self._node,
            lamport=self._clock,
            local_seq=len(self._entries),
            instance=instance,
            reads=dict(reads),
            writes=dict(writes),
            chosen=chosen,
        )
        self._entries.append(entry)
        return entry

    def entries(self) -> Tuple[SegmentEntry, ...]:
        """This node's commits, in local order."""
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class SegmentedLog:
    """A system log distributed over several nodes.

    ``merge()`` reconstructs the global :class:`SystemLog` by sorting
    entries on ``(lamport, node, local_seq)`` — a total order that
    respects every node's local order and all witnessed cross-node
    causality.  Recovery then operates on the merged log exactly as on a
    centralized one.
    """

    def __init__(self, nodes: Sequence[str]) -> None:
        if len(set(nodes)) != len(nodes):
            raise LogError("duplicate node identifiers")
        if not nodes:
            raise LogError("a segmented log needs at least one node")
        self._segments: Dict[str, LogSegment] = {
            node: LogSegment(node) for node in nodes
        }

    def segment(self, node: str) -> LogSegment:
        """The segment owned by ``node``."""
        try:
            return self._segments[node]
        except KeyError:
            raise LogError(f"unknown node {node!r}") from None

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node identifiers."""
        return tuple(self._segments)

    def commit_on(
        self,
        node: str,
        instance: TaskInstance,
        reads: Mapping[str, int],
        writes: Mapping[str, int],
        chosen: Optional[str] = None,
        notify: Sequence[str] = (),
    ) -> SegmentEntry:
        """Commit on ``node`` and propagate the timestamp to ``notify``
        (the nodes that causally depend on this commit — e.g. the next
        processor of the same workflow)."""
        entry = self.segment(node).commit(instance, reads, writes, chosen)
        for other in notify:
            self.segment(other).witness(entry.lamport)
        return entry

    def total_entries(self) -> int:
        """Commits across all segments."""
        return sum(len(s) for s in self._segments.values())

    def merge(self) -> SystemLog:
        """Reconstruct the global system log.

        Raises
        ------
        LogError
            If the merged order would violate a node's local order
            (cannot happen with monotone Lamport clocks; checked
            defensively).
        """
        entries: List[SegmentEntry] = []
        for segment in self._segments.values():
            entries.extend(segment.entries())
        entries.sort(key=lambda e: (e.lamport, e.node, e.local_seq))

        seen_local: Dict[str, int] = {}
        log = SystemLog()
        for entry in entries:
            prev = seen_local.get(entry.node, -1)
            if entry.local_seq != prev + 1:
                raise LogError(
                    f"merge would reorder node {entry.node!r} "
                    f"(local_seq {entry.local_seq} after {prev})"
                )
            seen_local[entry.node] = entry.local_seq
            log.commit(
                entry.instance,
                reads=entry.reads,
                writes=entry.writes,
                chosen=entry.chosen,
                kind=RecordKind.NORMAL,
            )
        return log
