"""Tasks and task instances.

A *task* (:class:`TaskSpec`) is a node of a workflow graph: a unit of work
with a declared reading set ``R(T)`` and writing set ``W(T)`` (Section II-C
of the paper) plus an executable body.  A *task instance*
(:class:`TaskInstance`) is one execution of a task within one workflow
instance; because workflows may contain cycles, the same task can appear
several times in an execution path, distinguished by the instance number
(the paper's superscript notation ``t_i^k``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

__all__ = ["TaskSpec", "TaskInstance", "identity_compute"]

#: Type of a task body: maps the values of the reading set to the values of
#: the writing set.  Missing outputs are treated as "write nothing for that
#: object", which is rejected by the engine (every declared write must be
#: produced).
ComputeFn = Callable[[Mapping[str, Any]], Mapping[str, Any]]

#: Type of a branch decision: maps the data visible to the task (its reads
#: plus its freshly-computed writes) to the task id of the chosen successor.
ChooseFn = Callable[[Mapping[str, Any]], str]


def identity_compute(inputs: Mapping[str, Any]) -> Mapping[str, Any]:
    """A compute body that writes nothing.

    Useful for pure routing/branch nodes that read data only to decide the
    next execution path.
    """
    return {}


@dataclass(frozen=True)
class TaskSpec:
    """Static description of one task in a workflow specification.

    Parameters
    ----------
    task_id:
        Identifier, unique within the workflow (e.g. ``"t1"``).
    reads:
        The reading set ``R(T)``: names of data objects the task reads.
    writes:
        The writing set ``W(T)``: names of data objects the task writes.
    compute:
        The task body.  Receives a mapping from each name in ``reads`` to
        its current value and must return a mapping providing a value for
        every name in ``writes``.  ``None`` is allowed only when ``writes``
        is empty (a pure routing node).
    choose:
        Branch decision function; required when the node has outdegree
        greater than one in the workflow graph.  Receives the task's reads
        merged with its own outputs and returns the id of the successor to
        follow.  Branches in this model are *choices of execution path*,
        not parallel forks (Section I of the paper).
    description:
        Optional human-readable description, used in reports.
    """

    task_id: str
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    compute: Optional[ComputeFn] = None
    choose: Optional[ChooseFn] = None
    description: str = ""

    def __post_init__(self) -> None:
        # Allow reads/writes to be given as any iterable of strings.
        object.__setattr__(self, "reads", frozenset(self.reads))
        object.__setattr__(self, "writes", frozenset(self.writes))

    @property
    def is_pure_router(self) -> bool:
        """True when the task writes nothing (it may still branch)."""
        return not self.writes

    def run(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        """Execute the task body over ``inputs`` and return its outputs.

        Raises
        ------
        ValueError
            If the body fails to produce every declared write, or produces
            writes that were not declared.  (The engine converts this into
            :class:`~repro.errors.ExecutionError` with task context.)
        """
        fn = self.compute if self.compute is not None else identity_compute
        outputs = dict(fn(dict(inputs)))
        missing = self.writes - outputs.keys()
        if missing:
            raise ValueError(
                f"task {self.task_id!r} did not produce declared writes: "
                f"{sorted(missing)}"
            )
        extra = outputs.keys() - self.writes
        if extra:
            raise ValueError(
                f"task {self.task_id!r} produced undeclared writes: "
                f"{sorted(extra)}"
            )
        return outputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskSpec({self.task_id!r}, reads={sorted(self.reads)}, "
            f"writes={sorted(self.writes)})"
        )


@dataclass(frozen=True, order=True)
class TaskInstance:
    """One execution of a task within one workflow instance.

    Ordering is lexicographic on ``(workflow_instance, task_id, number)``;
    it exists only so instances can live in sorted containers — the
    semantically meaningful order is the system-log precedence ``≺``
    (:mod:`repro.workflow.precedence`).

    Attributes
    ----------
    workflow_instance:
        Identifier of the workflow instance (one run of one workflow).
    task_id:
        The task's identifier in the workflow specification.
    number:
        Visit count for this task within the instance, starting at 1.
        ``t3`` visited twice yields instances ``t3^1`` and ``t3^2``.
    """

    workflow_instance: str
    task_id: str
    number: int = 1

    @property
    def uid(self) -> str:
        """Globally unique identifier, e.g. ``"wf0/t3#2"``."""
        return f"{self.workflow_instance}/{self.task_id}#{self.number}"

    def __str__(self) -> str:
        if self.number == 1:
            return f"{self.task_id}"
        return f"{self.task_id}^{self.number}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskInstance({self.uid})"


@dataclass
class InstanceCounter:
    """Allocates instance numbers for repeated visits to the same task.

    One counter is owned by each :class:`~repro.workflow.engine.WorkflowRun`
    so that the ``t_i^k`` superscripts of the paper are reproduced exactly.
    """

    workflow_instance: str
    _counts: dict = field(default_factory=dict)

    def next_instance(self, task_id: str) -> TaskInstance:
        """Return the next instance of ``task_id`` for this workflow run."""
        n = self._counts.get(task_id, 0) + 1
        self._counts[task_id] = n
        return TaskInstance(self.workflow_instance, task_id, n)

    def visits(self, task_id: str) -> int:
        """Number of times ``task_id`` has been instantiated so far."""
        return self._counts.get(task_id, 0)
