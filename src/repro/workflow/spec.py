"""Workflow specifications.

A workflow is a directed graph ``⟨V, E⟩`` (Section II-A): ``V`` is a set of
tasks, and ``(t_i, t_j) ∈ E`` means ``t_j`` may execute immediately after
``t_i``.  The graph has exactly one start node (0-indegree) and at least one
end node (0-outdegree).  Branch nodes (outdegree > 1) *choose* one successor
per execution — branches are alternative execution paths, not parallel
forks.  Cycles are allowed; repeated visits to a node become distinct task
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import UnknownTaskError, WorkflowSpecError
from repro.workflow.task import ChooseFn, ComputeFn, TaskSpec

__all__ = ["WorkflowSpec", "workflow", "WorkflowBuilder"]


@dataclass(frozen=True)
class WorkflowSpec:
    """An immutable, validated workflow graph.

    Use :func:`workflow` (a fluent builder) or the constructor directly.

    Attributes
    ----------
    workflow_id:
        Name of the workflow (shared by all of its instances).
    tasks:
        Mapping from task id to :class:`~repro.workflow.task.TaskSpec`.
    edges:
        The immediate-precedence edges of the graph.
    """

    workflow_id: str
    tasks: Dict[str, TaskSpec]
    edges: FrozenSet[Tuple[str, str]]
    _succ: Dict[str, Tuple[str, ...]] = field(repr=False, default_factory=dict)
    _pred: Dict[str, Tuple[str, ...]] = field(repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", frozenset(self.edges))
        succ: Dict[str, List[str]] = {t: [] for t in self.tasks}
        pred: Dict[str, List[str]] = {t: [] for t in self.tasks}
        bad_edges: List[str] = []
        for src, dst in sorted(self.edges):
            ok = True
            if src not in self.tasks:
                bad_edges.append(
                    f"edge source {src!r} not declared in workflow "
                    f"{self.workflow_id!r}"
                )
                ok = False
            if dst not in self.tasks:
                bad_edges.append(
                    f"edge target {dst!r} not declared in workflow "
                    f"{self.workflow_id!r}"
                )
                ok = False
            if ok:
                succ[src].append(dst)
                pred[dst].append(src)
        if bad_edges:
            raise UnknownTaskError("; ".join(bad_edges), tuple(bad_edges))
        object.__setattr__(
            self, "_succ", {t: tuple(v) for t, v in succ.items()}
        )
        object.__setattr__(
            self, "_pred", {t: tuple(v) for t, v in pred.items()}
        )
        self._validate()

    # -- structure ---------------------------------------------------------

    def successors(self, task_id: str) -> Tuple[str, ...]:
        """Immediate successors of ``task_id`` in the graph."""
        self._require(task_id)
        return self._succ[task_id]

    def predecessors(self, task_id: str) -> Tuple[str, ...]:
        """Immediate predecessors of ``task_id`` in the graph."""
        self._require(task_id)
        return self._pred[task_id]

    @property
    def start(self) -> str:
        """The unique 0-indegree start node."""
        starts = [t for t in self.tasks if not self._pred[t]]
        return starts[0]

    @property
    def ends(self) -> FrozenSet[str]:
        """The 0-outdegree end nodes."""
        return frozenset(t for t in self.tasks if not self._succ[t])

    @property
    def branch_nodes(self) -> FrozenSet[str]:
        """Nodes with outdegree greater than one (path choices)."""
        return frozenset(t for t in self.tasks if len(self._succ[t]) > 1)

    def task(self, task_id: str) -> TaskSpec:
        """Look up a task spec by id, raising :class:`UnknownTaskError`."""
        self._require(task_id)
        return self.tasks[task_id]

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.tasks

    def __iter__(self) -> Iterator[str]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    # -- paths --------------------------------------------------------------

    def execution_paths(self, max_paths: int = 1000,
                        max_len: Optional[int] = None) -> List[Tuple[str, ...]]:
        """Enumerate execution paths from the start node to an end node.

        For cyclic workflows the path set is infinite; enumeration stops
        after ``max_paths`` paths or when a path exceeds ``max_len`` nodes
        (default: ``2 * len(V) + 2``, enough to unroll each cycle once).

        Returns paths in DFS order as tuples of task ids.
        """
        limit = max_len if max_len is not None else 2 * len(self.tasks) + 2
        paths: List[Tuple[str, ...]] = []
        stack: List[Tuple[str, Tuple[str, ...]]] = [(self.start, (self.start,))]
        ends = self.ends
        while stack and len(paths) < max_paths:
            node, path = stack.pop()
            if node in ends:
                paths.append(path)
                continue
            if len(path) >= limit:
                continue
            for nxt in reversed(self._succ[node]):
                stack.append((nxt, path + (nxt,)))
        return paths

    def reachable_from(self, task_id: str) -> FrozenSet[str]:
        """All nodes reachable from ``task_id`` (excluding itself unless
        it lies on a cycle through itself)."""
        self._require(task_id)
        seen: Set[str] = set()
        frontier = list(self._succ[task_id])
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._succ[node])
        return frozenset(seen)

    def is_acyclic(self) -> bool:
        """True when the workflow graph contains no cycles."""
        color: Dict[str, int] = {}

        def visit(node: str) -> bool:
            color[node] = 1
            for nxt in self._succ[node]:
                state = color.get(nxt, 0)
                if state == 1:
                    return False
                if state == 0 and not visit(nxt):
                    return False
            color[node] = 2
            return True

        return all(visit(t) for t in self.tasks if color.get(t, 0) == 0)

    # -- internal ------------------------------------------------------------

    def _require(self, task_id: str) -> None:
        if task_id not in self.tasks:
            raise UnknownTaskError(
                f"task {task_id!r} not in workflow {self.workflow_id!r}"
            )

    def _validate(self) -> None:
        """Collect-then-raise: one error listing every defect found."""
        if not self.tasks:
            raise WorkflowSpecError(
                f"workflow {self.workflow_id!r} has no tasks"
            )
        problems: List[str] = []
        starts = [t for t in self.tasks if not self._pred[t]]
        if len(starts) != 1:
            problems.append(
                f"workflow {self.workflow_id!r} must have exactly one "
                f"0-indegree start node, found {sorted(starts)}"
            )
        if not any(not self._succ[t] for t in self.tasks):
            problems.append(
                f"workflow {self.workflow_id!r} has no 0-outdegree end node"
            )
        if len(starts) == 1:
            # Reachability is well-defined only with a unique start.
            unreachable = (
                set(self.tasks) - {starts[0]}
                - set(self.reachable_from(starts[0]))
            )
            if unreachable:
                problems.append(
                    f"workflow {self.workflow_id!r} has unreachable "
                    f"tasks: {sorted(unreachable)}"
                )
        for t in sorted(self.branch_nodes):
            if self.tasks[t].choose is None:
                problems.append(
                    f"branch node {t!r} (outdegree "
                    f"{len(self._succ[t])}) needs a choose function"
                )
        if problems:
            raise WorkflowSpecError("; ".join(problems), tuple(problems))


class WorkflowBuilder:
    """Fluent builder for :class:`WorkflowSpec`.

    Example
    -------
    >>> spec = (
    ...     workflow("transfer")
    ...     .task("t1", reads=["req"], writes=["amount"],
    ...           compute=lambda d: {"amount": d["req"]})
    ...     .task("t2", reads=["amount"], writes=[],
    ...           choose=lambda d: "t3" if d["amount"] > 100 else "t4")
    ...     .task("t3", reads=["amount"], writes=["fee"],
    ...           compute=lambda d: {"fee": d["amount"] * 0.01})
    ...     .task("t4", reads=[], writes=["fee"], compute=lambda d: {"fee": 0})
    ...     .edge("t1", "t2").edge("t2", "t3").edge("t2", "t4")
    ...     .build()
    ... )
    >>> spec.start
    't1'
    """

    def __init__(self, workflow_id: str) -> None:
        self._workflow_id = workflow_id
        self._tasks: Dict[str, TaskSpec] = {}
        self._edges: Set[Tuple[str, str]] = set()

    def task(
        self,
        task_id: str,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        compute: Optional[ComputeFn] = None,
        choose: Optional[ChooseFn] = None,
        description: str = "",
    ) -> "WorkflowBuilder":
        """Declare a task.  See :class:`~repro.workflow.task.TaskSpec`."""
        if task_id in self._tasks:
            raise WorkflowSpecError(
                f"duplicate task id {task_id!r} in workflow "
                f"{self._workflow_id!r}"
            )
        self._tasks[task_id] = TaskSpec(
            task_id=task_id,
            reads=frozenset(reads),
            writes=frozenset(writes),
            compute=compute,
            choose=choose,
            description=description,
        )
        return self

    def edge(self, src: str, dst: str) -> "WorkflowBuilder":
        """Declare an immediate-precedence edge ``src → dst``."""
        self._edges.add((src, dst))
        return self

    def chain(self, *task_ids: str) -> "WorkflowBuilder":
        """Declare edges along a chain ``t_1 → t_2 → ... → t_n``."""
        for a, b in zip(task_ids, task_ids[1:]):
            self.edge(a, b)
        return self

    def build(self) -> WorkflowSpec:
        """Validate and freeze the specification."""
        return WorkflowSpec(
            workflow_id=self._workflow_id,
            tasks=dict(self._tasks),
            edges=frozenset(self._edges),
        )


def workflow(workflow_id: str) -> WorkflowBuilder:
    """Start building a workflow specification named ``workflow_id``."""
    return WorkflowBuilder(workflow_id)
