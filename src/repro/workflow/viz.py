"""Graph export: DOT rendering and networkx adapters.

Workflow specifications, log-level dependency graphs, recovery plans and
the CTMC's state-transition graph all render to Graphviz DOT text for
inspection (``dot -Tpng``), and convert to :mod:`networkx` digraphs for
ad-hoc analysis.  The networkx adapters also serve as an independent
validation of our own graph algorithms (see ``tests/test_viz.py``:
dominators against ``networkx.immediate_dominators``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

import networkx as nx

from repro.core.healer import HealReport
from repro.markov.stg import RecoverySTG, StateCategory
from repro.workflow.dependency import DependencyAnalyzer, DependencyKind
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "spec_to_networkx",
    "spec_to_dot",
    "dependency_graph_to_networkx",
    "dependency_graph_to_dot",
    "heal_report_to_dot",
    "stg_to_dot",
]


def _quote(s: str) -> str:
    return '"' + str(s).replace('"', '\\"') + '"'


# --------------------------------------------------------------------------
# Workflow specifications
# --------------------------------------------------------------------------


def spec_to_networkx(spec: WorkflowSpec) -> "nx.DiGraph":
    """The workflow graph ⟨V, E⟩ as a networkx digraph.

    Node attributes: ``reads``, ``writes`` (sorted lists), ``branch``
    (bool).  Graph attribute ``workflow_id``.
    """
    g = nx.DiGraph(workflow_id=spec.workflow_id)
    for task_id in spec.tasks:
        task = spec.task(task_id)
        g.add_node(
            task_id,
            reads=sorted(task.reads),
            writes=sorted(task.writes),
            branch=task_id in spec.branch_nodes,
        )
    g.add_edges_from(sorted(spec.edges))
    return g


def spec_to_dot(spec: WorkflowSpec) -> str:
    """Graphviz DOT text for a workflow specification.

    Branch nodes are diamonds; start/end nodes are bold; each node's
    tooltip lists its read/write sets.
    """
    lines = [f"digraph {_quote(spec.workflow_id)} {{",
             "  rankdir=LR;",
             "  node [shape=box, fontname=Helvetica];"]
    ends = spec.ends
    for task_id in sorted(spec.tasks):
        task = spec.task(task_id)
        attrs = []
        if task_id in spec.branch_nodes:
            attrs.append("shape=diamond")
        if task_id == spec.start or task_id in ends:
            attrs.append("style=bold")
        label = task_id
        tooltip = (
            f"R={sorted(task.reads)} W={sorted(task.writes)}"
        )
        attrs.append(f"label={_quote(label)}")
        attrs.append(f"tooltip={_quote(tooltip)}")
        lines.append(f"  {_quote(task_id)} [{', '.join(attrs)}];")
    for src, dst in sorted(spec.edges):
        lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Dependency graphs over the log
# --------------------------------------------------------------------------

_EDGE_COLORS = {
    DependencyKind.FLOW: "black",
    DependencyKind.ANTI: "orange",
    DependencyKind.OUTPUT: "purple",
    DependencyKind.CONTROL: "blue",
}


def dependency_graph_to_networkx(
    analyzer: DependencyAnalyzer,
    include_control: bool = True,
) -> "nx.MultiDiGraph":
    """All dependence edges of the analyzed log as a multi-digraph.

    Edge attribute ``kind`` holds the
    :class:`~repro.workflow.dependency.DependencyKind` value; data edges
    carry ``objects``.
    """
    g = nx.MultiDiGraph()
    records = analyzer.log.normal_records()
    for r in records:
        g.add_node(r.uid, seq=r.seq,
                   workflow=r.instance.workflow_instance)
    for edge in analyzer.all_data_edges():
        g.add_edge(edge.src, edge.dst, kind=edge.kind.value,
                   objects=sorted(edge.objects))
    if include_control:
        for r in records:
            try:
                deps = analyzer.control_dependents(r.uid)
            except Exception:
                continue  # no spec registered for this instance
            for dst in deps:
                g.add_edge(r.uid, dst,
                           kind=DependencyKind.CONTROL.value, objects=[])
    return g


def dependency_graph_to_dot(
    analyzer: DependencyAnalyzer,
    malicious: Iterable[str] = (),
    include_control: bool = True,
) -> str:
    """DOT text of the log's dependency graph.

    Malicious instances render red ("B" in Figure 1); instances in
    their flow closure render orange ("A").
    """
    bad = {u for u in malicious}
    infected = set(analyzer.flow_closure(bad)) - bad
    lines = ["digraph dependencies {",
             "  rankdir=LR;",
             "  node [shape=ellipse, fontname=Helvetica];"]
    for r in analyzer.log.normal_records():
        attrs = [f"label={_quote(str(r.instance))}"]
        if r.uid in bad:
            attrs.append('style=filled, fillcolor="#ff8888"')
        elif r.uid in infected:
            attrs.append('style=filled, fillcolor="#ffcc88"')
        lines.append(f"  {_quote(r.uid)} [{', '.join(attrs)}];")
    g = dependency_graph_to_networkx(analyzer, include_control)
    for src, dst, data in sorted(
        g.edges(data=True), key=lambda e: (e[0], e[1], e[2]["kind"])
    ):
        kind = DependencyKind(data["kind"])
        color = _EDGE_COLORS[kind]
        label = kind.value[0]  # f / a / o / c
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} "
            f"[color={color}, label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Heal reports
# --------------------------------------------------------------------------

_DISPOSITION_COLORS = {
    "kept": "#88cc88",
    "redone": "#88aaff",
    "abandoned": "#ff8888",
    "new": "#ffee88",
}


def heal_report_to_dot(report: HealReport) -> str:
    """DOT text of the healed history: the settle order as a chain,
    colored by disposition (kept / redone / abandoned / new)."""
    disposition: Dict[str, str] = {}
    for uid in report.kept:
        disposition[uid] = "kept"
    for uid in report.redone:
        disposition[uid] = "redone"
    for uid in report.new_executions:
        disposition[uid] = "new"
    for uid in report.abandoned:
        disposition[uid] = "abandoned"

    lines = ["digraph heal {",
             "  rankdir=LR;",
             "  node [shape=box, fontname=Helvetica, style=filled];"]
    chain = [step.uid for step in report.final_history]
    for uid in chain:
        color = _DISPOSITION_COLORS.get(disposition.get(uid, "kept"))
        lines.append(
            f"  {_quote(uid)} [fillcolor={_quote(color)}];"
        )
    for a, b in zip(chain, chain[1:]):
        lines.append(f"  {_quote(a)} -> {_quote(b)};")
    # Abandoned instances float detached below the healed chain.
    for uid in report.abandoned:
        color = _DISPOSITION_COLORS["abandoned"]
        lines.append(
            f"  {_quote(uid)} [fillcolor={_quote(color)}, "
            f"label={_quote(uid + ' (abandoned)')}];"
        )
    lines.append("}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# CTMC state-transition graphs
# --------------------------------------------------------------------------

_CATEGORY_COLORS = {
    StateCategory.NORMAL: "#88cc88",
    StateCategory.SCAN: "#ffcc88",
    StateCategory.RECOVERY: "#88aaff",
}


def stg_to_dot(stg: RecoverySTG) -> str:
    """DOT text of the recovery system's STG (Figure 3), with states
    colored by category and loss states double-circled."""
    loss = set(stg.loss_states())
    lines = ["digraph stg {",
             "  node [fontname=Helvetica, style=filled];"]
    for state in stg.states:
        attrs = [
            f"label={_quote(str(state))}",
            f"fillcolor={_quote(_CATEGORY_COLORS[state.category])}",
        ]
        attrs.append(
            "shape=doublecircle" if state in loss else "shape=circle"
        )
        lines.append(f"  {_quote(str(state))} [{', '.join(attrs)}];")
    for (src, dst), rate in sorted(
        stg.transition_rates().items(), key=lambda kv: (str(kv[0][0]),
                                                        str(kv[0][1]))
    ):
        lines.append(
            f"  {_quote(str(src))} -> {_quote(str(dst))} "
            f"[label={_quote(f'{rate:g}')}];"
        )
    lines.append("}")
    return "\n".join(lines)
