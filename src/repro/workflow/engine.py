"""Workflow execution engine.

The engine executes workflow instances task by task against a shared
:class:`~repro.workflow.data.DataStore`, committing every completed task to
the shared :class:`~repro.workflow.log.SystemLog`.  Several runs may be
interleaved (the paper's multi-processor example, Figure 1) under a
scheduling policy; the interleaving defines the log precedence ``≺``.

Attacks plug in through the ``tamper`` hook: after a task computes its
outputs, the hook may replace them (a malicious or forged task).  The
engine itself stays oblivious to whether a run is clean or under attack —
that knowledge belongs to :mod:`repro.ids`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.errors import BranchDecisionError, ExecutionError
from repro.workflow.data import DataStore
from repro.workflow.log import LogRecord, RecordKind, SystemLog
from repro.workflow.spec import WorkflowSpec
from repro.workflow.task import InstanceCounter, TaskInstance

__all__ = ["TamperHook", "WorkflowRun", "RunResult", "Engine"]


class TamperHook(Protocol):
    """Attack insertion point (see :mod:`repro.ids.attacks`).

    Called once per executed task instance, after the genuine body ran.
    Returns the outputs to actually commit — identical to ``outputs`` for
    untampered tasks, corrupted values for attacked ones.
    """

    def apply(
        self,
        instance: TaskInstance,
        inputs: Mapping[str, Any],
        outputs: Mapping[str, Any],
    ) -> Mapping[str, Any]:
        """Return possibly-tampered outputs for ``instance``."""
        ...


@dataclass(frozen=True)
class RunResult:
    """Summary of one workflow run.

    Attributes
    ----------
    workflow_instance:
        Id of the run.
    path:
        The execution path actually taken (task ids, with repetition).
    instances:
        The committed task instances, in execution order.
    completed:
        Whether an end node was reached.
    """

    workflow_instance: str
    path: Tuple[str, ...]
    instances: Tuple[TaskInstance, ...]
    completed: bool


class WorkflowRun:
    """Stepwise execution state of one workflow instance.

    A run walks the workflow graph from the start node, executing one task
    per :meth:`step`.  At branch nodes the task's ``choose`` function picks
    the successor based on the data the task saw — so corrupted data can
    steer the run onto a wrong execution path, the phenomenon Theorems 1/2
    deal with.
    """

    def __init__(
        self,
        spec: WorkflowSpec,
        workflow_instance: str,
        max_steps: int = 10_000,
    ) -> None:
        self._spec = spec
        self._id = workflow_instance
        self._counter = InstanceCounter(workflow_instance)
        self._current: Optional[str] = spec.start
        self._instances: List[TaskInstance] = []
        self._max_steps = max_steps

    @property
    def spec(self) -> WorkflowSpec:
        """The workflow specification this run executes."""
        return self._spec

    @property
    def workflow_instance(self) -> str:
        """Id of this run."""
        return self._id

    @property
    def done(self) -> bool:
        """True when the run has reached (and executed) an end node."""
        return self._current is None

    @property
    def current_task(self) -> Optional[str]:
        """Task id about to execute next, or ``None`` when done."""
        return self._current

    @property
    def instances(self) -> Tuple[TaskInstance, ...]:
        """Instances executed so far, in order."""
        return tuple(self._instances)

    def step(
        self,
        store: DataStore,
        log: SystemLog,
        tamper: Optional[TamperHook] = None,
    ) -> LogRecord:
        """Execute and commit the current task, then advance.

        Returns the committed log record.

        Raises
        ------
        ExecutionError
            When the run is already done, the step budget is exhausted, or
            the task body fails.
        BranchDecisionError
            When a branch decision names a non-successor.
        """
        if self._current is None:
            raise ExecutionError(f"run {self._id!r} is already complete")
        if len(self._instances) >= self._max_steps:
            raise ExecutionError(
                f"run {self._id!r} exceeded max_steps={self._max_steps} "
                "(non-terminating cycle?)"
            )
        task = self._spec.task(self._current)
        instance = self._counter.next_instance(task.task_id)

        read_versions: Dict[str, int] = {}
        inputs: Dict[str, Any] = {}
        for name in sorted(task.reads):
            ver, value = store.read_version(name)
            read_versions[name] = ver
            inputs[name] = value

        try:
            outputs = dict(task.run(inputs))
        except ValueError as exc:
            raise ExecutionError(str(exc)) from exc
        if tamper is not None:
            outputs = dict(tamper.apply(instance, inputs, outputs))

        write_versions: Dict[str, int] = {}
        for name in sorted(outputs):
            write_versions[name] = store.write(name, outputs[name],
                                               writer=instance.uid)

        chosen = self._decide_successor(task, inputs, outputs)
        record = log.commit(
            instance,
            reads=read_versions,
            writes=write_versions,
            chosen=chosen,
            kind=RecordKind.NORMAL,
        )
        self._instances.append(instance)
        self._current = chosen
        return record

    def result(self) -> RunResult:
        """Snapshot of this run as a :class:`RunResult`."""
        return RunResult(
            workflow_instance=self._id,
            path=tuple(i.task_id for i in self._instances),
            instances=tuple(self._instances),
            completed=self.done,
        )

    def _decide_successor(
        self,
        task,
        inputs: Mapping[str, Any],
        outputs: Mapping[str, Any],
    ) -> Optional[str]:
        successors = self._spec.successors(task.task_id)
        if not successors:
            return None
        if len(successors) == 1:
            return successors[0]
        visible = dict(inputs)
        visible.update(outputs)
        chosen = task.choose(visible)  # validated non-None by the spec
        if chosen not in successors:
            raise BranchDecisionError(
                f"branch {task.task_id!r} chose {chosen!r}, not one of "
                f"{sorted(successors)}"
            )
        return chosen


class Engine:
    """Executes and interleaves workflow runs against shared state.

    The engine owns no store or log of its own; it coordinates runs over
    the store/log it was given, and remembers which spec each workflow
    instance executes (needed later by the
    :class:`~repro.workflow.dependency.DependencyAnalyzer`).
    """

    #: Supported interleaving policies for :meth:`interleave`.
    POLICIES = ("round_robin", "sequential", "random")

    def __init__(
        self,
        store: DataStore,
        log: SystemLog,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._store = store
        self._log = log
        self._rng = rng if rng is not None else random.Random(0)
        self._specs_by_instance: Dict[str, WorkflowSpec] = {}
        self._instance_seq = 0

    @property
    def store(self) -> DataStore:
        """The shared data store."""
        return self._store

    @property
    def log(self) -> SystemLog:
        """The shared system log."""
        return self._log

    @property
    def specs_by_instance(self) -> Dict[str, WorkflowSpec]:
        """Mapping workflow-instance id → spec (for dependency analysis)."""
        return dict(self._specs_by_instance)

    def new_run(
        self,
        spec: WorkflowSpec,
        workflow_instance: Optional[str] = None,
    ) -> WorkflowRun:
        """Create a run of ``spec``; auto-names it ``wf<N>`` if unnamed."""
        if workflow_instance is None:
            workflow_instance = f"wf{self._instance_seq}"
        self._instance_seq += 1
        self._specs_by_instance[workflow_instance] = spec
        return WorkflowRun(spec, workflow_instance)

    def run_to_completion(
        self,
        run: WorkflowRun,
        tamper: Optional[TamperHook] = None,
    ) -> RunResult:
        """Drive one run until it reaches an end node."""
        while not run.done:
            run.step(self._store, self._log, tamper)
        return run.result()

    def interleave(
        self,
        runs: Sequence[WorkflowRun],
        policy: str = "round_robin",
        tamper: Optional[TamperHook] = None,
    ) -> List[RunResult]:
        """Execute several runs concurrently under a scheduling policy.

        Policies
        --------
        ``round_robin``
            One task from each live run, cycling (Figure 1 style).
        ``sequential``
            Complete each run before starting the next.
        ``random``
            Pick a random live run for each step (uses the engine's rng).
        """
        if policy not in self.POLICIES:
            raise ExecutionError(
                f"unknown interleave policy {policy!r}; "
                f"expected one of {self.POLICIES}"
            )
        live = [r for r in runs if not r.done]
        if policy == "sequential":
            for run in live:
                self.run_to_completion(run, tamper)
        elif policy == "round_robin":
            while live:
                for run in list(live):
                    run.step(self._store, self._log, tamper)
                    if run.done:
                        live.remove(run)
        else:  # random
            while live:
                run = live[self._rng.randrange(len(live))]
                run.step(self._store, self._log, tamper)
                if run.done:
                    live.remove(run)
        return [r.result() for r in runs]
