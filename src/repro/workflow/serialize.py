"""Workflow specifications as data.

A :class:`WorkflowDocument` describes a workflow with *expression-based*
task bodies (see :mod:`repro.workflow.expr`) instead of Python
callables, making specifications serializable (JSON), transportable and
inspectable — what decentralized workflow processing (Section VII)
requires, and what lets the recovery system expose "only dependence
relations" of a private specification: read/write sets fall out of the
expressions.

Example document::

    {
      "workflow_id": "order",
      "tasks": [
        {"id": "price",  "writes": {"total": "qty * unit"}},
        {"id": "check",  "writes": {"eligible": "total >= 100"},
         "choose": [["apply", "eligible"], ["skip", "true"]]},
        {"id": "apply",  "writes": {"payable": "total - total // 10"}},
        {"id": "skip",   "writes": {"payable": "total"}}
      ],
      "edges": [["price", "check"], ["check", "apply"],
                ["check", "skip"]]
    }

``build()`` compiles it into a regular, executable
:class:`~repro.workflow.spec.WorkflowSpec`; read sets are inferred from
the expressions' free variables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkflowSpecError
from repro.workflow.expr import Expr, ExprError, compile_expr
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["TaskDocument", "WorkflowDocument"]


@dataclass(frozen=True)
class TaskDocument:
    """Serializable description of one task.

    Attributes
    ----------
    task_id:
        Task identifier.
    writes:
        Mapping ``object name → expression source``; each expression is
        evaluated over the task's inputs (write expressions referencing
        a written object read its *old* value).
    choose:
        For branch nodes: ordered ``(successor, condition)`` pairs; the
        first truthy condition wins.  Use ``"true"`` as the final
        else-arm.  Empty for non-branch tasks.
    extra_reads:
        Objects to read beyond those inferred from the expressions
        (rarely needed; kept for pure routing reads).
    description:
        Free-text documentation.
    """

    task_id: str
    writes: Mapping[str, str] = field(default_factory=dict)
    choose: Tuple[Tuple[str, str], ...] = ()
    extra_reads: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "writes", dict(self.writes))
        object.__setattr__(
            self, "choose", tuple((s, c) for s, c in self.choose)
        )
        object.__setattr__(self, "extra_reads", tuple(self.extra_reads))

    def compiled(self) -> Tuple[Dict[str, Expr], Tuple[Tuple[str, Expr], ...]]:
        """Compile all expressions; raises :class:`ExprError` with task
        context on failure."""
        try:
            writes = {
                name: compile_expr(src) for name, src in
                sorted(self.writes.items())
            }
            choose = tuple(
                (succ, compile_expr(cond)) for succ, cond in self.choose
            )
        except ExprError as exc:
            raise ExprError(
                f"task {self.task_id!r}: {exc}"
            ) from exc
        return writes, choose

    def inferred_reads(self) -> Tuple[str, ...]:
        """The task's read set: free variables of its write expressions,
        plus condition variables that are not its own outputs, plus
        ``extra_reads``."""
        writes, choose = self.compiled()
        names = set(self.extra_reads)
        for expr in writes.values():
            names |= expr.names
        for _succ, cond in choose:
            names |= cond.names - set(self.writes)
        return tuple(sorted(names))

    # -- dict form -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form."""
        out: Dict[str, Any] = {"id": self.task_id}
        if self.writes:
            out["writes"] = dict(self.writes)
        if self.choose:
            out["choose"] = [list(pair) for pair in self.choose]
        if self.extra_reads:
            out["extra_reads"] = list(self.extra_reads)
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskDocument":
        """Parse the plain-JSON form."""
        try:
            task_id = data["id"]
        except KeyError:
            raise WorkflowSpecError(
                "task document missing required key 'id'"
            ) from None
        return cls(
            task_id=task_id,
            writes=data.get("writes", {}),
            choose=tuple(
                (pair[0], pair[1]) for pair in data.get("choose", ())
            ),
            extra_reads=tuple(data.get("extra_reads", ())),
            description=data.get("description", ""),
        )


@dataclass(frozen=True)
class WorkflowDocument:
    """Serializable description of a whole workflow.

    ``lint`` carries optional lint configuration that travels with the
    document (see :func:`repro.lint.config_from_document`): an
    ``allow`` list of rule ids to suppress and blast-radius thresholds
    (``blast_warn_fraction`` / ``blast_error_fraction``).  Unknown keys
    round-trip untouched for forward compatibility.
    """

    workflow_id: str
    tasks: Tuple[TaskDocument, ...]
    edges: Tuple[Tuple[str, str], ...]
    lint: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(
            self, "edges", tuple((a, b) for a, b in self.edges)
        )
        object.__setattr__(self, "lint", dict(self.lint))

    # -- building ----------------------------------------------------------

    def build(self) -> WorkflowSpec:
        """Compile into an executable, validated workflow spec."""
        builder = workflow(self.workflow_id)
        for doc in self.tasks:
            writes, choose = doc.compiled()
            reads = doc.inferred_reads()
            builder.task(
                doc.task_id,
                reads=reads,
                writes=sorted(doc.writes),
                compute=_make_compute(doc.task_id, writes),
                choose=_make_choose(doc.task_id, choose) if choose
                else None,
                description=doc.description,
            )
        for src, dst in self.edges:
            builder.edge(src, dst)
        return builder.build()

    # -- dict / json form -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form."""
        out: Dict[str, Any] = {
            "workflow_id": self.workflow_id,
            "tasks": [t.to_dict() for t in self.tasks],
            "edges": [list(e) for e in self.edges],
        }
        if self.lint:
            out["lint"] = dict(self.lint)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowDocument":
        """Parse the plain-JSON form."""
        for key in ("workflow_id", "tasks", "edges"):
            if key not in data:
                raise WorkflowSpecError(
                    f"workflow document missing required key {key!r}"
                )
        return cls(
            workflow_id=data["workflow_id"],
            tasks=tuple(
                TaskDocument.from_dict(t) for t in data["tasks"]
            ),
            edges=tuple((e[0], e[1]) for e in data["edges"]),
            lint=data.get("lint", {}),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "WorkflowDocument":
        """Parse a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkflowSpecError(
                f"invalid workflow JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


def _make_compute(task_id: str, writes: Mapping[str, Expr]):
    def compute(inputs: Mapping[str, Any]) -> Dict[str, Any]:
        return {name: expr(inputs) for name, expr in writes.items()}

    return compute


def _make_choose(task_id: str, choose: Sequence[Tuple[str, Expr]]):
    def decide(visible: Mapping[str, Any]) -> str:
        for successor, condition in choose:
            if condition(visible):
                return successor
        raise ExprError(
            f"branch {task_id!r}: no choose condition was true "
            "(add a final ['<successor>', 'true'] arm)"
        )

    return decide
