"""Graph analyses behind control dependency (Section II-D).

The paper defines control dependency through two graph notions:

- an *unavoidable node* exists in **all** execution paths of the workflow;
- a *dominant node* of ``t_j`` is any branch node (outdegree > 1) on the
  path from the start node to ``t_j``.

``t_j`` is control dependent on each of its dominant nodes unless ``t_j``
is unavoidable.  We compute dominant nodes with classic dominator analysis
(a node ``d`` dominates ``n`` when every path from the start to ``n``
passes through ``d``), and unavoidable nodes with a cut characterization:
``v`` is unavoidable iff removing ``v`` disconnects the start node from
every end node (or ``v`` is itself the start/the only end).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.workflow.spec import WorkflowSpec

__all__ = ["dominators", "unavoidable_nodes", "branch_nodes"]


def branch_nodes(spec: WorkflowSpec) -> FrozenSet[str]:
    """Nodes of ``spec`` with outdegree greater than one."""
    return spec.branch_nodes


def dominators(spec: WorkflowSpec) -> Dict[str, FrozenSet[str]]:
    """Dominator sets for every node of the workflow graph.

    ``dominators(spec)[n]`` contains every node (including ``n`` itself)
    that lies on *all* paths from the start node to ``n``.  Computed with
    the standard iterative data-flow algorithm; handles cycles.
    """
    nodes = list(spec.tasks)
    start = spec.start
    all_nodes = set(nodes)
    dom: Dict[str, Set[str]] = {n: set(all_nodes) for n in nodes}
    dom[start] = {start}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == start:
                continue
            preds = spec.predecessors(n)
            if preds:
                new = set(all_nodes)
                for p in preds:
                    new &= dom[p]
            else:  # unreachable is impossible in a validated spec
                new = set()
            new.add(n)
            if new != dom[n]:
                dom[n] = new
                changed = True
    return {n: frozenset(s) for n, s in dom.items()}


def unavoidable_nodes(spec: WorkflowSpec) -> FrozenSet[str]:
    """Nodes present in every execution path of the workflow.

    ``v`` is unavoidable iff after deleting ``v`` no end node remains
    reachable from the start node.  The start node is always unavoidable;
    an end node is unavoidable iff it is the only way to terminate.
    """
    start = spec.start
    ends = spec.ends
    result: Set[str] = set()
    for v in spec.tasks:
        if v == start:
            result.add(v)
            continue
        if _reaches_end_without(spec, avoid=v):
            continue
        result.add(v)
    return frozenset(result)


def _reaches_end_without(spec: WorkflowSpec, avoid: str) -> bool:
    """Can the start node still reach some end node if ``avoid`` is
    removed from the graph?"""
    start = spec.start
    if start == avoid:
        return False
    ends = spec.ends
    seen: Set[str] = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in ends:
            return True
        for nxt in spec.successors(node):
            if nxt != avoid and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False
