"""The precedence relation ``≺`` and the ``minimal`` selector.

Section II-B: ``t_i ≺ t_j`` when ``t_i`` appears earlier than ``t_j`` in the
system log.  ``≺`` is transitive and asymmetric — a strict partial order
once restricted to comparable pairs.  The scheduler repeatedly executes
``minimal(S, ≺)``: an element of ``S`` with no predecessor inside ``S``.

:class:`PartialOrder` is a small explicit-edge partial order used both for
log-derived precedence and for the recovery partial orders of Theorems 3
and 4 (where the ordered elements are recovery actions, not log records).
"""

from __future__ import annotations

import random
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.errors import CyclicOrderError

__all__ = ["PartialOrder", "minimal"]

T = TypeVar("T", bound=Hashable)


class PartialOrder(Generic[T]):
    """A strict partial order represented by explicit ``a ≺ b`` edges.

    Edges may be added freely; :meth:`check_acyclic` verifies that the
    transitive closure is irreflexive (no cycles), which Theorems 3/4
    require for a schedulable recovery plan.
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._succ: Dict[T, Set[T]] = {}
        self._pred: Dict[T, Set[T]] = {}
        for e in elements:
            self.add_element(e)

    # -- construction -----------------------------------------------------

    def add_element(self, element: T) -> None:
        """Register ``element`` with no order constraints (idempotent)."""
        self._succ.setdefault(element, set())
        self._pred.setdefault(element, set())

    def add_edge(self, before: T, after: T) -> None:
        """Record the constraint ``before ≺ after``.

        Self-edges are rejected immediately; longer cycles are detected by
        :meth:`check_acyclic` / :meth:`topological_order`.
        """
        if before == after:
            raise CyclicOrderError(f"reflexive constraint {before!r} ≺ itself")
        self.add_element(before)
        self.add_element(after)
        self._succ[before].add(after)
        self._pred[after].add(before)

    # -- queries ------------------------------------------------------------

    def elements(self) -> FrozenSet[T]:
        """All registered elements."""
        return frozenset(self._succ)

    def edges(self) -> FrozenSet[Tuple[T, T]]:
        """All direct ``(before, after)`` constraints."""
        return frozenset(
            (a, b) for a, succs in self._succ.items() for b in succs
        )

    def direct_successors(self, element: T) -> FrozenSet[T]:
        """Elements directly constrained to come after ``element``."""
        return frozenset(self._succ.get(element, ()))

    def direct_predecessors(self, element: T) -> FrozenSet[T]:
        """Elements directly constrained to come before ``element``."""
        return frozenset(self._pred.get(element, ()))

    def precedes(self, a: T, b: T) -> bool:
        """Transitive query: does ``a ≺ b`` hold?"""
        if a not in self._succ or b not in self._succ:
            return False
        frontier: List[T] = [a]
        seen: Set[T] = set()
        while frontier:
            node = frontier.pop()
            for nxt in self._succ[node]:
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def comparable(self, a: T, b: T) -> bool:
        """True when ``a ≺ b`` or ``b ≺ a``."""
        return self.precedes(a, b) or self.precedes(b, a)

    def minimal_elements(self, subset: Optional[Iterable[T]] = None) -> FrozenSet[T]:
        """All ``x`` in ``subset`` with no predecessor inside ``subset``.

        ``subset`` defaults to every element.  This is the full candidate
        set for the paper's ``minimal(S, ≺)``.
        """
        pool = set(self._succ) if subset is None else set(subset)
        return frozenset(
            x for x in pool if not (self._pred.get(x, set()) & pool)
        )

    def check_acyclic(self) -> None:
        """Raise :class:`~repro.errors.CyclicOrderError` when cyclic."""
        self.topological_order()

    def topological_order(self, tiebreak: Optional[random.Random] = None) -> List[T]:
        """One linear extension of the partial order.

        ``tiebreak`` randomizes the choice among minimal elements (the
        paper: "we randomly select one qualified result"); without it the
        choice is deterministic by sorted ``repr`` for reproducibility.
        """
        pending = set(self._succ)
        in_deg: Dict[T, int] = {
            x: len(self._pred[x] & pending) for x in pending
        }
        ready = [x for x in pending if in_deg[x] == 0]
        order: List[T] = []
        while ready:
            if tiebreak is not None:
                idx = tiebreak.randrange(len(ready))
                ready[idx], ready[-1] = ready[-1], ready[idx]
            else:
                ready.sort(key=repr, reverse=True)
            node = ready.pop()
            order.append(node)
            pending.discard(node)
            for nxt in self._succ[node]:
                if nxt in pending:
                    in_deg[nxt] -= 1
                    if in_deg[nxt] == 0:
                        ready.append(nxt)
        if pending:
            raise CyclicOrderError(
                f"partial order contains a cycle among {len(pending)} "
                f"elements, e.g. {sorted(map(repr, list(pending)[:4]))}"
            )
        return order

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[T]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartialOrder({len(self._succ)} elements, "
            f"{sum(len(s) for s in self._succ.values())} edges)"
        )


def minimal(
    subset: Iterable[T],
    order: PartialOrder[T],
    rng: Optional[random.Random] = None,
) -> T:
    """The paper's ``minimal(S, ≺)``: one element of ``S`` that no other
    element of ``S`` precedes.

    When several elements qualify, one is picked at random (with ``rng``)
    or deterministically (smallest ``repr``) when ``rng`` is ``None``.

    Raises
    ------
    CyclicOrderError
        If ``S`` is non-empty but every element has a predecessor in ``S``
        (a cycle), or ``S`` is empty.
    """
    pool = list(subset)
    if not pool:
        raise CyclicOrderError("minimal() of an empty set")
    candidates = sorted(order.minimal_elements(pool), key=repr)
    if not candidates:
        raise CyclicOrderError(
            "no minimal element: the subset contains an order cycle"
        )
    if rng is None:
        return candidates[0]
    return candidates[rng.randrange(len(candidates))]
