"""Data and control dependencies (Definition 1 and Section II-D).

Two layers are provided:

**Spec level** — :class:`ControlDependencies` computes ``t_i →c t_j`` over a
workflow graph: ``t_j`` is control dependent on every branch node that
dominates it, unless ``t_j`` is unavoidable (on all execution paths).  The
relation is transitive by construction.

**Log level** — :class:`DependencyAnalyzer` computes data dependences
between committed task instances.  Because the system log records the exact
version every instance read and wrote, the primary flow relation is the
*reads-from* relation (``t_j`` read a version written by ``t_i``), which is
the semantics the paper's damage-tracing examples use.  The literal
set-algebra forms of Definition 1 (with the interposed-writers union) are
also provided for completeness and are related to the version-based forms
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import RecoveryError
from repro.workflow.dominators import dominators, unavoidable_nodes
from repro.workflow.log import LogRecord, SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "DependencyKind",
    "DependencyEdge",
    "ControlDependencies",
    "DependencyAnalyzer",
]


class DependencyKind(str, Enum):
    """The four dependence relations of the paper."""

    FLOW = "flow"          # →f : t_j reads what t_i wrote
    ANTI = "anti"          # →a : t_j overwrites what t_i read
    OUTPUT = "output"      # →o : t_j overwrites what t_i wrote
    CONTROL = "control"    # →c : t_j's execution decided by branch t_i


@dataclass(frozen=True)
class DependencyEdge:
    """A directed dependence ``src → dst`` of a given kind.

    ``src`` and ``dst`` are task-instance uids; ``objects`` lists the data
    objects that realize a data dependence (empty for control edges).
    """

    src: str
    dst: str
    kind: DependencyKind
    objects: FrozenSet[str] = frozenset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        via = f" via {sorted(self.objects)}" if self.objects else ""
        return f"{self.src} -{self.kind.value}-> {self.dst}{via}"


class ControlDependencies:
    """Spec-level control dependency ``→c`` for one workflow graph.

    ``t_i →c t_j`` iff ``t_j`` is not unavoidable, ``t_i`` is a branch node
    (outdegree > 1), and ``t_i`` dominates ``t_j``.  With the dominator
    formulation the relation is already transitively closed, matching the
    paper's statement that ``→c`` is transitive.
    """

    def __init__(self, spec: WorkflowSpec) -> None:
        self._spec = spec
        self._unavoidable = unavoidable_nodes(spec)
        doms = dominators(spec)
        branches = spec.branch_nodes
        controllers: Dict[str, FrozenSet[str]] = {}
        for node in spec.tasks:
            if node in self._unavoidable:
                controllers[node] = frozenset()
            else:
                controllers[node] = frozenset(
                    d for d in doms[node] if d != node and d in branches
                )
        self._controllers = controllers

    @property
    def spec(self) -> WorkflowSpec:
        """The workflow specification analyzed."""
        return self._spec

    @property
    def unavoidable(self) -> FrozenSet[str]:
        """Tasks on every execution path (never control dependent)."""
        return self._unavoidable

    def controllers_of(self, task_id: str) -> FrozenSet[str]:
        """All ``t_i`` with ``t_i →c task_id`` (transitively closed)."""
        return self._controllers[task_id]

    def depends(self, controller: str, dependent: str) -> bool:
        """Does ``controller →c dependent`` hold?"""
        return controller in self._controllers[dependent]

    def dependents_of(self, task_id: str) -> FrozenSet[str]:
        """All ``t_j`` with ``task_id →c t_j``."""
        return frozenset(
            t for t, ctrl in self._controllers.items() if task_id in ctrl
        )


class DependencyAnalyzer:
    """Log-level dependence analysis across all workflows in the system.

    Parameters
    ----------
    log:
        The system log to analyze (a snapshot; the analyzer never mutates
        it).
    specs:
        Mapping from *workflow instance id* to the
        :class:`~repro.workflow.spec.WorkflowSpec` that instance executes.
        Needed for control dependences; data dependences work without it.
    """

    def __init__(
        self,
        log: SystemLog,
        specs: Optional[Mapping[str, WorkflowSpec]] = None,
    ) -> None:
        self._log = log
        self._records: Tuple[LogRecord, ...] = log.normal_records()
        self._specs = dict(specs) if specs else {}
        self._control_cache: Dict[str, ControlDependencies] = {}
        self._writer_of_version: Dict[Tuple[str, int], str] = {}
        for r in self._records:
            for name, ver in r.writes.items():
                self._writer_of_version[(name, ver)] = r.uid
        self._by_uid: Dict[str, LogRecord] = {r.uid: r for r in self._records}

    # -- basic access ---------------------------------------------------------

    @property
    def log(self) -> SystemLog:
        """The analyzed system log."""
        return self._log

    def record(self, uid: str) -> LogRecord:
        """Normal log record for ``uid``."""
        try:
            return self._by_uid[uid]
        except KeyError:
            raise RecoveryError(f"uid {uid!r} not in analyzed log") from None

    def control_model(self, workflow_instance: str) -> ControlDependencies:
        """Control-dependency model for the spec run by ``workflow_instance``."""
        if workflow_instance not in self._control_cache:
            try:
                spec = self._specs[workflow_instance]
            except KeyError:
                raise RecoveryError(
                    f"no workflow spec registered for instance "
                    f"{workflow_instance!r}"
                ) from None
            self._control_cache[workflow_instance] = ControlDependencies(spec)
        return self._control_cache[workflow_instance]

    # -- version-based data dependences (primary) -------------------------------

    def flow_sources(self, uid: str) -> Tuple[DependencyEdge, ...]:
        """Edges ``t_i →f uid``: the writers of the versions ``uid`` read.

        Reads of version 0 values written before the log (initial data)
        have no source edge.
        """
        dst = self.record(uid)
        by_src: Dict[str, Set[str]] = {}
        for name, ver in dst.reads.items():
            src = self._writer_of_version.get((name, ver))
            if src is not None and src != uid:
                by_src.setdefault(src, set()).add(name)
        return tuple(
            DependencyEdge(src, uid, DependencyKind.FLOW, frozenset(objs))
            for src, objs in sorted(by_src.items())
        )

    def flow_dependents(self, uid: str) -> Tuple[DependencyEdge, ...]:
        """Edges ``uid →f t_j``: instances that read versions ``uid`` wrote."""
        src = self.record(uid)
        out: List[DependencyEdge] = []
        written = {(name, ver) for name, ver in src.writes.items()}
        for r in self._records:
            if r.seq <= src.seq:
                continue
            objs = {
                name for name, ver in r.reads.items() if (name, ver) in written
            }
            if objs:
                out.append(
                    DependencyEdge(uid, r.uid, DependencyKind.FLOW,
                                   frozenset(objs))
                )
        return tuple(out)

    def anti_edges_from(self, uid: str) -> Tuple[DependencyEdge, ...]:
        """Edges ``uid →a t_j``: the *first* later writer of each object
        ``uid`` read."""
        src = self.record(uid)
        out: List[DependencyEdge] = []
        pending: Set[str] = set(src.reads)
        for r in self._records:
            if r.seq <= src.seq or not pending:
                continue
            objs = pending & set(r.writes)
            if objs:
                out.append(
                    DependencyEdge(uid, r.uid, DependencyKind.ANTI,
                                   frozenset(objs))
                )
                pending -= objs
        return tuple(out)

    def output_edges_from(self, uid: str) -> Tuple[DependencyEdge, ...]:
        """Edges ``uid →o t_j``: the *next* writer of each object ``uid``
        wrote."""
        src = self.record(uid)
        out: List[DependencyEdge] = []
        pending: Set[str] = set(src.writes)
        for r in self._records:
            if r.seq <= src.seq or not pending:
                continue
            objs = pending & set(r.writes)
            if objs:
                out.append(
                    DependencyEdge(uid, r.uid, DependencyKind.OUTPUT,
                                   frozenset(objs))
                )
                pending -= objs
        return tuple(out)

    def all_data_edges(self) -> Tuple[DependencyEdge, ...]:
        """Every flow / anti / output edge in the log, in source order."""
        out: List[DependencyEdge] = []
        for r in self._records:
            out.extend(self.flow_dependents(r.uid))
            out.extend(self.anti_edges_from(r.uid))
            out.extend(self.output_edges_from(r.uid))
        return tuple(out)

    # -- literal Definition 1 forms ------------------------------------------

    def _between(self, a: LogRecord, b: LogRecord) -> Iterable[LogRecord]:
        return (r for r in self._records if a.seq < r.seq < b.seq)

    def literal_flow(self, uid_i: str, uid_j: str) -> bool:
        """Definition 1 verbatim: ``(W(t_i) ∪ ⋃ W(t_k)) ∩ R(t_j) ≠ ∅``
        for ``t_i ≺ t_k ≺ t_j``."""
        ti, tj = self.record(uid_i), self.record(uid_j)
        if ti.seq >= tj.seq:
            return False
        writes: Set[str] = set(ti.writes)
        for tk in self._between(ti, tj):
            writes |= set(tk.writes)
        return bool(writes & set(tj.reads))

    def literal_anti(self, uid_i: str, uid_j: str) -> bool:
        """Definition 1 verbatim: ``R(t_i) ∩ (W(t_j) ∪ ⋃ W(t_k)) ≠ ∅``."""
        ti, tj = self.record(uid_i), self.record(uid_j)
        if ti.seq >= tj.seq:
            return False
        writes: Set[str] = set(tj.writes)
        for tk in self._between(ti, tj):
            writes |= set(tk.writes)
        return bool(set(ti.reads) & writes)

    def literal_output(self, uid_i: str, uid_j: str) -> bool:
        """Definition 1 verbatim: ``(W(t_i) ∪ ⋃ W(t_k)) ∩ W(t_j) ≠ ∅``."""
        ti, tj = self.record(uid_i), self.record(uid_j)
        if ti.seq >= tj.seq:
            return False
        writes: Set[str] = set(ti.writes)
        for tk in self._between(ti, tj):
            writes |= set(tk.writes)
        return bool(writes & set(tj.writes))

    # -- closures ----------------------------------------------------------------

    def flow_closure(self, seeds: Iterable[str]) -> FrozenSet[str]:
        """All instances reachable from ``seeds`` via ``→f`` edges
        (``t_i →f* t_j``), *excluding* the seeds themselves unless they
        are re-reached."""
        seen: Set[str] = set()
        frontier: List[str] = list(seeds)
        while frontier:
            uid = frontier.pop()
            for edge in self.flow_dependents(uid):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        return frozenset(seen)

    # -- control dependences over instances ------------------------------------

    def control_dependents(self, uid: str) -> Tuple[str, ...]:
        """Instances ``t_j`` in the same workflow trace with
        ``uid →c* t_j`` and ``uid ≺ t_j``."""
        src = self.record(uid)
        wf = src.instance.workflow_instance
        model = self.control_model(wf)
        out: List[str] = []
        for r in self._log.trace(wf):
            if r.seq <= src.seq:
                continue
            if model.depends(src.instance.task_id, r.instance.task_id):
                out.append(r.uid)
        return tuple(out)

    def control_sources(self, uid: str) -> Tuple[str, ...]:
        """Instances ``t_i`` in the same trace with ``t_i →c* uid``."""
        dst = self.record(uid)
        wf = dst.instance.workflow_instance
        model = self.control_model(wf)
        out: List[str] = []
        for r in self._log.trace(wf):
            if r.seq >= dst.seq:
                continue
            if model.depends(r.instance.task_id, dst.instance.task_id):
                out.append(r.uid)
        return tuple(out)
