"""The system log.

Section II-A: "The system log is a sequence of tasks ``t_1, t_2, ..., t_n``
where ``t_i`` is committed earlier than ``t_{i+1}``."  Our log records, for
every committed task instance, the exact versions it read and wrote, plus
the branch decision it took (if any) — everything recovery needs to trace
damage and to undo writes.

The *trace* of a workflow instance is the subsequence of the log belonging
to that instance; ``succ(t_i)`` is the set of instances committed after
``t_i`` in its own trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import LogError
from repro.workflow.task import TaskInstance

__all__ = ["LogRecord", "SystemLog", "RecordKind"]


class RecordKind:
    """Why a record was committed (normal run vs. recovery actions)."""

    NORMAL = "normal"
    UNDO = "undo"
    REDO = "redo"

    ALL = (NORMAL, UNDO, REDO)


@dataclass(frozen=True)
class LogRecord:
    """One committed task instance.

    Attributes
    ----------
    seq:
        Commit sequence number; defines the total commit order of the log.
    instance:
        The committed task instance.
    reads:
        Mapping ``object name → version number read``.
    writes:
        Mapping ``object name → version number written``.
    chosen:
        For branch nodes: the successor task id that was chosen; ``None``
        otherwise.
    kind:
        One of :class:`RecordKind` — ``normal``, ``undo`` or ``redo``.
    """

    seq: int
    instance: TaskInstance
    reads: Mapping[str, int]
    writes: Mapping[str, int]
    chosen: Optional[str] = None
    kind: str = RecordKind.NORMAL

    def __post_init__(self) -> None:
        if self.kind not in RecordKind.ALL:
            raise LogError(f"unknown record kind {self.kind!r}")
        object.__setattr__(self, "reads", dict(self.reads))
        object.__setattr__(self, "writes", dict(self.writes))

    @property
    def uid(self) -> str:
        """Uid of the underlying task instance."""
        return self.instance.uid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.kind == RecordKind.NORMAL else f" [{self.kind}]"
        return f"<{self.seq}: {self.instance.uid}{tag}>"


class SystemLog:
    """Append-only commit log shared by all workflows in the system.

    The log defines the precedence relation ``≺`` between any two committed
    instances (earlier commit precedes later commit), including instances
    of *different* workflows — exactly how damage crosses workflow
    boundaries in the paper's Figure 1 (``t1 ≺ t8``).
    """

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._by_uid: Dict[str, LogRecord] = {}
        self._next_seq = 0

    # -- committing ----------------------------------------------------------

    def commit(
        self,
        instance: TaskInstance,
        reads: Mapping[str, int],
        writes: Mapping[str, int],
        chosen: Optional[str] = None,
        kind: str = RecordKind.NORMAL,
    ) -> LogRecord:
        """Append a record for ``instance`` and return it.

        A given task instance may be committed as a *normal* execution
        only once; undo/redo records may recur (a later recovery pass
        can undo or redo the same instance again), with lookups
        returning the first occurrence.
        """
        key = self._kind_key(instance.uid, kind)
        if key in self._by_uid:
            if kind == RecordKind.NORMAL:
                raise LogError(
                    f"instance {instance.uid} already committed with kind "
                    f"{kind!r}"
                )
            occurrence = 2
            while f"{key}:{occurrence}" in self._by_uid:
                occurrence += 1
            key = f"{key}:{occurrence}"
        record = LogRecord(
            seq=self._next_seq,
            instance=instance,
            reads=reads,
            writes=writes,
            chosen=chosen,
            kind=kind,
        )
        self._next_seq += 1
        self._records.append(record)
        self._by_uid[key] = record
        return record

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records(self, kind: Optional[str] = None) -> Tuple[LogRecord, ...]:
        """All records, optionally filtered by kind, in commit order."""
        if kind is None:
            return tuple(self._records)
        return tuple(r for r in self._records if r.kind == kind)

    def normal_records(self) -> Tuple[LogRecord, ...]:
        """Records of ordinary (non-recovery) executions, in commit order."""
        return self.records(RecordKind.NORMAL)

    def get(self, uid: str, kind: str = RecordKind.NORMAL) -> LogRecord:
        """Record of instance ``uid`` with the given kind."""
        try:
            return self._by_uid[self._kind_key(uid, kind)]
        except KeyError:
            raise LogError(
                f"instance {uid!r} has no {kind!r} record"
            ) from None

    def __contains__(self, uid: str) -> bool:
        """True when ``uid`` has a *normal* record (``t ∈ L``)."""
        return self._kind_key(uid, RecordKind.NORMAL) in self._by_uid

    def position(self, uid: str, kind: str = RecordKind.NORMAL) -> int:
        """Commit sequence number of instance ``uid``."""
        return self.get(uid, kind).seq

    def precedes(self, uid_a: str, uid_b: str) -> bool:
        """The log precedence ``a ≺ b`` over normal records."""
        return self.position(uid_a) < self.position(uid_b)

    # -- traces ---------------------------------------------------------------

    def trace(self, workflow_instance: str) -> Tuple[LogRecord, ...]:
        """The trace of one workflow instance (its normal records)."""
        return tuple(
            r
            for r in self._records
            if r.kind == RecordKind.NORMAL
            and r.instance.workflow_instance == workflow_instance
        )

    def workflow_instances(self) -> Tuple[str, ...]:
        """Ids of all workflow instances present in the log, in order of
        first appearance."""
        seen: Dict[str, None] = {}
        for r in self._records:
            if r.kind == RecordKind.NORMAL:
                seen.setdefault(r.instance.workflow_instance, None)
        return tuple(seen)

    def succ(self, uid: str) -> Tuple[LogRecord, ...]:
        """``succ(t)``: instances committed after ``t`` in *its own trace*.

        Section II-A defines successors within the trace of the workflow
        the task belongs to, not across the whole log.
        """
        record = self.get(uid)
        wf = record.instance.workflow_instance
        return tuple(
            r for r in self.trace(wf) if r.seq > record.seq
        )

    # -- data lineage ----------------------------------------------------------

    def writers_of(self, name: str) -> Tuple[LogRecord, ...]:
        """All normal records that wrote object ``name``, in commit order."""
        return tuple(
            r for r in self.normal_records() if name in r.writes
        )

    def writer_of_version(self, name: str, version: int) -> Optional[LogRecord]:
        """The normal record that wrote version ``version`` of ``name``,
        or ``None`` when that version predates the log (initial value)."""
        for r in self.normal_records():
            if r.writes.get(name) == version:
                return r
        return None

    # -- internal ---------------------------------------------------------------

    @staticmethod
    def _kind_key(uid: str, kind: str) -> str:
        return f"{kind}:{uid}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shown = " ".join(str(r.instance) for r in self._records[:12])
        more = "..." if len(self._records) > 12 else ""
        return f"SystemLog[{shown}{more}]"
