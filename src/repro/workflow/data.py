"""Versioned data stores.

The recovery theory assumes ``undo(t)`` can be implemented "by reading the
last version of the data objects before the attack from the log of the
workflow management system" (Section III-A).  We therefore keep a full
version history per data object.  Two store flavours exist:

- :class:`DataStore` — every object has *one current copy* (the assumption
  behind Theorem 4: a write destroys the previous value for readers), plus
  an internal history used exclusively by recovery.
- :class:`MultiVersionDataStore` — readers may pin snapshots, which breaks
  anti-flow and output dependences (the third recovery strategy of
  Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import DataStoreError, VersionNotFoundError

__all__ = ["Version", "DataStore", "MultiVersionDataStore", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking an object logically removed by recovery.

    Written when every write that ever produced an object is undone and
    the object had no pre-attack value (it was created by a malicious or
    abandoned task): after recovery the object "should not exist".
    """

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


#: Singleton written in place of objects removed by recovery.
TOMBSTONE = _Tombstone()


@dataclass(frozen=True)
class Version:
    """One committed version of a data object.

    Attributes
    ----------
    number:
        Version number, starting at 0 for the initial value and increasing
        by 1 per write.
    value:
        The stored value.
    writer:
        Uid of the task instance that wrote it, or ``None`` for the initial
        value loaded before any task ran.
    """

    number: int
    value: Any
    writer: Optional[str] = None


class DataStore:
    """Single-copy data store with per-object version history.

    Reads always observe the latest version (one copy per object); the
    history exists so that recovery can restore "the last version before
    the attack".
    """

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._history: Dict[str, List[Version]] = {}
        if initial:
            for name, value in initial.items():
                self._history[name] = [Version(0, value, None)]

    # -- reading -------------------------------------------------------------

    def read(self, name: str) -> Any:
        """Current value of ``name``."""
        return self.latest(name).value

    def read_version(self, name: str) -> Tuple[int, Any]:
        """Current ``(version number, value)`` of ``name``."""
        v = self.latest(name)
        return v.number, v.value

    def latest(self, name: str) -> Version:
        """Latest :class:`Version` of ``name``."""
        try:
            return self._history[name][-1]
        except KeyError:
            raise DataStoreError(f"unknown data object {name!r}") from None

    def version(self, name: str, number: int) -> Version:
        """A specific historical version of ``name``."""
        for v in self.history(name):
            if v.number == number:
                return v
        raise VersionNotFoundError(f"{name!r} has no version {number}")

    def history(self, name: str) -> Tuple[Version, ...]:
        """Full version history of ``name``, oldest first."""
        try:
            return tuple(self._history[name])
        except KeyError:
            raise DataStoreError(f"unknown data object {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._history

    def names(self) -> Iterator[str]:
        """Iterate over the names of all known data objects."""
        return iter(self._history)

    def snapshot(self) -> Dict[str, Any]:
        """Current value of every object (a plain dict copy)."""
        return {name: vs[-1].value for name, vs in self._history.items()}

    # -- writing -------------------------------------------------------------

    def write(self, name: str, value: Any, writer: Optional[str] = None) -> int:
        """Commit a new version of ``name`` and return its version number.

        Unknown objects are created (first write becomes version 0 when no
        initial value existed, mirroring a task that creates an object).
        """
        versions = self._history.setdefault(name, [])
        number = versions[-1].number + 1 if versions else 0
        versions.append(Version(number, value, writer))
        return number

    def restore(self, name: str, number: int,
                writer: Optional[str] = None) -> int:
        """Write the value of historical version ``number`` as a *new*
        version (recovery never rewrites history).  Returns the new
        version number."""
        old = self.version(name, number)
        return self.write(name, old.value, writer)

    def last_version_before(self, name: str, number: int) -> Version:
        """The newest version of ``name`` strictly older than ``number``.

        This is the paper's "last version of the data object before the
        attack": undoing a write with version ``number`` restores this.
        """
        candidates = [v for v in self.history(name) if v.number < number]
        if not candidates:
            raise VersionNotFoundError(
                f"{name!r} has no version before {number} "
                "(object was created by the undone task)"
            )
        return candidates[-1]


class MultiVersionDataStore(DataStore):
    """Data store where readers may pin and read consistent snapshots.

    Multiple versions break anti-flow (``→a``) and output (``→o``)
    dependences: a normal task can keep reading the version it saw even
    after recovery rewrites the object.  This enables the third recovery
    strategy of Section III-D (concurrency at the risk of normal tasks
    only) at the price of extra storage.
    """

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(initial)
        self._pins: Dict[str, Dict[str, int]] = {}

    def pin(self, reader: str, name: str) -> int:
        """Pin ``reader`` to the current version of ``name``.

        Subsequent :meth:`read_pinned` calls by the same reader observe
        this version regardless of later writes.  Returns the pinned
        version number.
        """
        number = self.latest(name).number
        self._pins.setdefault(reader, {})[name] = number
        return number

    def read_pinned(self, reader: str, name: str) -> Any:
        """Read ``name`` at the version pinned by ``reader``.

        Falls back to the latest version when the reader has no pin.
        """
        pinned = self._pins.get(reader, {}).get(name)
        if pinned is None:
            return self.read(name)
        return self.version(name, pinned).value

    def release(self, reader: str) -> None:
        """Drop all pins held by ``reader`` (it committed or aborted)."""
        self._pins.pop(reader, None)

    def storage_cost(self) -> int:
        """Total number of stored versions (the paper's extra-storage
        cost of the multi-version strategy)."""
        return sum(len(vs) for vs in self._history.values())
