"""A small, safe expression language for task bodies.

Task bodies written as Python callables cannot be serialized, inspected
or transported — yet decentralized workflow processing (Section VII)
needs specifications that travel as *data*.  This module provides a tiny
expression language that is:

- **safe** — no attribute access, no calls except a whitelist
  (``min``/``max``/``abs``), no statements, no side effects;
- **analyzable** — the free variables of an expression are its read
  set, so task read sets are inferred instead of declared twice;
- **deterministic** — exactly what recovery's re-execution requires.

Grammar (classic recursive descent)::

    expr    := or_ ( '?' expr ':' expr )?          # C-style conditional
    or_     := and_ ( 'or' and_ )*
    and_    := not_ ( 'and' not_ )*
    not_    := 'not' not_ | cmp
    cmp     := sum ( ('=='|'!='|'<='|'>='|'<'|'>') sum )?
    sum     := term ( ('+'|'-') term )*
    term    := unary ( ('*'|'//'|'/'|'%') unary )*
    unary   := '-' unary | atom
    atom    := NUMBER | NAME | 'true' | 'false'
             | FUNC '(' expr (',' expr)* ')' | '(' expr ')'

Booleans are represented as 1/0 so every expression evaluates to a
number — convenient for both data values and branch conditions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError

__all__ = ["ExprError", "Expr", "compile_expr"]


class ExprError(ReproError):
    """An expression failed to tokenize, parse or evaluate."""


Number = Union[int, float]

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>==|!=|<=|>=|//|[-+*/%()<>?:,])"
    r")"
)

_KEYWORDS = {"and", "or", "not", "true", "false"}
_FUNCTIONS: Dict[str, Callable[..., Number]] = {
    "min": min,
    "max": max,
    "abs": abs,
}


def _tokenize(source: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None or match.end() == pos:
            rest = source[pos:].strip()
            if not rest:
                break
            raise ExprError(
                f"cannot tokenize {rest[:10]!r} in expression {source!r}"
            )
        pos = match.end()
        if match.group("number") is not None:
            tokens.append(("number", match.group("number")))
        elif match.group("name") is not None:
            name = match.group("name")
            kind = "keyword" if name in _KEYWORDS else "name"
            tokens.append((kind, name))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


# -- AST -----------------------------------------------------------------


@dataclass(frozen=True)
class _Num:
    value: Number

    def eval(self, env: Mapping[str, Any]) -> Number:
        return self.value

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class _Name:
    name: str

    def eval(self, env: Mapping[str, Any]) -> Number:
        try:
            return env[self.name]
        except KeyError:
            raise ExprError(f"unbound variable {self.name!r}") from None

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset({self.name})


_BINOPS: Dict[str, Callable[[Number, Number], Number]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


@dataclass(frozen=True)
class _BinOp:
    op: str
    left: Any
    right: Any

    def eval(self, env: Mapping[str, Any]) -> Number:
        try:
            return _BINOPS[self.op](self.left.eval(env),
                                    self.right.eval(env))
        except ZeroDivisionError:
            raise ExprError(
                f"division by zero in '{self.op}' expression"
            ) from None

    @property
    def names(self) -> FrozenSet[str]:
        return self.left.names | self.right.names


@dataclass(frozen=True)
class _BoolOp:
    op: str  # "and" | "or"
    left: Any
    right: Any

    def eval(self, env: Mapping[str, Any]) -> Number:
        left = self.left.eval(env)
        if self.op == "and":
            if not left:
                return 0
            return 1 if self.right.eval(env) else 0
        if left:
            return 1
        return 1 if self.right.eval(env) else 0

    @property
    def names(self) -> FrozenSet[str]:
        # Short-circuit still *may* read both sides; the read set is the
        # conservative union (recovery needs the full dependence).
        return self.left.names | self.right.names


@dataclass(frozen=True)
class _Not:
    operand: Any

    def eval(self, env: Mapping[str, Any]) -> Number:
        return 0 if self.operand.eval(env) else 1

    @property
    def names(self) -> FrozenSet[str]:
        return self.operand.names


@dataclass(frozen=True)
class _Neg:
    operand: Any

    def eval(self, env: Mapping[str, Any]) -> Number:
        return -self.operand.eval(env)

    @property
    def names(self) -> FrozenSet[str]:
        return self.operand.names


@dataclass(frozen=True)
class _Cond:
    test: Any
    then: Any
    other: Any

    def eval(self, env: Mapping[str, Any]) -> Number:
        return (self.then if self.test.eval(env) else self.other).eval(env)

    @property
    def names(self) -> FrozenSet[str]:
        return self.test.names | self.then.names | self.other.names


@dataclass(frozen=True)
class _Call:
    fn: str
    args: Tuple[Any, ...]

    def eval(self, env: Mapping[str, Any]) -> Number:
        return _FUNCTIONS[self.fn](*(a.eval(env) for a in self.args))

    @property
    def names(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.names
        return out


# -- parser ---------------------------------------------------------------


class _Parser:
    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = _tokenize(source)
        self._pos = 0

    def parse(self):
        node = self._expr()
        if self._pos != len(self._tokens):
            kind, text = self._tokens[self._pos]
            raise ExprError(
                f"unexpected {text!r} after expression in "
                f"{self._source!r}"
            )
        return node

    # helpers ----------------------------------------------------------

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _take(self, kind: str, text: Optional[str] = None) -> str:
        tok = self._peek()
        if tok is None or tok[0] != kind or (
            text is not None and tok[1] != text
        ):
            expected = text if text is not None else kind
            got = tok[1] if tok else "end of input"
            raise ExprError(
                f"expected {expected!r}, got {got!r} in {self._source!r}"
            )
        self._pos += 1
        return tok[1]

    def _accept(self, kind: str, *texts: str) -> Optional[str]:
        tok = self._peek()
        if tok is not None and tok[0] == kind and (
            not texts or tok[1] in texts
        ):
            self._pos += 1
            return tok[1]
        return None

    # grammar ------------------------------------------------------------

    def _expr(self):
        node = self._or()
        if self._accept("op", "?"):
            then = self._expr()
            self._take("op", ":")
            other = self._expr()
            return _Cond(node, then, other)
        return node

    def _or(self):
        node = self._and()
        while self._accept("keyword", "or"):
            node = _BoolOp("or", node, self._and())
        return node

    def _and(self):
        node = self._not()
        while self._accept("keyword", "and"):
            node = _BoolOp("and", node, self._not())
        return node

    def _not(self):
        if self._accept("keyword", "not"):
            return _Not(self._not())
        return self._cmp()

    def _cmp(self):
        node = self._sum()
        op = self._accept("op", "==", "!=", "<=", ">=", "<", ">")
        if op:
            node = _BinOp(op, node, self._sum())
        return node

    def _sum(self):
        node = self._term()
        while True:
            op = self._accept("op", "+", "-")
            if not op:
                return node
            node = _BinOp(op, node, self._term())

    def _term(self):
        node = self._unary()
        while True:
            op = self._accept("op", "*", "//", "/", "%")
            if not op:
                return node
            node = _BinOp(op, node, self._unary())

    def _unary(self):
        if self._accept("op", "-"):
            return _Neg(self._unary())
        return self._atom()

    def _atom(self):
        tok = self._peek()
        if tok is None:
            raise ExprError(f"unexpected end of {self._source!r}")
        kind, text = tok
        if kind == "number":
            self._pos += 1
            value: Number = float(text) if "." in text else int(text)
            return _Num(value)
        if kind == "keyword" and text in ("true", "false"):
            self._pos += 1
            return _Num(1 if text == "true" else 0)
        if kind == "name":
            self._pos += 1
            if text in _FUNCTIONS and self._accept("op", "("):
                args = [self._expr()]
                while self._accept("op", ","):
                    args.append(self._expr())
                self._take("op", ")")
                return _Call(text, tuple(args))
            if text in _FUNCTIONS:
                raise ExprError(
                    f"function {text!r} must be called in "
                    f"{self._source!r}"
                )
            return _Name(text)
        if kind == "op" and text == "(":
            self._pos += 1
            node = self._expr()
            self._take("op", ")")
            return node
        raise ExprError(f"unexpected {text!r} in {self._source!r}")


class Expr:
    """A compiled expression.

    >>> e = compile_expr("qty * unit + (rush ? 10 : 0)")
    >>> sorted(e.names)
    ['qty', 'rush', 'unit']
    >>> e({"qty": 3, "unit": 20, "rush": 1})
    70
    """

    __slots__ = ("source", "_ast", "names")

    def __init__(self, source: str) -> None:
        self.source = source
        self._ast = _Parser(source).parse()
        #: Free variables — the expression's read set.
        self.names: FrozenSet[str] = self._ast.names

    def __call__(self, env: Mapping[str, Any]) -> Number:
        """Evaluate against ``env`` (a name → value mapping)."""
        return self._ast.eval(env)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Expr({self.source!r})"


def compile_expr(source: str) -> Expr:
    """Compile ``source`` into an :class:`Expr` (raises
    :class:`ExprError` on syntax errors)."""
    if not isinstance(source, str) or not source.strip():
        raise ExprError("expression source must be a non-empty string")
    return Expr(source)
