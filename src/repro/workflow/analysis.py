"""Static damage analysis over workflow specifications.

The log-level analyses (Theorem 1) answer "what *did* this attack
damage".  Designers also need the prospective question: *if* a task
were compromised, how far could the damage spread?  That is answerable
from specifications alone:

- **potential flow**: task ``b`` (in any workflow) may read what task
  ``a`` writes — ``W(a) ∩ R(b) ≠ ∅`` — so corruption can travel
  ``a → b``, including across workflows through shared objects;
- **control amplification**: corrupting any task a branch node reads
  from can flip the branch, implicating every control-dependent task.

:func:`damage_radius` computes the closure of both effects for one
origin task; :func:`critical_tasks` ranks all tasks by radius — the
ones worth hardening (or monitoring with a better IDS) first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import UnknownTaskError
from repro.workflow.dependency import ControlDependencies
from repro.workflow.spec import WorkflowSpec

__all__ = ["TaskRef", "DamageRadius", "potential_flow_edges",
           "damage_radius", "critical_tasks"]

#: A task within a multi-workflow system: ``(workflow id, task id)``.
TaskRef = Tuple[str, str]


@dataclass(frozen=True)
class DamageRadius:
    """Prospective damage footprint of compromising one task.

    Attributes
    ----------
    origin:
        The compromised task.
    data_reachable:
        Tasks reachable through potential data flow (could compute on
        corrupted values), across all workflows.
    control_amplified:
        Tasks whose *execution decision* could flip because a branch
        node sits in the data-reachable set (they may run when they
        should not, or vice versa).
    """

    origin: TaskRef
    data_reachable: FrozenSet[TaskRef]
    control_amplified: FrozenSet[TaskRef]

    @property
    def affected(self) -> FrozenSet[TaskRef]:
        """Everything at risk (excluding the origin itself)."""
        return (self.data_reachable | self.control_amplified) - {
            self.origin
        }

    @property
    def size(self) -> int:
        """Number of tasks at risk."""
        return len(self.affected)

    def fraction_of(self, total_tasks: int) -> float:
        """Radius as a fraction of the system's task count."""
        if total_tasks <= 0:
            return 0.0
        return self.size / total_tasks


def potential_flow_edges(
    specs: Sequence[WorkflowSpec],
) -> Dict[TaskRef, FrozenSet[TaskRef]]:
    """Adjacency of the potential-flow graph over all workflows.

    ``b ∈ edges[a]`` iff some object written by ``a`` is read by ``b``
    (``b ≠ a``).  Cross-workflow edges arise from shared object names.
    """
    writers: Dict[str, Set[TaskRef]] = {}
    readers: Dict[str, Set[TaskRef]] = {}
    for spec in specs:
        for task_id, task in spec.tasks.items():
            ref = (spec.workflow_id, task_id)
            for name in task.writes:
                writers.setdefault(name, set()).add(ref)
            for name in task.reads:
                readers.setdefault(name, set()).add(ref)
    edges: Dict[TaskRef, Set[TaskRef]] = {}
    for spec in specs:
        for task_id in spec.tasks:
            edges[(spec.workflow_id, task_id)] = set()
    for name, ws in writers.items():
        for w in ws:
            for r in readers.get(name, ()):
                if r != w:
                    edges[w].add(r)
    return {ref: frozenset(dsts) for ref, dsts in edges.items()}


def damage_radius(
    specs: Sequence[WorkflowSpec],
    origin: TaskRef,
) -> DamageRadius:
    """Prospective damage footprint of compromising ``origin``.

    The closure alternates data propagation and control amplification:
    a newly data-reachable branch node implicates its control
    dependents, whose writes propagate further, and so on to fixpoint.
    """
    by_id = {spec.workflow_id: spec for spec in specs}
    wf, task = origin
    if wf not in by_id or task not in by_id[wf]:
        raise UnknownTaskError(f"unknown origin task {origin!r}")
    flow = potential_flow_edges(specs)
    control = {
        spec.workflow_id: ControlDependencies(spec) for spec in specs
    }

    data: Set[TaskRef] = {origin}
    amplified: Set[TaskRef] = set()
    frontier: List[TaskRef] = [origin]
    while frontier:
        current = frontier.pop()
        # Data propagation.
        for nxt in flow[current]:
            if nxt not in data:
                data.add(nxt)
                frontier.append(nxt)
        # Control amplification: if `current` feeds a branch decision
        # (it IS a branch node or writes what one reads — covered by
        # data reachability), the branch's dependents are implicated;
        # their writes keep propagating.
        cwf, ctask = current
        spec = by_id[cwf]
        if ctask in spec.branch_nodes:
            for dep in control[cwf].dependents_of(ctask):
                ref = (cwf, dep)
                if ref not in amplified:
                    amplified.add(ref)
                    if ref not in data:
                        data.add(ref)
                        frontier.append(ref)
    return DamageRadius(
        origin=origin,
        data_reachable=frozenset(data - {origin}),
        control_amplified=frozenset(amplified),
    )


def critical_tasks(
    specs: Sequence[WorkflowSpec],
    top: int = 10,
) -> List[DamageRadius]:
    """All tasks ranked by damage radius, largest first.

    The head of this list is where hardening budget (or IDS attention)
    buys the most protection.
    """
    radii = [
        damage_radius(specs, (spec.workflow_id, task_id))
        for spec in specs
        for task_id in sorted(spec.tasks)
    ]
    radii.sort(key=lambda r: (-r.size, r.origin))
    return radii[:top]
