"""repro — self-healing workflow systems under attacks.

A full reproduction of *Yu, Liu & Zang, "Self-Healing Workflow Systems
under Attacks", ICDCS 2004*: a workflow management substrate, attack and
IDS simulation, the dependency-based attack-recovery theory (Theorems
1–4), an operational self-healer, and the paper's CTMC performance
model with steady-state and transient analysis.

Quick tour
----------
>>> from repro import workflow, DataStore, SystemLog, Engine
>>> from repro import AttackCampaign, Healer, audit_strict_correctness
>>> from repro.markov import RecoverySTG, steady_state, loss_probability

See ``examples/quickstart.py`` for an end-to-end walkthrough and
DESIGN.md for the architecture and experiment map.
"""

from repro.core import (
    Action,
    ActionKind,
    HealReport,
    Healer,
    RecoveryAnalyzer,
    RecoveryPlan,
    RecoveryStrategy,
    audit_strict_correctness,
    find_redo_tasks,
    find_undo_tasks,
    recovery_partial_order,
)
from repro.errors import ReproError
from repro.ids import Alert, AttackCampaign, DetectorConfig, IntrusionDetector
from repro.persistence import (
    PersistenceError,
    SystemSnapshot,
    dump_system,
    load_system,
)
from repro.system import SelfHealingSystem, SystemState
from repro.workflow import (
    DataStore,
    DependencyAnalyzer,
    Engine,
    LogRecord,
    MultiVersionDataStore,
    PartialOrder,
    SystemLog,
    TaskInstance,
    TaskSpec,
    WorkflowRun,
    WorkflowSpec,
    minimal,
    workflow,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # workflow substrate
    "workflow",
    "WorkflowSpec",
    "TaskSpec",
    "TaskInstance",
    "DataStore",
    "MultiVersionDataStore",
    "SystemLog",
    "LogRecord",
    "Engine",
    "WorkflowRun",
    "PartialOrder",
    "minimal",
    "DependencyAnalyzer",
    # attacks & detection
    "AttackCampaign",
    "IntrusionDetector",
    "DetectorConfig",
    "Alert",
    # recovery core
    "Action",
    "ActionKind",
    "find_undo_tasks",
    "find_redo_tasks",
    "recovery_partial_order",
    "RecoveryPlan",
    "RecoveryAnalyzer",
    "Healer",
    "HealReport",
    "RecoveryStrategy",
    "audit_strict_correctness",
    # architecture
    "SelfHealingSystem",
    "SystemState",
    # persistence
    "dump_system",
    "load_system",
    "SystemSnapshot",
    "PersistenceError",
]
