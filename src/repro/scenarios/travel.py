"""The introduction's second example: a travel booking with forged
credit-card data.

"The attacker may schedule a travel with forged credit card information
that carries incorrect data in workflow tasks."

Here the booking workflow itself is legitimate — the attacker tampers
with one task's *data* (the card-submission step), steering the
verification branch to approve a booking that should have been denied.
The corrupted booking consumes a seat and books revenue; later bookings
read the corrupted seat count, so the damage spreads.

Recovery redoes the submission with the genuine data, re-decides the
verification branch (deny), abandons the reserve/charge/confirm tasks
(undone, not redone — Theorem 2's negative case), and repairs every
later booking that read the corrupted seat count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["TravelScenario", "build_travel", "booking_spec"]

#: Card numbers divisible by 7 are "valid" in this toy verifier.
PRICE = 120


def booking_spec(name: str) -> WorkflowSpec:
    """A booking workflow: submit → verify → (reserve → charge → confirm)
    or deny."""
    card = f"card_{name}"
    cardinfo = f"cardinfo_{name}"
    valid = f"valid_{name}"
    booked = f"booked_{name}"
    denied = f"denied_{name}"
    return (
        workflow(f"booking_{name}")
        .task("submit", reads=[card], writes=[cardinfo],
              compute=lambda d: {cardinfo: d[card]},
              description="carries the card data (attack point)")
        .task("verify", reads=[cardinfo], writes=[valid],
              compute=lambda d: {valid: 1 if d[cardinfo] % 7 == 0 else 0},
              choose=lambda d, _v=valid: "reserve" if d[_v] else "deny")
        .task("reserve", reads=["seats"], writes=["seats"],
              compute=lambda d: {"seats": d["seats"] - 1})
        .task("charge", reads=["revenue"], writes=["revenue"],
              compute=lambda d: {"revenue": d["revenue"] + PRICE})
        .task("confirm", reads=["seats"], writes=[booked],
              compute=lambda d: {booked: 1})
        .task("deny", reads=[], writes=[denied],
              compute=lambda d: {denied: 1})
        .edge("submit", "verify")
        .edge("verify", "reserve").edge("reserve", "charge")
        .edge("charge", "confirm")
        .edge("verify", "deny")
        .build()
    )


@dataclass
class TravelScenario:
    """The attacked booking system, ready to heal."""

    store: DataStore
    log: SystemLog
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, int]
    malicious_uid: str
    heal: Optional[HealReport] = None
    audit: Optional[CorrectnessReport] = None

    def heal_now(self) -> HealReport:
        """Repair the forged booking and its downstream damage."""
        healer = Healer(self.store, self.log, self.specs_by_instance)
        self.heal = healer.heal([self.malicious_uid])
        self.audit = audit_strict_correctness(
            self.specs_by_instance,
            self.initial_data,
            self.heal.final_history,
            self.store.snapshot(),
        )
        return self.heal


def build_travel(n_honest_bookings: int = 3) -> TravelScenario:
    """Execute the attacked booking day.

    The fraudster's card ``1234`` is invalid (not divisible by 7); the
    attack tampers with the *submit* task so verification sees a valid
    number and approves the booking.  ``n_honest_bookings`` legitimate
    bookings with valid cards follow and read the corrupted seat count.
    """
    initial: Dict[str, int] = {
        "seats": 10,
        "revenue": 0,
        "card_fraud": 1234,           # invalid: 1234 % 7 != 0
        "cardinfo_fraud": 0, "valid_fraud": 0,
        "booked_fraud": 0, "denied_fraud": 0,
    }
    names = [f"b{i}" for i in range(n_honest_bookings)]
    for i, name in enumerate(names):
        initial[f"card_{name}"] = 7 * (100 + i)  # valid cards
        initial[f"cardinfo_{name}"] = 0
        initial[f"valid_{name}"] = 0
        initial[f"booked_{name}"] = 0
        initial[f"denied_{name}"] = 0

    store = DataStore(initial)
    log = SystemLog()
    engine = Engine(store, log)

    campaign = AttackCampaign()
    campaign.corrupt_task(
        "submit",
        workflow_instance="booking_fraud",
        label="forged card data",
        **{"cardinfo_fraud": 7 * 999},  # looks valid to the verifier
    )

    fraud = engine.new_run(booking_spec("fraud"), "booking_fraud")
    engine.run_to_completion(fraud, tamper=campaign)
    for name in names:
        run = engine.new_run(booking_spec(name), f"booking_{name}")
        engine.run_to_completion(run, tamper=campaign)

    return TravelScenario(
        store=store,
        log=log,
        specs_by_instance=engine.specs_by_instance,
        initial_data=initial,
        malicious_uid="booking_fraud/submit#1",
    )
