"""A supply-chain case study: compound attack, compound recovery.

Richer than the paper's two-workflow example, this scenario exercises
every recovery mechanism at once:

- **Workflows**: a procurement run (reorder decision based on stock), a
  stream of sales orders (reserve stock, credit-check branch, invoice),
  and a bookkeeping audit that summarizes the day.
- **Attack 1 (data corruption)**: the attacker inflates the stock count
  read by procurement, so the reorder that should have happened is
  skipped — and later sales are wrongly backordered when the (real)
  stock runs out.
- **Attack 2 (forged run)**: a fake sales order placed with stolen
  credentials drains stock and books revenue.

Recovery must undo the forged order outright (no redo), re-decide the
procurement branch (reorder after all — a *new* execution path), and
repair every sales order whose reserve/credit decisions consumed the
corrupted stock — while the untouched orders keep their work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["SupplyChainScenario", "build_supply_chain"]

REORDER_THRESHOLD = 50
REORDER_QTY = 100
UNIT_COST = 7
UNIT_PRICE = 12


def procurement_spec() -> WorkflowSpec:
    """check stock → (reorder | skip) → post to the purchasing ledger."""
    return (
        workflow("procurement")
        .task("check", reads=["stock"], writes=["stock_reading"],
              compute=lambda d: {"stock_reading": d["stock"]},
              choose=lambda d: (
                  "reorder" if d["stock_reading"] < REORDER_THRESHOLD
                  else "skip"
              ),
              description="reads the stock count (attack point)")
        .task("reorder", reads=["stock", "payables"],
              writes=["stock", "payables"],
              compute=lambda d: {
                  "stock": d["stock"] + REORDER_QTY,
                  "payables": d["payables"] + REORDER_QTY * UNIT_COST,
              })
        .task("skip", reads=[], writes=["po_note"],
              compute=lambda d: {"po_note": 1})
        .task("post", reads=["payables"], writes=["po_total"],
              compute=lambda d: {"po_total": d["payables"]})
        .edge("check", "reorder").edge("check", "skip")
        .edge("reorder", "post").edge("skip", "post")
        .build()
    )


def sales_spec(name: str, qty: int) -> WorkflowSpec:
    """reserve stock → (fulfil | backorder) → settle."""
    reserved = f"reserved_{name}"
    status = f"status_{name}"
    invoice = f"invoice_{name}"
    return (
        workflow(f"sale_{name}")
        .task("reserve", reads=["stock"],
              writes=["stock", reserved],
              compute=lambda d: {
                  "stock": d["stock"] - qty if d["stock"] >= qty
                  else d["stock"],
                  reserved: 1 if d["stock"] >= qty else 0,
              },
              choose=lambda d, _r=reserved: (
                  "fulfil" if d[_r] else "backorder"
              ))
        .task("fulfil", reads=["revenue"], writes=["revenue", invoice],
              compute=lambda d: {
                  "revenue": d["revenue"] + qty * UNIT_PRICE,
                  invoice: qty * UNIT_PRICE,
              })
        .task("backorder", reads=[], writes=[status],
              compute=lambda d: {status: 1})
        .task("settle", reads=["revenue"], writes=[f"settled_{name}"],
              compute=lambda d: {f"settled_{name}": d["revenue"]})
        .edge("reserve", "fulfil").edge("reserve", "backorder")
        .edge("fulfil", "settle").edge("backorder", "settle")
        .build()
    )


def audit_spec() -> WorkflowSpec:
    """End-of-day bookkeeping: margin = revenue − payables."""
    return (
        workflow("bookkeeping")
        .task("summarize", reads=["revenue", "payables", "stock"],
              writes=["margin", "stock_on_hand"],
              compute=lambda d: {
                  "margin": d["revenue"] - d["payables"],
                  "stock_on_hand": d["stock"],
              })
        .build()
    )


@dataclass
class SupplyChainScenario:
    """The attacked supply-chain day, ready to heal."""

    store: DataStore
    log: SystemLog
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, int]
    malicious_uid: str          # the corrupted procurement check
    forged_run: str             # the fake sales order
    sale_names: List[str]
    heal: Optional[HealReport] = None
    audit: Optional[CorrectnessReport] = None

    def heal_now(self) -> HealReport:
        """Run the compound recovery and audit it."""
        healer = Healer(self.store, self.log, self.specs_by_instance)
        self.heal = healer.heal(
            [self.malicious_uid], forged_runs=[self.forged_run]
        )
        self.audit = audit_strict_correctness(
            {
                wf: spec
                for wf, spec in self.specs_by_instance.items()
                if wf != self.forged_run
            },
            self.initial_data,
            self.heal.final_history,
            self.store.snapshot(),
        )
        return self.heal

    def summary(self) -> Dict[str, int]:
        """Key business figures of the current store state."""
        return {
            name: self.store.read(name)
            for name in ("stock", "revenue", "payables", "margin")
        }


def build_supply_chain(n_sales: int = 4) -> SupplyChainScenario:
    """Execute the attacked day.

    Timeline: procurement runs first (stock 40 < 50 would trigger a
    reorder, but the attacker inflates the reading to 400 → skipped);
    the forged sales order drains 30 units; then ``n_sales`` legitimate
    orders of 20 units each arrive — without the reorder the later ones
    are wrongly backordered; bookkeeping closes the day.
    """
    initial: Dict[str, int] = {
        "stock": 40,
        "payables": 0,
        "revenue": 0,
        "stock_reading": 0,
        "po_note": 0,
        "po_total": 0,
        "margin": 0,
        "stock_on_hand": 0,
        "reserved_evil": 0, "status_evil": 0, "invoice_evil": 0,
        "settled_evil": 0,
    }
    names = [f"s{i}" for i in range(n_sales)]
    for name in names:
        initial[f"reserved_{name}"] = 0
        initial[f"status_{name}"] = 0
        initial[f"invoice_{name}"] = 0
        initial[f"settled_{name}"] = 0

    store = DataStore(initial)
    log = SystemLog()
    engine = Engine(store, log)

    campaign = AttackCampaign().corrupt_task(
        "check", workflow_instance="procurement",
        label="forged stock reading", stock_reading=400,
    )

    engine.run_to_completion(
        engine.new_run(procurement_spec(), "procurement"),
        tamper=campaign,
    )
    engine.run_to_completion(
        engine.new_run(sales_spec("evil", 30), "sale_evil")
    )
    for name in names:
        engine.run_to_completion(
            engine.new_run(sales_spec(name, 20), f"sale_{name}")
        )
    engine.run_to_completion(engine.new_run(audit_spec(), "bookkeeping"))

    return SupplyChainScenario(
        store=store,
        log=log,
        specs_by_instance=engine.specs_by_instance,
        initial_data=initial,
        malicious_uid="procurement/check#1",
        forged_run="sale_evil",
        sale_names=names,
    )
