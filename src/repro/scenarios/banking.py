"""The introduction's first example: a forged bank transaction.

"An attacker may forge bank transactions to steal money from accounts of
others, thereby generating malicious workflow tasks."

The attacker uses stolen credentials to start a *whole workflow run* —
a transfer from the victim to the attacker's account.  Every task in the
forged run is malicious (Axiom 1 condition 1: "the task should not be
executed"); the recovery undoes them all and redoes nothing of them.

The scenario also demonstrates candidate resolution through balance
restoration: a *legitimate* transfer submitted after the theft was
rejected for insufficient funds (the attacker had drained the account);
once recovery restores the balance, the healed execution re-decides that
transfer's branch and approves it — the recovered system behaves as if
the attack never happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["BankingScenario", "build_banking", "transfer_spec"]


def transfer_spec(name: str, src: str, dst: str) -> WorkflowSpec:
    """A funds-transfer workflow: validate → (debit → credit → record) or
    reject.

    Object names are parameterized per run (``req_<name>`` etc.) so that
    several transfers can execute in the same system; the account
    balances ``balance_<src>``/``balance_<dst>`` and the shared
    ``ledger`` are the cross-workflow contagion channels.
    """
    req = f"req_{name}"
    ok = f"ok_{name}"
    rejected = f"rejected_{name}"
    bal_src = f"balance_{src}"
    bal_dst = f"balance_{dst}"
    return (
        workflow(f"transfer_{name}")
        .task("validate", reads=[req, bal_src], writes=[ok],
              compute=lambda d: {
                  ok: 1 if 0 < d[req] <= d[bal_src] else 0
              },
              choose=lambda d, _ok=ok: "debit" if d[_ok] else "reject")
        .task("debit", reads=[req, bal_src], writes=[bal_src],
              compute=lambda d: {bal_src: d[bal_src] - d[req]})
        .task("credit", reads=[req, bal_dst], writes=[bal_dst],
              compute=lambda d: {bal_dst: d[bal_dst] + d[req]})
        .task("record", reads=[req, "ledger"], writes=["ledger"],
              compute=lambda d: {"ledger": d["ledger"] + d[req]})
        .task("reject", reads=[], writes=[rejected],
              compute=lambda d: {rejected: 1})
        .edge("validate", "debit").edge("debit", "credit")
        .edge("credit", "record")
        .edge("validate", "reject")
        .build()
    )


@dataclass
class BankingScenario:
    """The attacked banking system, ready to heal."""

    store: DataStore
    log: SystemLog
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, int]
    forged_run: str
    heal: Optional[HealReport] = None
    audit: Optional[CorrectnessReport] = None

    def heal_now(self) -> HealReport:
        """Undo the forged run and repair its collateral damage."""
        healer = Healer(self.store, self.log, self.specs_by_instance)
        self.heal = healer.heal([], forged_runs=[self.forged_run])
        self.audit = audit_strict_correctness(
            {
                wf: spec
                for wf, spec in self.specs_by_instance.items()
                if wf != self.forged_run
            },
            self.initial_data,
            self.heal.final_history,
            self.store.snapshot(),
        )
        return self.heal

    def balances(self) -> Dict[str, int]:
        """Current account balances."""
        return {
            name: self.store.read(name)
            for name in sorted(self.store.snapshot())
            if name.startswith("balance_")
        }


def build_banking() -> BankingScenario:
    """Execute the attacked banking day.

    Sequence of events:

    1. the attacker forges ``transfer alice → mallory, 80`` (stolen
       credentials — the entire run is malicious);
    2. Alice's legitimate ``transfer alice → bob, 50`` arrives and is
       *rejected*: the forged transfer left her only 20;
    3. Carol's independent ``transfer carol → dave, 10`` commits fine.

    After :meth:`BankingScenario.heal_now`, the forged transfer is gone,
    Alice's balance is restored, and her transfer to Bob is re-decided
    and *approved*.
    """
    initial = {
        "balance_alice": 100,
        "balance_bob": 10,
        "balance_carol": 40,
        "balance_dave": 5,
        "balance_mallory": 0,
        "ledger": 0,
        "req_forged": 80,
        "req_ab": 50,
        "req_cd": 10,
        "ok_forged": 0, "ok_ab": 0, "ok_cd": 0,
        "rejected_forged": 0, "rejected_ab": 0, "rejected_cd": 0,
    }
    store = DataStore(initial)
    log = SystemLog()
    engine = Engine(store, log)

    forged = engine.new_run(
        transfer_spec("forged", "alice", "mallory"), "transfer_forged"
    )
    legit_ab = engine.new_run(
        transfer_spec("ab", "alice", "bob"), "transfer_ab"
    )
    legit_cd = engine.new_run(
        transfer_spec("cd", "carol", "dave"), "transfer_cd"
    )
    # The theft commits first, then the two legitimate transfers.
    engine.run_to_completion(forged)
    engine.run_to_completion(legit_ab)
    engine.run_to_completion(legit_cd)

    return BankingScenario(
        store=store,
        log=log,
        specs_by_instance=engine.specs_by_instance,
        initial_data=initial,
        forged_run="transfer_forged",
    )
