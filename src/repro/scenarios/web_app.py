"""A web-application intrusion recovery scenario (Ancora-style).

Ancora (PAPERS.md) recovers *web applications* from intrusions at
request granularity: each HTTP request is a small workflow over session
state and shared application data, and recovery must race live traffic
— legitimate requests keep arriving and committing between the
intrusion, its detection, and the repair.

This scenario models a small web shop:

- **session objects** ``sess_<user>`` hold each user's cart quantity —
  the per-user state an attacker hijacks;
- **shared objects** ``inventory`` and ``revenue`` are the application
  data through which a hijacked session damages other users;
- **request-level tasks**: an ``add-to-cart`` request is a one-task
  workflow; a ``checkout`` request is a validate → (reserve → bill →
  clear) | reject workflow whose branch depends on current stock.

The attack: a session hijack rewrites Bob's add-to-cart request from 1
unit to 90 (forged cookie, attacker-controlled quantity).  Bob's
checkout then drains the inventory, and Carol's perfectly legitimate
checkout is *rejected* for lack of stock — the Figure 1
branch-flipping phenomenon at the web tier.  Live traffic continues
after detection (Dave shops while the alert is pending), so the healed
history must keep those commits while undoing the hijack, re-deciding
Carol's rejection into an approval, and re-pricing everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.obs.events import EventBus
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = [
    "WebAppScenario",
    "build_web_app",
    "cart_add_spec",
    "checkout_spec",
]

#: Unit price used by the billing task.
PRICE = 3


def cart_add_spec(name: str, user: str, qty: int) -> WorkflowSpec:
    """An add-to-cart request: one task updating the user's session.

    The response payload (``echo_<name>``) carries the new cart size —
    a per-request output so every request leaves an auditable trace.
    """
    sess = f"sess_{user}"
    echo = f"echo_{name}"
    return (
        workflow(f"add_{name}")
        .task("add", reads=[sess], writes=[sess, echo],
              compute=lambda d: {
                  sess: d[sess] + qty,
                  echo: d[sess] + qty,
              })
        .build()
    )


def checkout_spec(name: str, user: str) -> WorkflowSpec:
    """A checkout request: validate stock, then reserve → bill → clear
    the session, or reject when the cart exceeds the inventory."""
    sess = f"sess_{user}"
    ok = f"ok_{name}"
    receipt = f"receipt_{name}"
    rejected = f"rejected_{name}"
    return (
        workflow(f"checkout_{name}")
        .task("validate", reads=[sess, "inventory"], writes=[ok],
              compute=lambda d: {
                  ok: 1 if 0 < d[sess] <= d["inventory"] else 0
              },
              choose=lambda d, _ok=ok: "reserve" if d[_ok] else "reject")
        .task("reserve", reads=[sess, "inventory"], writes=["inventory"],
              compute=lambda d: {"inventory": d["inventory"] - d[sess]})
        .task("bill", reads=[sess, "revenue"],
              writes=["revenue", receipt],
              compute=lambda d: {
                  "revenue": d["revenue"] + d[sess] * PRICE,
                  receipt: d[sess] * PRICE,
              })
        .task("clear", reads=[], writes=[sess],
              compute=lambda d: {sess: 0})
        .task("reject", reads=[], writes=[rejected],
              compute=lambda d: {rejected: 1})
        .edge("validate", "reserve").edge("reserve", "bill")
        .edge("bill", "clear")
        .edge("validate", "reject")
        .build()
    )


@dataclass
class WebAppScenario:
    """The attacked web shop, ready to heal."""

    store: DataStore
    log: SystemLog
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, int]
    hijacked_uid: str
    heal: Optional[HealReport] = None
    audit: Optional[CorrectnessReport] = None

    def heal_now(
        self,
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> HealReport:
        """Undo the hijacked request and repair its collateral damage —
        while keeping every legitimate request that raced it.  With a
        ``bus`` (and ``clock``), the healer publishes its typed
        undo/redo events for observers such as the conformance
        monitor."""
        healer = Healer(self.store, self.log, self.specs_by_instance,
                        bus=bus, clock=clock)
        self.record_heal(healer.heal([self.hijacked_uid]))
        assert self.heal is not None
        return self.heal

    def record_heal(self, report: HealReport) -> CorrectnessReport:
        """Adopt a heal report produced by an external driver (e.g. the
        instrumented Figure 2 pipeline) and audit the healed history."""
        self.heal = report
        self.audit = audit_strict_correctness(
            self.specs_by_instance,
            self.initial_data,
            report.final_history,
            self.store.snapshot(),
        )
        return self.audit

    def summary(self) -> str:
        """One-line view of the shop's shared state and sessions."""
        sessions = " ".join(
            f"{name[5:]}={self.store.read(name)}"
            for name in sorted(self.store.snapshot())
            if name.startswith("sess_")
        )
        return (
            f"inventory={self.store.read('inventory')} "
            f"revenue={self.store.read('revenue')} carts: {sessions}"
        )


def build_web_app() -> WebAppScenario:
    """Execute the attacked shopping day, request by request.

    1. Alice adds 2 units and checks out (inventory 98, revenue 6).
    2. Bob adds 1 unit — but the request is **hijacked**: the forged
       quantity 90 lands in his session.
    3. Bob's checkout drains the inventory to 8 (revenue jumps 270).
    4. Carol adds 10 and checks out — *rejected*: only 8 left.  Her
       branch decision was flipped by the attack.
    5. The IDS flags Bob's add-to-cart; live traffic races the alert:
       Dave adds 1 and checks out before recovery runs.

    Healing undoes the hijacked add, re-runs Bob's requests with his
    genuine quantity, re-decides Carol's checkout into an approval, and
    keeps Alice's and Dave's untouched commits.
    """
    initial = {
        "inventory": 100,
        "revenue": 0,
        "sess_alice": 0,
        "sess_bob": 0,
        "sess_carol": 0,
        "sess_dave": 0,
    }
    for name in ("a1", "b1", "c1", "d1"):
        initial[f"echo_{name}"] = 0
    for name in ("a2", "b2", "c2", "d2"):
        initial[f"ok_{name}"] = 0
        initial[f"receipt_{name}"] = 0
        initial[f"rejected_{name}"] = 0
    store = DataStore(initial)
    log = SystemLog()
    engine = Engine(store, log)

    hijack = AttackCampaign().corrupt_task(
        "add", workflow_instance="add_b1",
        label="session hijack: forged quantity",
        **{"sess_bob": 90, "echo_b1": 90},
    )

    requests = [
        (cart_add_spec("a1", "alice", 2), "add_a1"),
        (checkout_spec("a2", "alice"), "checkout_a2"),
        (cart_add_spec("b1", "bob", 1), "add_b1"),       # hijacked
        (checkout_spec("b2", "bob"), "checkout_b2"),
        (cart_add_spec("c1", "carol", 10), "add_c1"),
        (checkout_spec("c2", "carol"), "checkout_c2"),   # flipped
        # Detection happens here; these requests race the recovery.
        (cart_add_spec("d1", "dave", 1), "add_d1"),
        (checkout_spec("d2", "dave"), "checkout_d2"),
    ]
    for spec, instance in requests:
        run = engine.new_run(spec, instance)
        engine.run_to_completion(run, tamper=hijack)

    return WebAppScenario(
        store=store,
        log=log,
        specs_by_instance=engine.specs_by_instance,
        initial_data=initial,
        hijacked_uid=hijack.malicious_uids[0],
    )
