"""Seeded generators for workflow specs and attack campaigns.

The four built-in scenarios are static; every recovery-correctness
guarantee in the repo deserves to be exercised on *arbitrary* inputs.
This module promotes the hypothesis strategies that grew inside the
test tree into a first-class library with two faces:

- **seeded generation** (no hypothesis required): deterministic
  functions from an integer seed to a workload
  (:func:`generate_workload`), an attacked case
  (:func:`random_attacked_case`) or a whole multi-stage campaign
  (:func:`generate_campaign`).  The fuzzing harness
  (:mod:`repro.scenarios.fuzz`) and the ``repro-workflow fuzz`` CLI
  verb build on these, so they work in environments without the test
  toolchain;
- **hypothesis strategies** (exported only when hypothesis is
  importable): the DAG / birth-death / segmented-commit strategies the
  property tests share, plus strategies over the campaign DSL itself.

The campaign DSL (:class:`SpecShape`, :class:`AttackStep`,
:class:`CampaignSpec`) is a small, fully serializable description of an
adversarial episode: the shape of the random workflows, one or more
attack *stages* (each a burst of steps healed as one batch, the paper's
operating discipline), per-step kinds (data corruption, forged runs,
false-alarm floods) and *triggers* (at ingest, or timed against the
SCAN / RECOVERY states of Section IV-C), and an optional multi-tenant
spread with correlated cross-tenant seeds.  Serialized campaigns are
the fuzzer's corpus format — a counterexample written by the harness
replays bit-identically from its JSON file.

Also here: the seeded *plan mutations* (dropped undo, extra redo,
reversed Theorem 3 edge) used both by the verifier sensitivity tests
and by the harness's fault-injection mode, which proves end to end
that a buggy analyzer cannot slip a wrong plan past the oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.analyzer import RecoveryAnalyzer
from repro.core.plan import RecoveryPlan
from repro.errors import GenerationError
from repro.sim.workload import Workload, WorkloadConfig, WorkloadGenerator
from repro.workflow.log import SystemLog
from repro.workflow.precedence import PartialOrder
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "CAMPAIGN_FORMAT",
    "MODULUS",
    "stable_seed",
    "SpecShape",
    "AttackStep",
    "CampaignSpec",
    "generate_workload",
    "generate_campaign",
    "random_attacked_case",
    "MUTATIONS",
    "mutate_plan",
]

#: Corpus / wire format tag for serialized campaigns.
CAMPAIGN_FORMAT = "repro-campaign/1"

#: Task arithmetic modulus shared with the workload generator default.
MODULUS = 10_007

#: Attack-step kinds understood by the DSL.
STEP_KINDS = ("corrupt", "forge-run", "false-alarm")

#: When a step fires: with the stage's normal traffic, or timed against
#: the SCAN / RECOVERY states (Section IV-C) of the stage's recovery.
STEP_TRIGGERS = ("ingest", "scan", "recovery")


def stable_seed(*parts: int) -> int:
    """Mix integers into one 31-bit seed, stable across runs/platforms."""
    acc = 0x811C_9DC5
    for part in parts:
        acc = (acc * 1_000_003 + int(part) + 0x9E37) % (2**31 - 1)
    return acc


# --------------------------------------------------------------------------
# The campaign DSL
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecShape:
    """Shape of the random workflows a campaign runs (Section III
    structural constraints: DAGs of tasks with read/write sets,
    alternative branches that rejoin, data-bounded loops)."""

    n_workflows: int = 2
    tasks_per_workflow: int = 6
    branch_probability: float = 0.3
    loop_probability: float = 0.0
    n_shared_objects: int = 2
    max_extra_reads: int = 2
    shared_writes: bool = True

    def to_config(self) -> WorkloadConfig:
        """This shape as a workload-generator configuration."""
        return WorkloadConfig(
            n_workflows=self.n_workflows,
            tasks_per_workflow=self.tasks_per_workflow,
            branch_probability=self.branch_probability,
            loop_probability=self.loop_probability,
            n_shared_objects=self.n_shared_objects,
            max_extra_reads=self.max_extra_reads,
            value_modulus=MODULUS,
            shared_writes=self.shared_writes,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_workflows": self.n_workflows,
            "tasks_per_workflow": self.tasks_per_workflow,
            "branch_probability": self.branch_probability,
            "loop_probability": self.loop_probability,
            "n_shared_objects": self.n_shared_objects,
            "max_extra_reads": self.max_extra_reads,
            "shared_writes": self.shared_writes,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SpecShape":
        try:
            return cls(
                n_workflows=int(doc.get("n_workflows", 2)),
                tasks_per_workflow=int(doc.get("tasks_per_workflow", 6)),
                branch_probability=float(doc.get("branch_probability", 0.3)),
                loop_probability=float(doc.get("loop_probability", 0.0)),
                n_shared_objects=int(doc.get("n_shared_objects", 2)),
                max_extra_reads=int(doc.get("max_extra_reads", 2)),
                shared_writes=bool(doc.get("shared_writes", True)),
            )
        except (TypeError, ValueError) as exc:
            raise GenerationError(f"invalid spec shape: {exc}") from None


@dataclass(frozen=True)
class AttackStep:
    """One step of an attack stage.

    Attributes
    ----------
    kind:
        ``corrupt`` shifts every output of one task (picked by
        ``target`` mod the stage's task count) by ``delta`` mod the
        arithmetic modulus; ``forge-run`` marks one whole workflow run
        attacker-forged; ``false-alarm`` submits ``count`` IDS alerts
        naming *clean* committed instances.
    target:
        Deterministic victim selector (reduced modulo the number of
        eligible victims, so any integer is valid).
    delta:
        Corruption offset (``corrupt`` only).
    count:
        Alert count (``false-alarm`` only — the flood size).
    trigger:
        ``ingest`` fires with the stage's traffic; ``scan`` /
        ``recovery`` fire while the system is mid-SCAN / right as
        RECOVERY begins — the races of Section IV-C.
    """

    kind: str = "corrupt"
    target: int = 0
    delta: int = 4_242
    count: int = 1
    trigger: str = "ingest"

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise GenerationError(
                f"unknown attack-step kind {self.kind!r}; "
                f"expected one of {', '.join(STEP_KINDS)}"
            )
        if self.trigger not in STEP_TRIGGERS:
            raise GenerationError(
                f"unknown attack-step trigger {self.trigger!r}; "
                f"expected one of {', '.join(STEP_TRIGGERS)}"
            )
        if self.count < 1:
            raise GenerationError("attack-step count must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "delta": self.delta,
            "count": self.count,
            "trigger": self.trigger,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AttackStep":
        try:
            return cls(
                kind=str(doc.get("kind", "corrupt")),
                target=int(doc.get("target", 0)),
                delta=int(doc.get("delta", 4_242)),
                count=int(doc.get("count", 1)),
                trigger=str(doc.get("trigger", "ingest")),
            )
        except (TypeError, ValueError) as exc:
            raise GenerationError(f"invalid attack step: {exc}") from None


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, serializable adversarial episode.

    ``stages`` is a tuple of attack stages; each stage runs a fresh
    workload of ``shape``-d workflows, fires its steps, and is healed
    as one batch before the next stage begins (heals roll the epoch,
    so later stages attack the previously-healed world).  With
    ``tenants > 1`` the campaign instead runs through the fleet
    control plane; ``correlated`` makes every tenant draw the same
    attack stream (a coordinated cross-tenant campaign) instead of
    independent per-tenant streams.
    """

    seed: int
    shape: SpecShape = field(default_factory=SpecShape)
    stages: Tuple[Tuple[AttackStep, ...], ...] = ((AttackStep(),),)
    tenants: int = 1
    correlated: bool = False
    duration: float = 8.0
    arrival_rate: float = 0.25
    alert_buffer: int = 8
    recovery_buffer: int = 8
    label: str = ""

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise GenerationError("campaign needs at least one tenant")
        if not self.stages or any(not stage for stage in self.stages):
            raise GenerationError(
                "campaign needs at least one stage, each with at least "
                "one step"
            )
        if self.alert_buffer < 1 or self.recovery_buffer < 1:
            raise GenerationError("queue buffers must be >= 1")
        if self.arrival_rate <= 0:
            raise GenerationError("arrival rate must be positive")

    @property
    def steps(self) -> Tuple[AttackStep, ...]:
        """All steps across all stages, in firing order."""
        return tuple(step for stage in self.stages for step in stage)

    @property
    def calibrated(self) -> bool:
        """Does the episode match the CTMC the health monitor is
        calibrated against?  Poisson ingest-only arrivals, no floods,
        no state-timed injections, and bursts that fit the queues —
        only then is a BREACH verdict an oracle violation."""
        if self.tenants > 1:
            return False
        for stage in self.stages:
            load = 0
            for step in stage:
                if step.trigger != "ingest":
                    return False
                if step.kind == "false-alarm":
                    return False
                load += step.count
            if load >= min(self.alert_buffer, self.recovery_buffer):
                return False
        return True

    # -- serialization (the corpus format) --------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CAMPAIGN_FORMAT,
            "seed": self.seed,
            "shape": self.shape.to_dict(),
            "stages": [
                [step.to_dict() for step in stage]
                for stage in self.stages
            ],
            "tenants": self.tenants,
            "correlated": self.correlated,
            "duration": self.duration,
            "arrival_rate": self.arrival_rate,
            "alert_buffer": self.alert_buffer,
            "recovery_buffer": self.recovery_buffer,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CampaignSpec":
        fmt = doc.get("format", CAMPAIGN_FORMAT)
        if fmt != CAMPAIGN_FORMAT:
            raise GenerationError(
                f"unsupported campaign format {fmt!r} "
                f"(expected {CAMPAIGN_FORMAT!r})"
            )
        if "seed" not in doc:
            raise GenerationError("campaign document is missing 'seed'")
        stages_doc = doc.get("stages", [[{}]])
        if not isinstance(stages_doc, (list, tuple)):
            raise GenerationError("campaign 'stages' must be a list")
        try:
            return cls(
                seed=int(doc["seed"]),
                shape=SpecShape.from_dict(doc.get("shape", {})),
                stages=tuple(
                    tuple(AttackStep.from_dict(s) for s in stage)
                    for stage in stages_doc
                ),
                tenants=int(doc.get("tenants", 1)),
                correlated=bool(doc.get("correlated", False)),
                duration=float(doc.get("duration", 8.0)),
                arrival_rate=float(doc.get("arrival_rate", 0.25)),
                alert_buffer=int(doc.get("alert_buffer", 8)),
                recovery_buffer=int(doc.get("recovery_buffer", 8)),
                label=str(doc.get("label", "")),
            )
        except (TypeError, ValueError) as exc:
            raise GenerationError(f"invalid campaign: {exc}") from None

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        import json

        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise GenerationError(
                f"campaign file is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise GenerationError("campaign document must be an object")
        return cls.from_dict(doc)


# --------------------------------------------------------------------------
# Seeded generation (no hypothesis required)
# --------------------------------------------------------------------------


def generate_workload(
    seed: int,
    shape: Optional[SpecShape] = None,
    prefix: str = "W",
) -> Workload:
    """The workload a ``(seed, shape)`` pair denotes — bit-identical
    across calls.  ``prefix`` namespaces the workflow ids so several
    generated workloads can share one epoch manager."""
    shape = shape if shape is not None else SpecShape()
    gen = WorkloadGenerator(shape.to_config(), random.Random(int(seed)))
    return gen.generate(prefix=prefix)


def random_attacked_case(
    seed: int,
    n_attacks: int = 1,
    branchiness: float = 0.3,
    loopiness: float = 0.0,
    n_workflows: int = 3,
    tasks_per_workflow: int = 8,
):
    """``(log, specs_by_instance, plan)`` for a random attacked
    workload, analyzed but *not* healed — the shared fixture of the
    verifier property tests.  ``None`` when no attack landed on a
    committed instance (e.g. the corrupted task was on an unexecuted
    branch arm)."""
    from repro.sim.recovery_sim import run_pipeline

    gen = WorkloadGenerator(
        WorkloadConfig(
            n_workflows=n_workflows,
            tasks_per_workflow=tasks_per_workflow,
            branch_probability=branchiness,
            loop_probability=loopiness,
        ),
        random.Random(seed),
    )
    workload = gen.generate()
    campaign = gen.pick_attacks(workload, n_attacks=n_attacks)
    result = run_pipeline(workload, campaign, seed=seed, heal=False)
    alerts = [u for u in result.malicious_ground_truth if u in result.log]
    if not alerts:
        return None
    plan = RecoveryAnalyzer(
        result.log, result.specs_by_instance
    ).analyze(alerts)
    return result.log, result.specs_by_instance, plan


#: Arrival rates / buffer sizes drawn by the campaign generator — a
#: small palette keeps the health monitor's steady-state solves cached
#: across hundreds of campaigns.
_ARRIVAL_RATES = (0.15, 0.25)
_BUFFERS = (6, 8)


def generate_campaign(
    seed: int,
    index: int = 0,
    multi_tenant_every: int = 8,
) -> CampaignSpec:
    """The ``index``-th campaign of the fuzzer's ``seed`` stream.

    Shapes, stage counts, step kinds and triggers are drawn from a
    seeded RNG; every ``multi_tenant_every``-th campaign is a fleet
    campaign (2–4 tenants, half of them correlated).  Pure function of
    ``(seed, index, multi_tenant_every)``.
    """
    rng = random.Random(stable_seed(seed, index))
    shape = SpecShape(
        n_workflows=rng.randint(1, 3),
        tasks_per_workflow=rng.randint(3, 7),
        branch_probability=rng.choice((0.0, 0.3, 0.7)),
        loop_probability=rng.choice((0.0, 0.0, 0.4)),
        n_shared_objects=rng.randint(1, 3),
        shared_writes=rng.random() < 0.8,
    )
    alert_buffer = rng.choice(_BUFFERS)
    recovery_buffer = rng.choice(_BUFFERS)
    arrival_rate = rng.choice(_ARRIVAL_RATES)

    fleet = multi_tenant_every > 0 and index % multi_tenant_every == (
        multi_tenant_every - 1
    )
    if fleet:
        return CampaignSpec(
            seed=stable_seed(seed, index, 1),
            shape=shape,
            stages=((AttackStep(),),),  # fleet attacks are profile-drawn
            tenants=rng.randint(2, 4),
            correlated=rng.random() < 0.5,
            duration=rng.choice((6.0, 10.0)),
            arrival_rate=arrival_rate,
            alert_buffer=alert_buffer,
            recovery_buffer=recovery_buffer,
            label=f"fleet-{index}",
        )

    n_stages = rng.randint(1, 3)
    stages: List[Tuple[AttackStep, ...]] = []
    for _ in range(n_stages):
        steps: List[AttackStep] = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.55:
                kind, trigger = "corrupt", "ingest"
            elif roll < 0.65:
                kind, trigger = "forge-run", "ingest"
            elif roll < 0.80:
                kind, trigger = "false-alarm", "ingest"
            elif roll < 0.92:
                kind, trigger = "corrupt", "scan"
            else:
                kind, trigger = "corrupt", "recovery"
            steps.append(AttackStep(
                kind=kind,
                target=rng.randint(0, 10_000),
                delta=rng.choice((1, 4_242, 9_001)),
                count=rng.randint(2, 5) if kind == "false-alarm" else 1,
                trigger=trigger,
            ))
        stages.append(tuple(steps))
    return CampaignSpec(
        seed=stable_seed(seed, index, 1),
        shape=shape,
        stages=tuple(stages),
        arrival_rate=arrival_rate,
        alert_buffer=alert_buffer,
        recovery_buffer=recovery_buffer,
        label=f"single-{index}",
    )


# --------------------------------------------------------------------------
# Plan mutations (verifier sensitivity / fault injection)
# --------------------------------------------------------------------------

#: Seeded analyzer faults the verifier must catch.
MUTATIONS = ("drop-undo", "extra-redo", "reverse-edge")


def mutate_plan(
    plan: RecoveryPlan, kind: str, log: SystemLog
) -> Optional[RecoveryPlan]:
    """Apply one seeded fault to an analyzer plan.

    Returns the mutated plan, or ``None`` when the mutation is not
    applicable (nothing to drop / no clean instance to inject / no
    redo edge to flip) — callers skip inapplicable cases rather than
    reporting vacuous catches.
    """
    if kind == "drop-undo":
        ua = plan.undo_analysis
        if not ua.definite:
            return None
        victim = sorted(ua.definite)[-1]
        return replace(plan, undo_analysis=replace(
            ua,
            malicious=ua.malicious - {victim},
            infected=ua.infected - {victim},
        ))
    if kind == "extra-redo":
        outsiders = sorted(
            {r.uid for r in log.normal_records()}
            - plan.undo_analysis.definite
        )
        if not outsiders:
            return None
        ra = plan.redo_analysis
        return replace(plan, redo_analysis=replace(
            ra, definite=ra.definite | {outsiders[0]}
        ))
    if kind == "reverse-edge":
        redos = sorted(plan.redo_analysis.definite)
        if not redos:
            return None
        uid = redos[0]
        target = (Action.undo(uid), Action.redo(uid))
        order: PartialOrder[Action] = PartialOrder()
        for element in plan.order.elements():
            order.add_element(element)
        for before, after in plan.order.edges():
            if (before, after) == target:
                order.add_edge(after, before)
            else:
                order.add_edge(before, after)
        return replace(plan, order=order)
    raise GenerationError(
        f"unknown plan mutation {kind!r}; expected one of "
        f"{', '.join(MUTATIONS)}"
    )


# --------------------------------------------------------------------------
# Hypothesis strategies (exported only when hypothesis is available)
# --------------------------------------------------------------------------

try:  # pragma: no cover - presence depends on the environment
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover
    st = None  # type: ignore[assignment]

if st is not None:
    __all__ += [
        "random_dag_edges",
        "birth_death",
        "segmented_commits",
        "campaign_specs",
        "lambdas",
        "service_rates",
        "buffers",
        "CASE",
    ]

    #: Rates within a couple of orders of magnitude of the paper's
    #: defaults: wide enough to explore, narrow enough that the chains
    #: stay well conditioned and the solves stay fast.
    lambdas = st.floats(min_value=0.1, max_value=20.0,
                        allow_nan=False, allow_infinity=False)
    service_rates = st.floats(min_value=0.5, max_value=50.0,
                              allow_nan=False, allow_infinity=False)
    buffers = st.integers(min_value=1, max_value=12)

    #: Keyword strategies for a random attacked case (see
    #: :func:`random_attacked_case`).
    CASE = dict(
        seed=st.integers(min_value=0, max_value=10_000),
        n_attacks=st.integers(min_value=1, max_value=3),
        branchiness=st.sampled_from([0.0, 0.3, 0.7]),
        loopiness=st.sampled_from([0.0, 0.4]),
    )

    @st.composite
    def random_dag_edges(draw):
        """``(nodes, edges)`` of a random DAG over ``v0..vn`` with
        edges only from lower to higher index (acyclic by
        construction)."""
        n = draw(st.integers(min_value=2, max_value=18))
        edges = set()
        for j in range(1, n):
            for i in range(j):
                if draw(st.booleans()):
                    edges.add((f"v{i}", f"v{j}"))
        return [f"v{i}" for i in range(n)], edges

    @st.composite
    def birth_death(draw):
        """``(chain, lams, mus)`` for a random birth-death CTMC."""
        from repro.markov.ctmc import CTMC

        n = draw(st.integers(min_value=2, max_value=12))
        lams = [
            draw(st.floats(min_value=0.1, max_value=10.0))
            for _ in range(n - 1)
        ]
        mus = [
            draw(st.floats(min_value=0.1, max_value=10.0))
            for _ in range(n - 1)
        ]
        rates = {}
        for i in range(n - 1):
            rates[(i, i + 1)] = lams[i]
            rates[(i + 1, i)] = mus[i]
        return CTMC.from_rates(list(range(n)), rates), lams, mus

    @st.composite
    def segmented_commits(draw):
        """A random distributed execution: per-commit node choice and a
        random (possibly empty) set of nodes notified afterwards."""
        nodes = ["n0", "n1", "n2"]
        n_commits = draw(st.integers(min_value=1, max_value=25))
        plan = []
        for i in range(n_commits):
            node = draw(st.sampled_from(nodes))
            notify = [
                other for other in nodes
                if other != node and draw(st.booleans())
            ]
            plan.append((node, notify))
        return nodes, plan

    @st.composite
    def campaign_specs(draw):
        """Arbitrary campaigns via the seeded generator — one draw per
        point of its parameter space, so shrinking walks toward small
        seeds and single-tenant campaigns."""
        seed = draw(st.integers(min_value=0, max_value=10_000))
        index = draw(st.integers(min_value=0, max_value=63))
        return generate_campaign(seed, index=index)
