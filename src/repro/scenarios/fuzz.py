"""Oracle-checked fuzzing over generated attack campaigns.

The generators in :mod:`repro.scenarios.generate` describe adversarial
episodes; this module *executes* them against the real system
(:class:`~repro.system.SelfHealingSystem` for single-tenant campaigns,
:class:`~repro.fleet.control.FleetControlPlane` for multi-tenant ones)
and checks every run against a composite oracle:

- **plan-verifier** (O1): every plan the analyzer emits must pass the
  independent checker :func:`repro.lint.verify_plan` — the N-version
  cross-check of the Theorem 1–3 analyses;
- **audit** (O2): after the last stage, the accumulated healed history
  must satisfy the Definition 2 strict-correctness audit
  (:meth:`~repro.core.epochs.EpochManager.audit`);
- **determinism** (O3): running the episode twice must produce
  bit-identical flight logs (the replay contract every debugging and
  conformance tool in the repo depends on);
- **health** (O4): on *calibrated* campaigns — Poisson ingest-only
  arrivals that fit the queues — the CTMC conformance monitor must not
  reach BREACH (the model and the implementation agree);
- **exception**: no unexpected exception escapes an episode.

Counterexamples are shrunk greedily over the campaign DSL and written
as replayable corpus files (plain campaign JSON plus a ``found_by``
annotation).  The *fault-injection* mode mutates every analyzer plan
with one of the seeded :data:`~repro.scenarios.generate.MUTATIONS` and
demands the oracle catch it — an end-to-end sensitivity proof that a
buggy analyzer cannot slip a wrong plan past the verifier.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.analyzer import RecoveryAnalyzer
from repro.core.epochs import EpochManager
from repro.errors import GenerationError
from repro.fleet.control import FleetConfig, FleetControlPlane, FleetReport
from repro.fleet.workload import GeneratedTenantProfile
from repro.ids.alerts import Alert
from repro.ids.attacks import AttackCampaign
from repro.lint.plan_verifier import verify_plan
from repro.obs.events import EventBus
from repro.obs.health import HealthMonitor, ModelPrediction, SloState
from repro.obs.recorder import FlightRecorder, read_flight_log
from repro.obs.tracing import ManualClock
from repro.scenarios.generate import (
    MODULUS,
    MUTATIONS,
    CampaignSpec,
    SpecShape,
    generate_campaign,
    generate_workload,
    mutate_plan,
    stable_seed,
)
from repro.sim.fullstack import FullStackConfig
from repro.sim.workload import Workload
from repro.system import SelfHealingSystem, SystemState
from repro.workflow.data import DataStore

__all__ = [
    "ORACLES",
    "Violation",
    "CampaignOutcome",
    "FuzzReport",
    "run_campaign",
    "inject_mutation",
    "shrink_campaign",
    "campaign_filename",
    "write_counterexample",
    "load_campaign",
    "replay_corpus",
    "fuzz",
]

#: Oracle tags a violation can carry.
ORACLES = (
    "plan-verifier", "audit", "determinism", "health", "exception",
    "accounting", "conformance",
)

#: Queueing service times shared with the fleet profiles, so the small
#: palette of campaign (λ, buffer) draws maps to a handful of cached
#: CTMC solves.
_SCAN_TIME = 1.0 / 15.0
_UNIT_TIME = 1.0 / 20.0


@dataclass(frozen=True)
class Violation:
    """One oracle violation observed while running a campaign."""

    oracle: str
    detail: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass(frozen=True)
class CampaignOutcome:
    """What happened when one campaign ran through the oracle."""

    campaign: CampaignSpec
    violations: Tuple[Violation, ...] = ()
    plans_checked: int = 0
    heals: int = 0
    alerts: int = 0
    mutated_plans: int = 0
    fleet: bool = False
    verdict: str = ""
    #: LTLf strict-correctness violations the runtime monitor raised
    #: (summed across tenants for fleet campaigns).
    conformance_violations: int = 0

    @property
    def ok(self) -> bool:
        """Did the campaign pass every oracle?"""
        return not self.violations


#: Cached steady-state solves, keyed by the (hashable) queueing config.
_PREDICTIONS: Dict[FullStackConfig, ModelPrediction] = {}


def _prediction(config: FullStackConfig) -> ModelPrediction:
    prediction = _PREDICTIONS.get(config)
    if prediction is None:
        prediction = ModelPrediction.from_stg(config.stg())
        _PREDICTIONS[config] = prediction
    return prediction


# --------------------------------------------------------------------------
# Fault injection
# --------------------------------------------------------------------------


@contextmanager
def inject_mutation(
    kind: Optional[str], counter: Optional[Dict[str, int]] = None
) -> Iterator[Dict[str, int]]:
    """Patch the analyzer so every emitted plan carries one seeded
    fault (:func:`~repro.scenarios.generate.mutate_plan`).

    ``counter["applied"]`` counts the plans actually modified —
    inapplicable mutations (nothing to drop / flip) leave the plan
    intact and are not counted, so callers can distinguish a genuine
    oracle miss from a vacuous one.  ``kind=None`` is a no-op.
    """
    stats = counter if counter is not None else {"applied": 0}
    stats.setdefault("applied", 0)
    if kind is None:
        yield stats
        return
    if kind not in MUTATIONS:
        raise GenerationError(
            f"unknown plan mutation {kind!r}; expected one of "
            f"{', '.join(MUTATIONS)}"
        )
    original = RecoveryAnalyzer.analyze

    def analyze(self, alerts, outstanding=()):
        plan = original(self, alerts, outstanding=outstanding)
        mutated = mutate_plan(plan, kind, self._log)
        if mutated is None:
            return plan
        stats["applied"] += 1
        return mutated

    RecoveryAnalyzer.analyze = analyze  # type: ignore[method-assign]
    try:
        yield stats
    finally:
        RecoveryAnalyzer.analyze = original  # type: ignore[method-assign]


# --------------------------------------------------------------------------
# Single-tenant episodes
# --------------------------------------------------------------------------


@dataclass
class _EpisodeResult:
    violations: List[Violation]
    plans_checked: int
    heals: int
    alerts: int
    flight_text: str
    verdict: SloState
    conformance_violations: int = 0


def _flat_tasks(workload: Workload) -> List[Tuple[str, str]]:
    """``(workflow_id, task_id)`` pairs in deterministic spec order."""
    return [
        (spec.workflow_id, task_id)
        for spec in workload.specs
        for task_id in spec.tasks
    ]


def _arm_step(
    campaign: AttackCampaign,
    step,
    workload: Workload,
) -> None:
    """Install one corrupt / forge-run step on a workload's campaign."""
    if step.kind == "corrupt":
        tasks = _flat_tasks(workload)
        wf_id, task_id = tasks[step.target % len(tasks)]
        campaign.shift_outputs(
            task_id,
            delta=step.delta,
            modulus=MODULUS,
            workflow_instance=f"{wf_id}.run",
            label=f"corrupt {wf_id}:{task_id}",
        )
    elif step.kind == "forge-run":
        spec = workload.specs[step.target % len(workload.specs)]
        campaign.forge_run(f"{spec.workflow_id}.run")


def _run_single_episode(campaign: CampaignSpec) -> _EpisodeResult:
    """One deterministic pass of a single-tenant campaign.

    Stages run in sequence; each stage executes a fresh generated
    workload under its attack steps, feeds the IDS alerts through the
    bounded queues at Poisson times, and drives the Figure 2 loop until
    quiescence — checking each emitted plan against the independent
    verifier, resolving deadlock-by-overflow by draining lost alerts to
    the administrator backlog (Section IV-D), and batch-healing so the
    epoch rolls before the next stage.
    """
    config = FullStackConfig(
        arrival_rate=campaign.arrival_rate,
        scan_time=_SCAN_TIME,
        unit_recovery_time=_UNIT_TIME,
        alert_buffer=campaign.alert_buffer,
        recovery_buffer=campaign.recovery_buffer,
    )
    clock = ManualClock(0.0)
    bus = EventBus()
    flight = FlightRecorder(
        label=campaign.label or "campaign",
        meta={"seed": campaign.seed, "stages": len(campaign.stages),
              "conformance_finalized": True},
    )
    flight.attach(bus)
    monitor = HealthMonitor(_prediction(config)).attach(bus)

    # Generation is pure, so building inputs inside the episode keeps
    # the two determinism-oracle passes trivially identical.
    stage_workloads = [
        generate_workload(
            stable_seed(campaign.seed, 101 + i), campaign.shape,
            prefix=f"s{i}w",
        )
        for i in range(len(campaign.stages))
    ]
    # Timed (scan/recovery-triggered) corruption arrives as small
    # straight-line bursts: no branches, private objects only, so the
    # burst is committed whole and cannot write-conflict mid-recovery.
    mini_shape = SpecShape(
        n_workflows=1,
        tasks_per_workflow=3,
        branch_probability=0.0,
        loop_probability=0.0,
        n_shared_objects=campaign.shape.n_shared_objects,
        shared_writes=False,
    )
    minis: Dict[Tuple[int, int], Workload] = {}
    for i, stage in enumerate(campaign.stages):
        for j, step in enumerate(stage):
            if step.trigger != "ingest" and step.kind != "false-alarm":
                minis[(i, j)] = generate_workload(
                    stable_seed(campaign.seed, 500 + 31 * i + j),
                    mini_shape,
                    prefix=f"s{i}x{j}w",
                )
    initial: Dict[str, int] = {}
    for workload in stage_workloads:
        initial.update(workload.initial_data)
    for workload in minis.values():
        initial.update(workload.initial_data)

    manager = EpochManager(DataStore(dict(initial)), initial)
    system = SelfHealingSystem(
        manager=manager,
        alert_buffer=campaign.alert_buffer,
        recovery_buffer=campaign.recovery_buffer,
        bus=bus,
        clock=clock,
    )
    rng = random.Random(stable_seed(campaign.seed, 7))
    violations: List[Violation] = []
    plans_checked = 0
    heals = 0
    alerts = 0
    backlog: List[str] = []
    t = 0.0

    def submit(uid: str, genuine: bool = True, timed: bool = False) -> None:
        nonlocal t, alerts
        if not timed:
            t += rng.expovariate(campaign.arrival_rate)
            clock.set(max(t, clock.now))
        alerts += 1
        if not system.submit_alert(Alert(clock.now, uid, genuine=genuine)):
            backlog.append(uid)

    def false_alarm_uids(step, exclude: Set[str]) -> List[str]:
        pool = [
            record.uid
            for record in manager.log.normal_records()
            if record.uid not in exclude
        ]
        picked: List[str] = []
        for k in range(step.count):
            if not pool:
                break
            uid = pool[(step.target + 7 * k) % len(pool)]
            if uid not in picked:
                picked.append(uid)
        return picked

    def fire_timed(i: int, j: int, step) -> None:
        """Fire one scan/recovery-timed step at the current clock."""
        if step.kind == "false-alarm":
            for uid in false_alarm_uids(step, set()):
                submit(uid, genuine=False, timed=True)
            return
        workload = minis[(i, j)]
        burst = AttackCampaign()
        _arm_step(burst, step, workload)
        for spec in workload.specs:
            manager.run_workflow_attacked(
                spec, burst, name=f"{spec.workflow_id}.run"
            )
        for uid in burst.malicious_uids:
            submit(uid, timed=True)

    for i, stage in enumerate(campaign.stages):
        workload = stage_workloads[i]
        attack = AttackCampaign()
        for step in stage:
            if step.trigger == "ingest" and step.kind != "false-alarm":
                _arm_step(attack, step, workload)
        for spec in workload.specs:
            manager.run_workflow_attacked(
                spec, attack, name=f"{spec.workflow_id}.run"
            )
        malicious = set(attack.malicious_uids)
        queued: List[Tuple[str, bool]] = [
            (uid, True) for uid in attack.malicious_uids
        ]
        for step in stage:
            if step.trigger == "ingest" and step.kind == "false-alarm":
                for uid in false_alarm_uids(step, malicious):
                    queued.append((uid, False))
        for uid, genuine in queued:
            submit(uid, genuine=genuine)

        pending_scan = [
            (j, step) for j, step in enumerate(stage)
            if step.trigger == "scan"
        ]
        pending_recovery = [
            (j, step) for j, step in enumerate(stage)
            if step.trigger == "recovery"
        ]
        for _ in range(10_000):
            state = system.state
            if state is SystemState.SCAN:
                if system.recovery_queue.full:
                    # Deadlock-by-overflow (Section IV-E): the analyzer
                    # is blocked, so the operator diverts the pending
                    # alerts to the administrator backlog and lets the
                    # queued recovery units run.
                    while system.alert_queue:
                        backlog.append(system.alert_queue.pop().uid)
                    continue
                clock.advance(
                    config.scan_time * (1 + len(system.recovery_queue))
                )
                plan = system.scan_step()
                if plan is None:  # pragma: no cover - defensive
                    violations.append(Violation(
                        "exception",
                        f"stage {i}: scan_step stalled with alerts queued",
                    ))
                    break
                plans_checked += 1
                findings = verify_plan(
                    manager.log, manager.specs_by_instance, plan
                )
                if findings:
                    detail = "; ".join(
                        f"{f.rule}: {f.message}" for f in findings[:3]
                    )
                    violations.append(Violation(
                        "plan-verifier", f"stage {i}: {detail}"
                    ))
                while pending_scan:
                    j, step = pending_scan.pop(0)
                    fire_timed(i, j, step)
            elif state is SystemState.RECOVERY:
                if pending_recovery:
                    j, step = pending_recovery.pop(0)
                    fire_timed(i, j, step)
                    continue
                clock.advance(
                    config.unit_recovery_time * system.recovery_units_queued
                )
                extra = tuple(backlog)
                if system.recovery_step(extra_uids=extra) is not None:
                    heals += 1
                    del backlog[:len(extra)]
            else:  # NORMAL
                if pending_scan or pending_recovery:
                    # The stage quiesced before SCAN/RECOVERY occurred;
                    # the timed steps degrade to ingest-time firing.
                    leftovers = pending_scan + pending_recovery
                    pending_scan, pending_recovery = [], []
                    for j, step in leftovers:
                        fire_timed(i, j, step)
                    continue
                if backlog:
                    # Administrator report with no recovery batch left
                    # to fold it into: heal it as its own batch.
                    manager.heal(tuple(backlog), bus=bus, clock=clock,
                                 bracket=True)
                    backlog.clear()
                    heals += 1
                    continue
                break
        else:  # pragma: no cover - defensive
            violations.append(Violation(
                "exception", f"stage {i} did not quiesce in 10000 steps"
            ))
        if manager.log.normal_records():
            # Commits after the last heal (or a stage whose corruption
            # never executed): roll the epoch so the audit covers them.
            manager.heal((), bus=bus, clock=clock, bracket=True)
            heals += 1

    audit = manager.audit()
    if not audit.ok:
        violations.append(Violation(
            "audit", "; ".join(audit.problems[:3])
        ))
    # Close the LTLf trace *before* the flight log: the finalize
    # violations land in the recorded text, so the determinism oracle's
    # byte-compare covers them and offline replay re-derives them.
    monitor.finalize()
    conformance = monitor.conformance
    if conformance is not None:
        for v in conformance.violations:
            instance = f" [{v.instance}]" if v.instance else ""
            violations.append(Violation(
                "conformance",
                f"{v.property}{instance} {v.verdict} at t={v.time:g}: "
                f"{v.detail}",
            ))
    flight.close()
    return _EpisodeResult(
        violations=violations,
        plans_checked=plans_checked,
        heals=heals,
        alerts=alerts,
        flight_text=flight.text(),
        verdict=monitor.verdict,
        conformance_violations=(
            conformance.violation_count if conformance is not None else 0
        ),
    )


# --------------------------------------------------------------------------
# Fleet episodes
# --------------------------------------------------------------------------


def _fleet_profiles(campaign: CampaignSpec) -> List[GeneratedTenantProfile]:
    profiles = []
    for tenant in range(campaign.tenants):
        seed = (
            campaign.seed if campaign.correlated
            else stable_seed(campaign.seed, 211 + tenant)
        )
        profiles.append(GeneratedTenantProfile(
            name=f"gen{tenant}",
            campaign_seed=seed,
            arrival_rate=campaign.arrival_rate,
            scan_time=_SCAN_TIME,
            unit_recovery_time=_UNIT_TIME,
            alert_buffer=campaign.alert_buffer,
            recovery_buffer=campaign.recovery_buffer,
        ))
    return profiles


def _fleet_fingerprint(report: FleetReport) -> Tuple:
    return (
        report.attacks,
        report.alerts_accepted,
        report.alerts_lost,
        report.scans,
        report.heals,
        tuple(sorted(report.verdicts_by_tenant.items())),
    )


def _run_fleet_campaign(campaign: CampaignSpec) -> CampaignOutcome:
    """Run a multi-tenant campaign through the fleet control plane.

    Oracles here are the fleet invariants: every tenant's end-to-end
    audit stays clean, the alert accounting balances (every attack is
    either accepted or counted lost — Definition 3's numerator), and a
    re-run from the same seeds reproduces the same report.
    """
    violations: List[Violation] = []

    def run_once() -> FleetReport:
        config = FleetConfig(
            tenants=campaign.tenants,
            duration=campaign.duration,
            workers=1,
            seed=campaign.seed,
        )
        plane = FleetControlPlane(
            config, profiles=_fleet_profiles(campaign)
        )
        return plane.run()

    try:
        report = run_once()
        again = run_once()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return CampaignOutcome(
            campaign=campaign,
            violations=(Violation(
                "exception", f"{type(exc).__name__}: {exc}"
            ),),
            fleet=True,
        )
    for tenant in report.health.tenants:
        if not tenant.audits_ok:
            violations.append(Violation(
                "audit", f"tenant {tenant.tenant}: healed history failed "
                "the strict-correctness audit"
            ))
        if tenant.report.violations:
            violations.append(Violation(
                "conformance",
                f"tenant {tenant.tenant}: {tenant.report.violations} "
                "LTLf strict-correctness violation(s)",
            ))
    if report.attacks != report.alerts_accepted + report.alerts_lost:
        violations.append(Violation(
            "accounting",
            f"attacks={report.attacks} != accepted="
            f"{report.alerts_accepted} + lost={report.alerts_lost}",
        ))
    if _fleet_fingerprint(report) != _fleet_fingerprint(again):
        violations.append(Violation(
            "determinism", "fleet re-run produced a different report"
        ))
    return CampaignOutcome(
        campaign=campaign,
        violations=tuple(violations),
        plans_checked=report.scans,
        heals=report.heals,
        alerts=report.alerts_accepted + report.alerts_lost,
        fleet=True,
        verdict=report.health.verdict.value,
        conformance_violations=report.health.merged.violations,
    )


# --------------------------------------------------------------------------
# The campaign oracle
# --------------------------------------------------------------------------


def run_campaign(
    campaign: CampaignSpec, mutation: Optional[str] = None
) -> CampaignOutcome:
    """Run one campaign through the full composite oracle.

    Single-tenant campaigns run *twice* (the determinism oracle
    compares flight logs byte for byte); multi-tenant campaigns run
    through the fleet control plane.  ``mutation`` injects a seeded
    analyzer fault for the whole run (single-tenant only — the fleet
    path heals from alert uids, so a mutated plan analysis never
    reaches its healer and only the plan verifier can see it).
    """
    if campaign.tenants > 1:
        if mutation is not None:
            raise GenerationError(
                "plan mutations require a single-tenant campaign"
            )
        return _run_fleet_campaign(campaign)

    counter: Dict[str, int] = {"applied": 0}
    violations: List[Violation] = []
    first: Optional[_EpisodeResult] = None
    second: Optional[_EpisodeResult] = None
    with inject_mutation(mutation, counter):
        try:
            first = _run_single_episode(campaign)
            second = _run_single_episode(campaign)
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            violations.append(Violation(
                "exception", f"{type(exc).__name__}: {exc}"
            ))
    if first is not None:
        violations.extend(first.violations)
        if second is not None:
            if first.flight_text != second.flight_text:
                violations.append(Violation(
                    "determinism",
                    "flight logs differ between identical runs",
                ))
            else:
                try:
                    read_flight_log(first.flight_text)
                except Exception as exc:  # noqa: BLE001
                    violations.append(Violation(
                        "determinism",
                        f"flight log failed to parse: {exc}",
                    ))
        if campaign.calibrated and first.verdict is SloState.BREACH:
            violations.append(Violation(
                "health",
                "calibrated campaign drove the conformance monitor "
                "to BREACH",
            ))
    return CampaignOutcome(
        campaign=campaign,
        violations=tuple(violations),
        plans_checked=first.plans_checked if first else 0,
        heals=first.heals if first else 0,
        alerts=first.alerts if first else 0,
        mutated_plans=counter["applied"],
        fleet=False,
        verdict=first.verdict.value if first else "",
        conformance_violations=(
            first.conformance_violations if first else 0
        ),
    )


# --------------------------------------------------------------------------
# Shrinking
# --------------------------------------------------------------------------


def _with_step(
    campaign: CampaignSpec, i: int, j: int, step
) -> CampaignSpec:
    stage = campaign.stages[i]
    new_stage = stage[:j] + (step,) + stage[j + 1:]
    return replace(
        campaign,
        stages=campaign.stages[:i] + (new_stage,) + campaign.stages[i + 1:],
    )


def _shrink_candidates(c: CampaignSpec) -> Iterator[CampaignSpec]:
    """Strictly-smaller neighbours of ``c``, most aggressive first."""
    if c.tenants > 1:
        yield replace(c, tenants=1, correlated=False)
        if c.tenants > 2:
            yield replace(c, tenants=c.tenants - 1)
        if c.correlated:
            yield replace(c, correlated=False)
        if c.duration > 4.0:
            yield replace(c, duration=round(c.duration / 2.0, 3))
    if len(c.stages) > 1:
        for i in range(len(c.stages)):
            yield replace(c, stages=c.stages[:i] + c.stages[i + 1:])
    for i, stage in enumerate(c.stages):
        if len(stage) > 1:
            for j in range(len(stage)):
                yield replace(c, stages=(
                    c.stages[:i] + (stage[:j] + stage[j + 1:],)
                    + c.stages[i + 1:]
                ))
    shape = c.shape
    if shape.n_workflows > 1:
        yield replace(c, shape=replace(
            shape, n_workflows=shape.n_workflows - 1))
    if shape.tasks_per_workflow > 2:
        yield replace(c, shape=replace(
            shape, tasks_per_workflow=shape.tasks_per_workflow - 1))
    if shape.loop_probability:
        yield replace(c, shape=replace(shape, loop_probability=0.0))
    if shape.branch_probability:
        yield replace(c, shape=replace(shape, branch_probability=0.0))
    if shape.n_shared_objects > 1:
        yield replace(c, shape=replace(
            shape, n_shared_objects=shape.n_shared_objects - 1))
    for i, stage in enumerate(c.stages):
        for j, step in enumerate(stage):
            if step.trigger != "ingest":
                yield _with_step(c, i, j, replace(step, trigger="ingest"))
            if step.count > 1:
                yield _with_step(c, i, j, replace(step, count=step.count - 1))
            if step.kind == "corrupt" and step.delta != 1:
                yield _with_step(c, i, j, replace(step, delta=1))
            if step.target != 0:
                yield _with_step(c, i, j, replace(step, target=0))


def shrink_campaign(
    campaign: CampaignSpec,
    still_fails: Callable[[CampaignSpec], bool],
    max_evals: int = 128,
) -> CampaignSpec:
    """Greedy fixpoint minimization of a failing campaign.

    Tries strictly-smaller neighbours (fewer stages/steps/tenants,
    smaller shapes, canonical step fields) and keeps any that still
    violate the oracle, until no neighbour fails or the evaluation
    budget runs out.
    """
    current = campaign
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _shrink_candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            try:
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            except GenerationError:
                continue
    return current


# --------------------------------------------------------------------------
# Corpus files
# --------------------------------------------------------------------------


def campaign_filename(
    campaign: CampaignSpec, mutation: Optional[str] = None
) -> str:
    """Deterministic corpus filename: content digest, no timestamps."""
    digest = hashlib.sha1(
        campaign.to_json().encode("utf-8")
    ).hexdigest()[:10]
    return f"ce-{mutation or 'fuzz'}-{digest}.json"


def write_counterexample(
    campaign: CampaignSpec,
    directory: str,
    violations: Sequence[Violation] = (),
    mutation: Optional[str] = None,
) -> str:
    """Persist a (shrunk) counterexample as a replayable corpus file.

    The file is a plain campaign document — :func:`load_campaign`
    round-trips it — with a ``found_by`` annotation recording the
    oracle(s) that fired and the injected mutation, if any.
    """
    os.makedirs(directory, exist_ok=True)
    doc = campaign.to_dict()
    doc["found_by"] = {
        "harness": "repro-workflow fuzz",
        "mutation": mutation,
        "violations": [
            {"oracle": v.oracle, "detail": v.detail} for v in violations
        ],
    }
    path = os.path.join(directory, campaign_filename(campaign, mutation))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_campaign(path: str) -> CampaignSpec:
    """Read a corpus file back into a campaign."""
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_json(handle.read())


def replay_corpus(
    paths: Sequence[str],
) -> List[Tuple[str, CampaignOutcome]]:
    """Replay corpus files through the full oracle, in path order."""
    return [(path, run_campaign(load_campaign(path))) for path in paths]


# --------------------------------------------------------------------------
# The fuzzing driver
# --------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    campaigns: int = 0
    single: int = 0
    fleet: int = 0
    plans_checked: int = 0
    heals: int = 0
    mutated_plans: int = 0
    caught: int = 0
    missed: int = 0
    #: Campaigns where the *runtime* LTLf monitor flagged at least one
    #: violation — the subset of ``caught`` attributable to online
    #: conformance monitoring rather than the static plan verifier.
    monitor_caught: int = 0
    elapsed: float = 0.0
    findings: List[Tuple[CampaignSpec, Tuple[Violation, ...]]] = field(
        default_factory=list
    )
    corpus_files: List[str] = field(default_factory=list)

    @property
    def violations(self) -> int:
        """Total campaigns that violated at least one oracle."""
        return len(self.findings)

    def summary(self) -> str:
        """One machine-parseable line (the CI smoke job greps it)."""
        return (
            f"fuzz: campaigns={self.campaigns} single={self.single} "
            f"fleet={self.fleet} plans={self.plans_checked} "
            f"heals={self.heals} violations={self.violations} "
            f"mutated={self.mutated_plans} caught={self.caught} "
            f"missed={self.missed} "
            f"monitor_caught={self.monitor_caught} "
            f"elapsed={self.elapsed:.1f}s "
            f"seed={self.seed}"
        )


def fuzz(
    seed: int = 0,
    budget_seconds: Optional[float] = None,
    max_campaigns: Optional[int] = None,
    inject: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    multi_tenant_every: int = 8,
    shrink: bool = True,
    max_corpus_files: int = 4,
    progress: Optional[Callable[[FuzzReport], None]] = None,
) -> FuzzReport:
    """Run generated campaigns through the oracle until a budget ends.

    With neither ``budget_seconds`` nor ``max_campaigns``, 200
    campaigns run.  ``inject`` puts the whole run in fault-injection
    mode: every analyzer plan is mutated, campaigns are forced
    single-tenant (see :func:`run_campaign`), and the report counts
    mutated plans caught vs. missed.  Counterexamples are shrunk (first
    ``max_corpus_files`` findings only — shrinking re-runs campaigns)
    and written to ``corpus_dir``.
    """
    if inject is not None and inject not in MUTATIONS:
        raise GenerationError(
            f"unknown plan mutation {inject!r}; expected one of "
            f"{', '.join(MUTATIONS)}"
        )
    start = _time.monotonic()  # lint: allow[DET001] wall-clock fuzz budget
    report = FuzzReport(seed=seed)
    cap = (
        200 if budget_seconds is None and max_campaigns is None
        else max_campaigns
    )
    index = 0
    while True:
        if cap is not None and report.campaigns >= cap:
            break
        if budget_seconds is not None and (
            _time.monotonic() - start >= budget_seconds  # lint: allow[DET001] wall-clock fuzz budget
        ):
            break
        campaign = generate_campaign(
            seed,
            index=index,
            multi_tenant_every=0 if inject else multi_tenant_every,
        )
        outcome = run_campaign(campaign, mutation=inject)
        report.campaigns += 1
        if outcome.fleet:
            report.fleet += 1
        else:
            report.single += 1
        report.plans_checked += outcome.plans_checked
        report.heals += outcome.heals
        report.mutated_plans += outcome.mutated_plans
        if inject is not None and outcome.mutated_plans:
            if outcome.violations:
                report.caught += 1
            else:
                report.missed += 1
        if outcome.conformance_violations:
            report.monitor_caught += 1
        if outcome.violations:
            shrunk = campaign
            final = outcome.violations
            if shrink and len(report.findings) < max_corpus_files:
                shrunk = shrink_campaign(
                    campaign,
                    lambda c: bool(
                        run_campaign(c, mutation=inject).violations
                    ),
                )
                if shrunk is not campaign:
                    replayed = run_campaign(shrunk, mutation=inject)
                    final = replayed.violations or outcome.violations
            report.findings.append((shrunk, tuple(final)))
            if (
                corpus_dir is not None
                and len(report.corpus_files) < max_corpus_files
            ):
                report.corpus_files.append(write_counterexample(
                    shrunk, corpus_dir, final, mutation=inject
                ))
        if progress is not None and report.campaigns % 25 == 0:
            progress(report)
        index += 1
    report.elapsed = _time.monotonic() - start  # lint: allow[DET001] wall-clock fuzz budget
    return report
