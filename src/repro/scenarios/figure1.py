"""The paper's Figure 1 motivating example, executable.

Two workflows processed concurrently (the paper draws three processors;
what matters is the interleaved commit order):

- **Workflow 1**: ``t1 → t2 → {t3 → t4 | t5} → t6`` — ``t2`` chooses
  between path ``P1 = t1 t2 t3 t4 t6`` and ``P2 = t1 t2 t5 t6``;
- **Workflow 2**: ``t7 → t8 → t9 → t10``.

The system log is the paper's ``L1 = t1 t7 t2 t8 t3 t4 t9 t6 t10``.

The attacker corrupts ``t1``'s output ``x`` ("B" in the figure), which:

- infects ``t2``, ``t4``, ``t8``, ``t10`` through data flow ("A" marks);
- makes ``t2`` choose the wrong path ``P1`` (so ``t3``/``t4`` should
  never have executed — Theorem 1 condition 2);
- leaves ``t6`` reading a value that ``t5`` — on the correct path —
  would have produced (Theorem 1 condition 4).

Expected recovery (Section III): undo ``t1 t2 t3 t4 t6 t8 t10``; redo
``t1 t2 t6 t8 t10``; abandon ``t3 t4`` (undone, not redone); newly
execute ``t5``; keep ``t7 t9`` untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["Figure1Scenario", "build_figure1"]

#: Clean value the genuine ``t1`` writes; odd parity routes ``t2`` to
#: the correct path ``P2`` (via ``t5``).
CLEAN_X = 7
#: Forged value the attacker makes ``t1`` write; even parity routes
#: ``t2`` to the wrong path ``P1`` (via ``t3``/``t4``).
EVIL_X = 1000

#: The paper's log ``L1``, as (workflow index, task id) steps.
L1_ORDER: Tuple[Tuple[int, str], ...] = (
    (0, "t1"), (1, "t7"), (0, "t2"), (1, "t8"), (0, "t3"),
    (0, "t4"), (1, "t9"), (0, "t6"), (1, "t10"),
)


def _wf1() -> WorkflowSpec:
    return (
        workflow("wf1")
        .task("t1", reads=["input1"], writes=["x"],
              compute=lambda d: {"x": d["input1"] + CLEAN_X - 1},
              description="produces x (attacked: B)")
        .task("t2", reads=["x"], writes=["y"],
              compute=lambda d: {"y": d["x"] * 2 + d["x"] % 2},
              choose=lambda d: "t5" if d["y"] % 2 == 1 else "t3",
              description="decides the execution path from x (infected: A)")
        .task("t3", reads=["c"], writes=["u"],
              compute=lambda d: {"u": d["c"] + 1},
              description="wrong-path task; computes correctly")
        .task("t4", reads=["x", "u"], writes=["v"],
              compute=lambda d: {"v": d["x"] + d["u"]},
              description="wrong-path task reading corrupted x (A)")
        .task("t5", reads=["c"], writes=["w"],
              compute=lambda d: {"w": d["c"] * 10},
              description="correct-path task, never ran under attack")
        .task("t6", reads=["w"], writes=["z1"],
              compute=lambda d: {"z1": d["w"] + 5},
              description="joins both paths; reads w (condition 4)")
        .edge("t1", "t2").edge("t2", "t3").edge("t3", "t4")
        .edge("t4", "t6").edge("t2", "t5").edge("t5", "t6")
        .build()
    )


def _wf2() -> WorkflowSpec:
    return (
        workflow("wf2")
        .task("t7", reads=["input2"], writes=["p"],
              compute=lambda d: {"p": d["input2"] * 3})
        .task("t8", reads=["x", "p"], writes=["q"],
              compute=lambda d: {"q": d["x"] + d["p"]},
              description="cross-workflow reader of x (A)")
        .task("t9", reads=["p"], writes=["s9"],
              compute=lambda d: {"s9": d["p"] - 1},
              description="clean task, untouched by recovery")
        .task("t10", reads=["q"], writes=["z2"],
              compute=lambda d: {"z2": d["q"] * 2},
              description="transitively infected through q (A)")
        .chain("t7", "t8", "t9", "t10")
        .build()
    )


@dataclass
class Figure1Scenario:
    """The executed (attacked) Figure 1 system plus its recovery."""

    store: DataStore
    log: SystemLog
    specs_by_instance: Dict[str, WorkflowSpec]
    initial_data: Dict[str, int]
    malicious_uid: str
    heal: HealReport = field(default=None)  # type: ignore[assignment]
    audit: CorrectnessReport = field(default=None)  # type: ignore[assignment]

    # Expected outcomes straight from the paper (task-id level).
    EXPECTED_UNDONE = frozenset(
        {"t1", "t2", "t3", "t4", "t6", "t8", "t10"}
    )
    EXPECTED_REDONE = frozenset({"t1", "t2", "t6", "t8", "t10"})
    EXPECTED_ABANDONED = frozenset({"t3", "t4"})
    EXPECTED_NEW = frozenset({"t5"})
    EXPECTED_KEPT = frozenset({"t7", "t9"})

    def heal_now(self) -> HealReport:
        """Run the healer on the attacked system and audit it."""
        healer = Healer(self.store, self.log, self.specs_by_instance)
        self.heal = healer.heal([self.malicious_uid])
        self.audit = audit_strict_correctness(
            self.specs_by_instance,
            self.initial_data,
            self.heal.final_history,
            self.store.snapshot(),
        )
        return self.heal

    @staticmethod
    def task_ids(uids) -> frozenset:
        """Project instance uids to bare task ids (``wf1/t3#1 → t3``)."""
        return frozenset(u.split("/")[1].split("#")[0] for u in uids)


def build_figure1(attacked: bool = True) -> Figure1Scenario:
    """Execute the Figure 1 system and return it ready for recovery.

    Parameters
    ----------
    attacked:
        When ``True`` (default) the attacker forges ``t1``'s output;
        ``False`` executes the clean system (the recovery oracle).
    """
    initial = {"input1": 1, "input2": 2, "c": 3, "w": 0}
    store = DataStore(initial)
    log = SystemLog()
    engine = Engine(store, log)
    runs = [
        engine.new_run(_wf1(), "wf1"),
        engine.new_run(_wf2(), "wf2"),
    ]

    campaign = AttackCampaign()
    if attacked:
        campaign.corrupt_task("t1", workflow_instance="wf1", x=EVIL_X,
                              label="forged x")

    for wf_index, task_id in L1_ORDER:
        run = runs[wf_index]
        if run.done:
            raise RuntimeError(f"log order visits finished run {wf_index}")
        if run.current_task != task_id:
            # Under attack the wrong path is taken by construction; the
            # clean run takes P2 (t5 instead of t3/t4) and skips those
            # steps of L1.
            if attacked:
                raise RuntimeError(
                    f"expected {task_id} next, run is at {run.current_task}"
                )
            continue
        run.step(store, log, tamper=campaign)
    # Clean runs finish the remainder of their paths.
    for run in runs:
        while not run.done:
            run.step(store, log, tamper=campaign)

    return Figure1Scenario(
        store=store,
        log=log,
        specs_by_instance=engine.specs_by_instance,
        initial_data=initial,
        malicious_uid="wf1/t1#1",
    )
