"""Concrete scenarios from the paper.

- :mod:`repro.scenarios.figure1` — the motivating example of Figure 1:
  two interleaved workflows, a malicious ``t1``, damage spreading across
  both workflows, and an execution-path change during recovery;
- :mod:`repro.scenarios.banking` — the introduction's forged bank
  transaction: a whole workflow run injected by the attacker;
- :mod:`repro.scenarios.travel` — the introduction's travel booking with
  forged credit-card data steering an approval branch;
- :mod:`repro.scenarios.supply_chain` — a compound case study: data
  corruption plus a forged run across procurement, sales and
  bookkeeping workflows;
- :mod:`repro.scenarios.web_app` — an Ancora-style web shop: a session
  hijack at request granularity, with live traffic racing the repair.

Each module exposes a ``build_*()`` returning a ready-to-run scenario
with a ``heal_now()`` performing recovery and the Definition 2 audit.

Beyond the fixed case studies, :mod:`repro.scenarios.generate` grows
seeded random workloads and attack campaigns (the fuzzing DSL), and
:mod:`repro.scenarios.fuzz` runs them through the oracle-checked
fuzzing harness behind ``repro-workflow fuzz``.
"""

from repro.scenarios.banking import BankingScenario, build_banking
from repro.scenarios.figure1 import Figure1Scenario, build_figure1
from repro.scenarios.supply_chain import (
    SupplyChainScenario,
    build_supply_chain,
)
from repro.scenarios.travel import TravelScenario, build_travel
from repro.scenarios.web_app import WebAppScenario, build_web_app

__all__ = [
    "Figure1Scenario",
    "build_figure1",
    "BankingScenario",
    "build_banking",
    "TravelScenario",
    "build_travel",
    "SupplyChainScenario",
    "build_supply_chain",
    "WebAppScenario",
    "build_web_app",
]
