"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems add their
own subclasses; modules never raise bare ``ValueError`` for domain errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkflowSpecError",
    "UnknownTaskError",
    "ExecutionError",
    "BranchDecisionError",
    "LogError",
    "DataStoreError",
    "VersionNotFoundError",
    "SchedulingError",
    "CyclicOrderError",
    "RecoveryError",
    "QueueFullError",
    "ModelError",
    "NotConvergedError",
    "SimulationError",
    "ObsError",
    "FleetError",
    "GenerationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Workflow substrate
# --------------------------------------------------------------------------


class WorkflowSpecError(ReproError):
    """A workflow specification is structurally invalid.

    Raised for graphs without a unique start node, unreachable tasks,
    branch nodes without a decision function, duplicate task identifiers,
    and similar specification-level problems.

    Validation is collect-then-raise: one exception reports *every*
    defect found, as the :attr:`problems` tuple (the message joins them
    all).  Lint SPEC001 diagnostics are generated from the same tuple,
    so constructor errors and ``repro-workflow lint spec`` agree.
    """

    def __init__(self, message: str, problems: "tuple" = ()) -> None:
        super().__init__(message)
        #: Individual defect descriptions; never empty.
        self.problems: tuple = tuple(problems) or (message,)


class UnknownTaskError(WorkflowSpecError):
    """A task identifier does not exist in the workflow specification."""


class ExecutionError(ReproError):
    """A task failed while executing (compute raised, missing inputs...)."""


class BranchDecisionError(ExecutionError):
    """A branch node returned a successor that is not one of its edges."""


class LogError(ReproError):
    """The system log was used inconsistently (e.g. duplicate commit)."""


class DataStoreError(ReproError):
    """Base class for data-store errors."""


class VersionNotFoundError(DataStoreError):
    """A requested object version does not exist in the version history."""


# --------------------------------------------------------------------------
# Scheduling / recovery core
# --------------------------------------------------------------------------


class SchedulingError(ReproError):
    """The scheduler could not make progress."""


class CyclicOrderError(SchedulingError):
    """A partial order over tasks contains a cycle and admits no schedule."""


class RecoveryError(ReproError):
    """The recovery analyzer or healer hit an unrecoverable condition."""


class QueueFullError(ReproError):
    """A bounded queue (IDS alerts / recovery tasks) rejected an item."""


# --------------------------------------------------------------------------
# Markov model / simulation
# --------------------------------------------------------------------------


class ModelError(ReproError):
    """A CTMC model is malformed (bad generator matrix, bad rates...)."""


class NotConvergedError(ModelError):
    """An iterative numerical procedure failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


# --------------------------------------------------------------------------
# Observability
# --------------------------------------------------------------------------


class ObsError(ReproError):
    """The observability layer was misused or a flight log is invalid.

    Raised for span lifecycle violations (ending a span that is not the
    innermost open one, or one already finished), corrupt or
    wrong-schema flight-recorder logs, and provenance queries about
    instances a log never mentions.
    """


# --------------------------------------------------------------------------
# Fleet control plane
# --------------------------------------------------------------------------


class FleetError(ReproError):
    """The fleet control plane was misconfigured or misused.

    Raised for unknown workload-mix archetypes, invalid tenant/worker
    counts, and control-plane lifecycle violations (e.g. reading fleet
    health before any tenants exist).
    """


# --------------------------------------------------------------------------
# Campaign generation / fuzzing
# --------------------------------------------------------------------------


class GenerationError(ReproError):
    """A campaign document or generator request is invalid.

    Raised for malformed corpus files (unknown format tags, bad step
    kinds/triggers, non-JSON input) and for unknown plan-mutation or
    fuzzing-mode names — the CLI's exit-3 path for the ``fuzz`` verb.
    """
