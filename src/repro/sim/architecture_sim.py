"""Discrete-event simulation of the Figure 2 architecture itself.

The Gillespie simulator (:mod:`repro.sim.ctmc_sim`) samples the CTMC's
transitions directly — it validates the *model*.  This simulator instead
implements the *architecture's operating rules* as an event-driven
server system and lets the state process emerge:

- IDS alerts arrive (Poisson) into a bounded alert queue; overflow is
  lost;
- the analyzer serves one alert at a time with exponential service at
  rate ``μ_a`` (``a`` = alerts present), *blocked* while the recovery
  queue is full;
- the scheduler executes one recovery unit at a time at rate ``ξ_r``,
  only while the alert queue is empty or the analyzer is blocked —
  scan and recovery never run in parallel (Section IV-C);
- scanning *preempts* recovery: an arrival during a recovery service
  (with queue space left) aborts it back to the queue — exponential
  services make the preempt-restart equivalent to the CTMC's
  state-dependent rates;
- rate changes mid-service (another alert arriving during a scan)
  resample the remaining service time, again matching the Markov model
  exactly.

Because these *rules* reproduce the CTMC's generator, the emergent
occupancies must match Equation 1's steady state — asserted in
``tests/test_architecture_sim.py``.  Divergence would mean the paper's
architectural description and its Markov model disagree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.sim.ctmc_sim import GillespieResult
from repro.sim.events import Event
from repro.sim.simulator import Simulator

__all__ = ["ArchitectureSimulator"]


class ArchitectureSimulator:
    """Event-driven simulation of the recovery architecture's rules.

    Parameters
    ----------
    stg:
        Supplies λ, the μ/ξ schedules and the buffer sizes; the
        simulator does *not* read the STG's transition table — the
        point is to re-derive it from the operating rules.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        stg: RecoverySTG,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._stg = stg
        self._rng = rng if rng is not None else random.Random(0)

    def run(self, horizon: float) -> GillespieResult:
        """Simulate ``[0, horizon]``; returns occupancy statistics."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        stg, rng = self._stg, self._rng
        sim = Simulator()

        # Mutable architecture state.
        alerts = 0           # alerts queued (including the one in scan)
        units = 0            # recovery units queued (incl. in execution)
        scan_event: Optional[Event] = None
        recovery_event: Optional[Event] = None

        time_in: Dict[State, float] = {}
        last_change = 0.0
        arrivals = 0
        arrivals_lost = 0

        def account() -> None:
            nonlocal last_change
            state = State(alerts, units)
            now = min(sim.now, horizon)
            time_in[state] = time_in.get(state, 0.0) + (now - last_change)
            last_change = now

        def dispatch() -> None:
            """Start/stop services according to the operating rules."""
            nonlocal scan_event, recovery_event
            analyzer_blocked = units >= stg.recovery_buffer
            scan_wanted = alerts > 0 and not analyzer_blocked
            recovery_wanted = units > 0 and (
                alerts == 0 or analyzer_blocked
            )
            # Scan preempts recovery; they never run together.
            if scan_wanted:
                if recovery_event is not None:
                    recovery_event.cancel()
                    recovery_event = None
                if scan_event is None:
                    rate = stg.scan_schedule(alerts)
                    if rate > 0:
                        scan_event = sim.schedule(
                            rng.expovariate(rate), scan_done, "scan"
                        )
            elif recovery_wanted:
                if scan_event is not None:  # pragma: no cover - defensive
                    scan_event.cancel()
                    scan_event = None
                if recovery_event is None:
                    rate = stg.recovery_schedule(units)
                    if rate > 0:
                        recovery_event = sim.schedule(
                            rng.expovariate(rate), recovery_done,
                            "recovery",
                        )

        def resample_scan() -> None:
            """The scan rate is μ_a; when a changes mid-service the
            remaining time must be redrawn (memorylessness makes this
            exactly the Markov semantics)."""
            nonlocal scan_event
            if scan_event is not None:
                scan_event.cancel()
                scan_event = None

        def arrival() -> None:
            nonlocal alerts, arrivals, arrivals_lost
            account()
            arrivals += 1
            if alerts >= stg.alert_buffer:
                arrivals_lost += 1
            else:
                alerts += 1
                resample_scan()
            sim.schedule(rng.expovariate(stg.arrival_rate), arrival,
                         "arrival")
            dispatch()

        def scan_done() -> None:
            nonlocal alerts, units, scan_event
            account()
            scan_event = None
            alerts -= 1
            units += 1
            dispatch()

        def recovery_done() -> None:
            nonlocal units, recovery_event
            account()
            recovery_event = None
            units -= 1
            dispatch()

        if stg.arrival_rate > 0:
            sim.schedule(rng.expovariate(stg.arrival_rate), arrival,
                         "arrival")
        sim.run_until(horizon)
        account()

        result = GillespieResult(
            horizon=horizon,
            occupancy={s: t / horizon for s, t in time_in.items()},
            loss_time_fraction=sum(
                t / horizon
                for s, t in time_in.items()
                if s.alerts >= stg.alert_buffer
            ),
            arrivals=arrivals,
            arrivals_lost=arrivals_lost,
            jumps=sim.events_fired,
        )
        cats: Dict[StateCategory, float] = {c: 0.0 for c in StateCategory}
        for s, frac in result.occupancy.items():
            cats[s.category] += frac
        result.category_occupancy = cats
        return result
