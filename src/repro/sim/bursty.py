"""Bursty (Markov-modulated) attack arrivals.

Section IV-D: "intrusions occur sporadically, with long time periods
where there are no successful attacks, interspersed with short bursts of
multiple attacks.  However, there is still no agreement about what
probability distribution best describes the intrusions."  The paper then
adopts Poisson arrivals for tractability; Section VI compensates by
telling designers to size the alert buffer "according to the peak rate".

This module quantifies what that Poisson simplification hides: an
on/off Markov-modulated Poisson process (MMPP) drives the same recovery
pipeline, and the simulator measures how much more loss a bursty stream
causes than a Poisson stream *of the same mean rate* — the empirical
basis for the peak-rate sizing guideline (benchmarked in
``bench_bursty_arrivals.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ModelError, SimulationError
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.sim.ctmc_sim import GillespieResult

__all__ = ["BurstModel", "BurstySimulator"]


@dataclass(frozen=True)
class BurstModel:
    """Two-phase MMPP arrival model.

    Attributes
    ----------
    quiet_rate:
        Alert arrival rate in the quiet phase (often ≈ 0).
    burst_rate:
        Alert arrival rate during a burst (the *peak* rate of Section
        VI's sizing guideline).
    onset_rate:
        Rate of quiet → burst transitions (bursts per quiet time unit).
    decay_rate:
        Rate of burst → quiet transitions (1 / mean burst length).
    """

    quiet_rate: float
    burst_rate: float
    onset_rate: float
    decay_rate: float

    def __post_init__(self) -> None:
        for name in ("quiet_rate", "burst_rate", "onset_rate",
                     "decay_rate"):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be >= 0")
        if self.onset_rate == 0 and self.quiet_rate == 0:
            raise ModelError("model would never generate any arrival")

    @property
    def burst_fraction(self) -> float:
        """Long-run fraction of time spent in the burst phase."""
        total = self.onset_rate + self.decay_rate
        if total == 0:
            return 0.0
        return self.onset_rate / total

    @property
    def mean_rate(self) -> float:
        """Long-run mean arrival rate (for Poisson-equivalent comparison)."""
        p = self.burst_fraction
        return p * self.burst_rate + (1 - p) * self.quiet_rate

    @classmethod
    def with_mean(
        cls,
        mean_rate: float,
        peak_to_mean: float,
        mean_burst_length: float,
        quiet_rate: float = 0.0,
    ) -> "BurstModel":
        """Construct a model with a prescribed mean rate.

        Parameters
        ----------
        mean_rate:
            Target long-run rate (matches the Poisson baseline).
        peak_to_mean:
            Burst rate divided by the mean rate (> 1).
        mean_burst_length:
            Expected duration of one burst.
        quiet_rate:
            Arrival rate between bursts.
        """
        if peak_to_mean <= 1:
            raise ModelError("peak_to_mean must exceed 1")
        burst_rate = mean_rate * peak_to_mean
        if burst_rate <= quiet_rate:
            raise ModelError("burst rate must exceed the quiet rate")
        # mean = p·burst + (1-p)·quiet  ⇒  p = (mean-quiet)/(burst-quiet)
        p = (mean_rate - quiet_rate) / (burst_rate - quiet_rate)
        if not 0 < p < 1:
            raise ModelError(
                f"mean rate {mean_rate} unreachable with peak_to_mean="
                f"{peak_to_mean} and quiet_rate={quiet_rate}"
            )
        decay = 1.0 / mean_burst_length
        onset = decay * p / (1 - p)
        return cls(quiet_rate, burst_rate, onset, decay)


class BurstySimulator:
    """Gillespie simulation of the recovery STG under MMPP arrivals.

    The joint process over (phase, STG state) is still a CTMC; the
    simulator tracks it exactly, reusing the STG's scan/recovery rates
    and replacing its Poisson arrivals with the modulated stream.
    """

    def __init__(
        self,
        stg: RecoverySTG,
        burst: BurstModel,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._stg = stg
        self._burst = burst
        self._rng = rng if rng is not None else random.Random(0)
        # Service transitions only (arrivals handled by the modulation).
        base = RecoverySTG(
            arrival_rate=0.0,
            scan=stg.scan_schedule,
            recovery=stg.recovery_schedule,
            recovery_buffer=stg.recovery_buffer,
            alert_buffer=stg.alert_buffer,
        )
        self._service: Dict[State, Tuple[Tuple[State, float], ...]] = {
            s: () for s in base.states
        }
        grouped: Dict[State, Dict[State, float]] = {}
        for (src, dst), rate in base.transition_rates().items():
            grouped.setdefault(src, {})[dst] = rate
        for src, dsts in grouped.items():
            self._service[src] = tuple(sorted(dsts.items()))

    def run(
        self,
        horizon: float,
        max_jumps: int = 50_000_000,
    ) -> GillespieResult:
        """Simulate one trajectory; statistics as in
        :class:`~repro.sim.ctmc_sim.GillespieResult`."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        stg, burst, rng = self._stg, self._burst, self._rng
        state = stg.normal_state
        in_burst = False

        time_in: Dict[State, float] = {}
        loss_states = set(stg.loss_states())
        loss_time = 0.0
        arrivals = arrivals_lost = jumps = 0
        now = 0.0

        while now < horizon:
            if jumps >= max_jumps:
                raise SimulationError(
                    f"exceeded {max_jumps} jumps before horizon"
                )
            lam = burst.burst_rate if in_burst else burst.quiet_rate
            mod_rate = burst.decay_rate if in_burst else burst.onset_rate
            service = self._service[state]
            service_total = sum(r for _, r in service)
            arrival_rate = lam if state.alerts < stg.alert_buffer else 0.0
            lost_rate = lam - arrival_rate
            total = service_total + arrival_rate + lost_rate + mod_rate
            dwell = rng.expovariate(total) if total > 0 else horizon - now
            end = min(now + dwell, horizon)
            elapsed = end - now
            time_in[state] = time_in.get(state, 0.0) + elapsed
            if state in loss_states:
                loss_time += elapsed
            now = end
            if now >= horizon or total <= 0:
                break
            x = rng.random() * total
            if x < service_total:
                acc = 0.0
                for dst, rate in service:
                    acc += rate
                    if x <= acc:
                        state = dst
                        break
            elif x < service_total + arrival_rate:
                arrivals += 1
                state = State(state.alerts + 1, state.units)
            elif x < service_total + arrival_rate + lost_rate:
                arrivals += 1
                arrivals_lost += 1  # arrival into a full alert buffer
            else:
                in_burst = not in_burst
            jumps += 1

        result = GillespieResult(
            horizon=horizon,
            occupancy={s: t / horizon for s, t in time_in.items()},
            loss_time_fraction=loss_time / horizon,
            arrivals=arrivals,
            arrivals_lost=arrivals_lost,
            jumps=jumps,
        )
        cats: Dict[StateCategory, float] = {c: 0.0 for c in StateCategory}
        for s, frac in result.occupancy.items():
            cats[s.category] += frac
        result.category_occupancy = cats
        return result
