"""Exact stochastic simulation of the recovery pipeline state process.

The recovery system's CTMC (Section IV) is simulated directly with the
Gillespie algorithm: in each state, sample an exponential holding time
from the total outgoing rate, then jump to a successor with probability
proportional to its rate.  Because the simulated process *is* the CTMC,
long-run state occupancies must converge to the analytic steady state —
this is the cross-validation used by ``benchmarks/bench_sim_vs_ctmc.py``.

Beyond occupancy, the simulator counts what the analytic model can only
imply: the actual number of alerts lost to a full alert buffer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    StateTransition,
    UnitEmitted,
)
from repro.obs.health import (
    ConformanceReport,
    HealthConfig,
    HealthMonitor,
    ModelPrediction,
)

__all__ = ["GillespieResult", "GillespieSimulator", "run_replication"]


def run_replication(
    stg: RecoverySTG,
    horizon: float,
    seed: int,
    start: Optional[State] = None,
    bus: Optional[EventBus] = None,
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
) -> "GillespieResult":
    """One seeded Gillespie replication.

    Module-level (hence picklable) entry point used by
    :mod:`repro.sim.batch` to fan replications out over a process pool;
    running it with the same ``(stg, horizon, seed, start)`` always
    reproduces the same trajectory, worker placement notwithstanding.

    With ``health`` (a picklable :class:`ModelPrediction`), a
    :class:`HealthMonitor` rides the replication's event stream and the
    result carries its :class:`ConformanceReport` — a deterministic
    function of ``(stg, horizon, seed, start, health, health_config)``,
    so batch merging stays bit-identical at any worker count.
    """
    monitor: Optional[HealthMonitor] = None
    if health is not None:
        if bus is None:
            bus = EventBus()
        monitor = HealthMonitor(health, config=health_config).attach(bus)
    result = GillespieSimulator(stg, random.Random(seed), bus=bus).run(
        horizon, start=start
    )
    if monitor is not None:
        result.conformance = monitor.report()
    return result


@dataclass
class GillespieResult:
    """Statistics from one simulated trajectory.

    Attributes
    ----------
    horizon:
        Simulated duration.
    occupancy:
        Fraction of time in each visited state (sums to 1).
    category_occupancy:
        Fraction of time in NORMAL / SCAN / RECOVERY.
    loss_time_fraction:
        Fraction of time spent in the STG's loss states (alert buffer
        full) — the empirical counterpart of Definition 3's loss
        probability.
    arrivals, arrivals_lost:
        Alert arrivals generated / rejected by a full alert buffer.
    jumps:
        Number of state transitions taken.
    conformance:
        Per-replication SLO/drift verdict when the run was health-
        monitored (see :func:`run_replication`); ``None`` otherwise.
    """

    horizon: float
    occupancy: Dict[State, float] = field(default_factory=dict)
    category_occupancy: Dict[StateCategory, float] = field(default_factory=dict)
    loss_time_fraction: float = 0.0
    arrivals: int = 0
    arrivals_lost: int = 0
    jumps: int = 0
    conformance: Optional[ConformanceReport] = None

    @property
    def empirical_loss_probability(self) -> float:
        """Alias for :attr:`loss_time_fraction`."""
        return self.loss_time_fraction

    @property
    def alert_loss_fraction(self) -> float:
        """Fraction of generated alerts that were lost."""
        if self.arrivals == 0:
            return 0.0
        return self.arrivals_lost / self.arrivals


class GillespieSimulator:
    """Simulates the trajectory of a :class:`RecoverySTG`.

    Parameters
    ----------
    stg:
        The recovery-system STG (its rates drive the simulation).
    rng:
        Source of randomness; defaults to a fixed-seed generator.
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached, the
        trajectory is published as typed events — every jump as a
        :class:`~repro.obs.events.StateTransition` (full ``(a, r)``
        state string plus NORMAL/SCAN/RECOVERY category), every accepted
        arrival as an :class:`~repro.obs.events.AlertEnqueued`, every
        lost arrival as an :class:`~repro.obs.events.AlertLost` — all
        stamped with simulated time.  This is how the empirical CTMC
        validation measures occupancy and loss through the same
        observability layer the operational system uses.
    """

    def __init__(
        self,
        stg: RecoverySTG,
        rng: Optional[random.Random] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self._stg = stg
        self._rng = rng if rng is not None else random.Random(0)
        self._bus = bus
        # Per-source sorted outgoing transitions, consistent by
        # construction with the analytic generator.
        self._out: Dict[State, Tuple[Tuple[State, float], ...]] = {
            s: () for s in stg.states
        }
        grouped: Dict[State, Dict[State, float]] = {}
        for (src, dst), rate in stg.transition_rates().items():
            grouped.setdefault(src, {})[dst] = rate
        for src, dsts in grouped.items():
            self._out[src] = tuple(sorted(dsts.items()))

    def run(
        self,
        horizon: float,
        start: Optional[State] = None,
        max_jumps: int = 50_000_000,
    ) -> GillespieResult:
        """Simulate one trajectory of length ``horizon``.

        Arrivals while the alert buffer is full do not correspond to any
        chain transition; they are sampled as part of the same Poisson
        stream and counted as lost, so the loss *count* is observable,
        not just the loss-time fraction.
        """
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        stg = self._stg
        rng = self._rng
        state = start if start is not None else stg.normal_state
        lam = stg.arrival_rate
        bus = self._bus if self._bus is not None and self._bus.active \
            else None

        time_in: Dict[State, float] = {}
        now = 0.0
        jumps = 0
        arrivals = 0
        arrivals_lost = 0
        loss_states = set(stg.loss_states())
        loss_time = 0.0

        while now < horizon:
            if jumps >= max_jumps:
                raise SimulationError(
                    f"exceeded {max_jumps} jumps before horizon {horizon}"
                )
            out = self._out[state]
            total = sum(rate for _, rate in out)
            dwell = rng.expovariate(total) if total > 0 else horizon - now
            end = min(now + dwell, horizon)
            elapsed = end - now
            time_in[state] = time_in.get(state, 0.0) + elapsed
            if state in loss_states:
                loss_time += elapsed
            if lam > 0 and state.alerts >= stg.alert_buffer:
                lost_here = self._poisson_count(lam * elapsed)
                arrivals += lost_here
                arrivals_lost += lost_here
                if bus is not None:
                    for _ in range(lost_here):
                        bus.publish(AlertLost(
                            end, uid="", queue_depth=state.alerts,
                        ))
            now = end
            if now >= horizon or total <= 0:
                break
            nxt = self._choose(out, total)
            if nxt.alerts == state.alerts + 1:
                arrivals += 1  # an accepted alert arrival
                if bus is not None:
                    bus.publish(AlertEnqueued(
                        now, uid="", queue_depth=nxt.alerts,
                    ))
            elif bus is not None and nxt.units == state.units + 1:
                # A scan jump moves one alert into the recovery queue.
                bus.publish(UnitEmitted(
                    now, units=1, queue_depth=nxt.units,
                ))
            if bus is not None:
                bus.publish(StateTransition(
                    now, old=str(state), new=str(nxt),
                    old_category=state.category.name,
                    new_category=nxt.category.name,
                ))
            state = nxt
            jumps += 1

        result = GillespieResult(
            horizon=horizon,
            occupancy={s: t / horizon for s, t in time_in.items()},
            loss_time_fraction=loss_time / horizon,
            arrivals=arrivals,
            arrivals_lost=arrivals_lost,
            jumps=jumps,
        )
        cat: Dict[StateCategory, float] = {c: 0.0 for c in StateCategory}
        for s, frac in result.occupancy.items():
            cat[s.category] += frac
        result.category_occupancy = cat
        return result

    # -- internals --------------------------------------------------------

    def _choose(
        self,
        out: Tuple[Tuple[State, float], ...],
        total: float,
    ) -> State:
        x = self._rng.random() * total
        acc = 0.0
        for dst, rate in out:
            acc += rate
            if x <= acc:
                return dst
        return out[-1][0]  # numerical edge: fall back to the last option

    def _poisson_count(self, mean: float) -> int:
        """Sample a Poisson count via exponential inter-arrival sums."""
        if mean <= 0:
            return 0
        count = 0
        acc = self._rng.expovariate(1.0)
        while acc < mean:
            count += 1
            acc += self._rng.expovariate(1.0)
        return count
