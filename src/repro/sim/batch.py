"""Parallel replication runner for the stochastic simulators.

One Gillespie (or full-stack) trajectory estimates the paper's
quantities with the variance of a single sample path; the standard
remedy — exact-SSA practice since Gillespie 1977 — is many independent
replications.  Replications are embarrassingly parallel, so this module
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`
and merges the results.

Two properties are load-bearing and pinned by the differential tests:

**Deterministic seed streams.**  Per-replication seeds are spawned from
the base seed with :class:`numpy.random.SeedSequence` — replication
``i`` derives its seed from ``(base_seed, spawn_key=i)`` only.  Streams
are therefore pairwise distinct, independent of the worker count, and
*order-independent*: the first ``m`` seeds of an ``n``-replication
batch equal the seeds of an ``m``-replication batch.

**Worker-count invariance.**  Each replication owns a private
``random.Random(seed)``, and results are collected in submission order,
so ``workers=K`` reproduces ``workers=1`` bit-exactly — parallelism
buys wall-clock time, never different answers.  With ``workers=1`` no
pool (and no subprocess) is created at all.

Parallelism *should* buy wall-clock time — measured, at small
replication counts, it often does not (ROADMAP item 2a: speedups of
0.61–0.83 at the benchmark's shape).  The batch results therefore
carry the accounting that explains the gap: per-replication in-worker
wall times, the :attr:`~FullStackBatchResult.fan_out_overhead` spent
outside any worker's compute (process spawn, task pickling, IPC), a
:attr:`~FullStackBatchResult.speedup` estimate, and — when a parallel
run is slower than its own serial work — a loud
:class:`ParallelSlowdownWarning` plus the
:attr:`~FullStackBatchResult.speedup_lt_1` flag.  Under a
:class:`~repro.obs.perf.PhaseProfiler` the same quantities appear as
``batch.worker`` / ``batch.spawn`` / ``batch.fan-out`` phases and the
``pickle_bytes`` cost-driver counter.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.obs.health import (
    ConformanceReport,
    HealthConfig,
    ModelPrediction,
    merge_conformance,
)
from repro.obs.perf import PhaseProfiler, bump as perf_bump
from repro.sim import ctmc_sim, fullstack
from repro.sim.ctmc_sim import GillespieResult
from repro.sim.fullstack import FullStackConfig, FullStackResult

__all__ = [
    "spawn_seeds",
    "default_workers",
    "ParallelSlowdownWarning",
    "GillespieBatchResult",
    "FullStackBatchResult",
    "run_gillespie_batch",
    "run_fullstack_batch",
]


class ParallelSlowdownWarning(UserWarning):
    """A parallel batch ran slower than its own serial work.

    Structured: the numbers behind the verdict ride on the instance so
    handlers can do better than parse the message.

    Attributes
    ----------
    workers, replications:
        Fan-out shape of the offending batch.
    elapsed, worker_wall:
        Whole-batch wall seconds vs. the sum of in-worker compute
        seconds.
    speedup:
        ``worker_wall / elapsed`` — below 1.0 by construction here.
    fan_out_overhead:
        Seconds not explained by perfectly-parallel compute: process
        spawn, task pickling, IPC, result collection.
    """

    def __init__(self, workers: int, replications: int, elapsed: float,
                 worker_wall: float, speedup: float,
                 fan_out_overhead: float) -> None:
        self.workers = workers
        self.replications = replications
        self.elapsed = elapsed
        self.worker_wall = worker_wall
        self.speedup = speedup
        self.fan_out_overhead = fan_out_overhead
        super().__init__(
            f"parallel batch slower than its own serial work: "
            f"speedup={speedup:.2f} (<1) with workers={workers}, "
            f"replications={replications} — elapsed {elapsed:.3f}s vs "
            f"{worker_wall:.3f}s of in-worker compute; "
            f"{fan_out_overhead:.3f}s of fan-out overhead (process "
            f"spawn, pickling, IPC).  Use workers=1 at this shape, or "
            f"raise replications/horizon until compute dominates."
        )


def spawn_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` pairwise-distinct 64-bit replication seeds from one base
    seed, via ``SeedSequence`` spawning.

    Seed ``i`` depends only on ``(base_seed, i)``: growing ``n`` never
    changes earlier seeds, and neither does the worker count.
    """
    if n < 0:
        raise SimulationError(f"need n >= 0 seeds, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(c.generate_state(1, np.uint64)[0]) for c in children]


def default_workers() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _validate(replications: int, workers: int, horizon: float) -> None:
    if replications < 1:
        raise SimulationError(
            f"replications must be >= 1, got {replications}"
        )
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if horizon <= 0:
        raise SimulationError(f"horizon must be > 0, got {horizon}")


def _timed_gillespie(
    stg: RecoverySTG,
    horizon: float,
    seed: int,
    start: Optional[State],
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
) -> Tuple[GillespieResult, float]:
    t0 = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
    result = ctmc_sim.run_replication(stg, horizon, seed, start=start,
                                      health=health,
                                      health_config=health_config)
    return result, time.perf_counter() - t0  # lint: allow[DET001] host benchmark timing, not simulated time


def _timed_fullstack(
    config: FullStackConfig,
    horizon: float,
    seed: int,
    record_path: Optional[str] = None,
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Tuple[FullStackResult, float]:
    t0 = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
    result = fullstack.run_replication(config, horizon, seed,
                                       record_path=record_path,
                                       health=health,
                                       health_config=health_config,
                                       profiler=profiler)
    return result, time.perf_counter() - t0  # lint: allow[DET001] host benchmark timing, not simulated time


def _fan_out(
    worker: Callable,
    tasks: Sequence[tuple],
    workers: int,
    profiler: Optional[PhaseProfiler] = None,
) -> List[tuple]:
    """Run ``worker(*task)`` for every task, preserving order.

    ``workers == 1`` runs inline — no pool, no subprocess; otherwise a
    process pool executes the tasks and results are gathered in
    submission order (determinism over opportunistic completion order).

    With ``profiler``: inline runs wrap each worker call in a
    ``batch.worker`` phase (so a replication's own phases nest under
    it); pooled runs count the task payload into the ``pickle_bytes``
    cost driver and record pool construction as ``batch.spawn`` —
    the in-worker/overhead split for pooled runs comes from the
    caller, which knows the per-replication wall times.
    """
    if workers == 1:
        if profiler is None:
            return [worker(*task) for task in tasks]
        out = []
        for task in tasks:
            with profiler.phase("batch.worker"):
                out.append(worker(*task))
        return out
    pool_size = min(workers, len(tasks))
    if profiler is not None:
        # What the pool is about to pickle over the pipe, measured
        # up front (the double dumps() is noise next to the spawn).
        perf_bump("pickle_bytes",
                  sum(len(pickle.dumps(task)) for task in tasks))
    t0 = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        spawn = time.perf_counter() - t0  # lint: allow[DET001] host benchmark timing, not simulated time
        futures = [pool.submit(worker, *task) for task in tasks]
        results = [f.result() for f in futures]
    if profiler is not None:
        profiler.add_at(("batch.spawn",), spawn, calls=1)
    return results


def _account_fan_out(batch, profiler: Optional[PhaseProfiler]) -> None:
    """Post-run fan-out accounting shared by both batch kinds.

    Computes :attr:`~FullStackBatchResult.fan_out_overhead` (pooled
    runs only), mirrors the in-worker/overhead split into the profiler
    as ``batch.worker`` / ``batch.fan-out`` phases, and issues the
    :class:`ParallelSlowdownWarning` when the batch's
    ``speedup_lt_1`` flag trips."""
    worker_wall = sum(batch.wall_times)
    if batch.workers > 1:
        # A perfectly packed pool would finish in worker_wall/workers;
        # everything beyond that is fan-out overhead — spawn, pickle,
        # IPC, result collection (ROADMAP item 2a's measured gap).
        ideal = worker_wall / batch.workers
        batch.fan_out_overhead = max(batch.elapsed - ideal, 0.0)
        if profiler is not None:
            profiler.add_at(("batch.worker",), worker_wall,
                            calls=batch.replications)
            profiler.add_at(("batch.fan-out",),
                            batch.fan_out_overhead, calls=1)
    if batch.speedup_lt_1:
        warnings.warn(ParallelSlowdownWarning(
            workers=batch.workers,
            replications=batch.replications,
            elapsed=batch.elapsed,
            worker_wall=worker_wall,
            speedup=batch.speedup,
            fan_out_overhead=batch.fan_out_overhead,
        ), stacklevel=3)


def _mean_and_stderr(values: Sequence[float]) -> Tuple[float, float]:
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    return mean, float(arr.std(ddof=1) / np.sqrt(arr.size))


@dataclass
class GillespieBatchResult:
    """Merged statistics over ``n`` independent Gillespie replications.

    Attributes
    ----------
    results:
        Per-replication :class:`~repro.sim.ctmc_sim.GillespieResult`,
        in replication order.
    seeds:
        The per-replication seed stream actually used.
    horizon, workers:
        Replication horizon and the worker count of this run.
    wall_times:
        Per-replication wall-clock seconds (measured inside the
        worker).
    elapsed:
        Wall-clock seconds for the whole batch, pool overhead included.
    fan_out_overhead:
        Pooled runs only: seconds beyond a perfectly packed pool's
        ``sum(wall_times)/workers`` — spawn, pickling, IPC.  Zero for
        inline runs.
    """

    results: List[GillespieResult]
    seeds: List[int]
    horizon: float
    workers: int
    wall_times: List[float] = field(default_factory=list)
    elapsed: float = 0.0
    fan_out_overhead: float = 0.0

    @property
    def replications(self) -> int:
        """Number of replications merged."""
        return len(self.results)

    @property
    def speedup(self) -> float:
        """In-worker compute seconds over whole-batch elapsed seconds —
        the honest "did parallelism pay" estimate (1.0 ≈ break-even
        with serial, below 1.0 means the pool made things *slower*)."""
        if self.elapsed <= 0:
            return 0.0
        return sum(self.wall_times) / self.elapsed

    @property
    def speedup_lt_1(self) -> bool:
        """True when a pooled run was slower than its own serial work
        (the ROADMAP item 2a embarrassment, flagged loudly)."""
        return (self.workers > 1 and bool(self.wall_times)
                and self.speedup < 1.0)

    @property
    def occupancy(self) -> Dict[State, float]:
        """Mean fraction of time per state across replications."""
        merged: Dict[State, float] = {}
        for r in self.results:
            for s, frac in r.occupancy.items():
                merged[s] = merged.get(s, 0.0) + frac
        n = len(self.results)
        return {s: v / n for s, v in merged.items()}

    @property
    def category_occupancy(self) -> Dict[StateCategory, float]:
        """Mean fraction of time in NORMAL / SCAN / RECOVERY."""
        merged = {c: 0.0 for c in StateCategory}
        for r in self.results:
            for c, frac in r.category_occupancy.items():
                merged[c] += frac
        n = len(self.results)
        return {c: v / n for c, v in merged.items()}

    @property
    def loss_time_fraction(self) -> float:
        """Mean loss-time fraction (Definition 3, empirical)."""
        return _mean_and_stderr(
            [r.loss_time_fraction for r in self.results]
        )[0]

    @property
    def loss_time_stderr(self) -> float:
        """Standard error of the loss-time fraction across
        replications — the batch's confidence handle."""
        return _mean_and_stderr(
            [r.loss_time_fraction for r in self.results]
        )[1]

    @property
    def arrivals(self) -> int:
        """Total alert arrivals over all replications."""
        return sum(r.arrivals for r in self.results)

    @property
    def arrivals_lost(self) -> int:
        """Total alerts lost over all replications."""
        return sum(r.arrivals_lost for r in self.results)

    @property
    def jumps(self) -> int:
        """Total state transitions over all replications."""
        return sum(r.jumps for r in self.results)

    @property
    def alert_loss_fraction(self) -> float:
        """Pooled lost/offered alert fraction."""
        if self.arrivals == 0:
            return 0.0
        return self.arrivals_lost / self.arrivals

    @property
    def conformance(self) -> Optional[ConformanceReport]:
        """Merged per-replication conformance verdict (``None`` when
        the batch ran without health monitoring).

        The merge is order-independent (sums and max-severity only),
        so the verdict is identical at any worker count — the same
        invariance the raw results already guarantee.
        """
        reports = [r.conformance for r in self.results
                   if r.conformance is not None]
        if not reports:
            return None
        return merge_conformance(reports)


@dataclass
class FullStackBatchResult:
    """Merged statistics over ``n`` full-stack replications.

    Carries the same fan-out accounting as
    :class:`GillespieBatchResult`: ``wall_times`` / ``elapsed`` /
    ``fan_out_overhead`` and the ``speedup`` / ``speedup_lt_1``
    verdict."""

    results: List[FullStackResult]
    seeds: List[int]
    horizon: float
    workers: int
    wall_times: List[float] = field(default_factory=list)
    elapsed: float = 0.0
    fan_out_overhead: float = 0.0

    @property
    def replications(self) -> int:
        """Number of replications merged."""
        return len(self.results)

    @property
    def speedup(self) -> float:
        """In-worker compute seconds over whole-batch elapsed seconds
        (see :attr:`GillespieBatchResult.speedup`)."""
        if self.elapsed <= 0:
            return 0.0
        return sum(self.wall_times) / self.elapsed

    @property
    def speedup_lt_1(self) -> bool:
        """True when a pooled run was slower than its own serial
        work."""
        return (self.workers > 1 and bool(self.wall_times)
                and self.speedup < 1.0)

    @property
    def category_occupancy(self) -> Dict[StateCategory, float]:
        """Mean fraction of time in NORMAL / SCAN / RECOVERY."""
        merged = {c: 0.0 for c in StateCategory}
        for r in self.results:
            for c, frac in r.category_occupancy.items():
                merged[c] += frac
        n = len(self.results)
        return {c: v / n for c, v in merged.items()}

    @property
    def attacks(self) -> int:
        """Total attack runs over all replications."""
        return sum(r.attacks for r in self.results)

    @property
    def alerts_lost(self) -> int:
        """Total lost alerts over all replications."""
        return sum(r.alerts_lost for r in self.results)

    @property
    def loss_fraction(self) -> float:
        """Pooled lost/offered fraction."""
        if self.attacks == 0:
            return 0.0
        return self.alerts_lost / self.attacks

    @property
    def heals(self) -> int:
        """Total committed batch heals."""
        return sum(r.heals for r in self.results)

    @property
    def repaired_instances(self) -> int:
        """Total task instances undone across all replications."""
        return sum(r.repaired_instances for r in self.results)

    @property
    def all_heals_audited_ok(self) -> bool:
        """True only if **every** replication stayed strictly
        correct."""
        return all(r.all_heals_audited_ok for r in self.results)

    @property
    def conformance(self) -> Optional[ConformanceReport]:
        """Merged per-replication conformance verdict (``None`` when
        the batch ran without health monitoring); order-independent,
        hence worker-count invariant."""
        reports = [r.conformance for r in self.results
                   if r.conformance is not None]
        if not reports:
            return None
        return merge_conformance(reports)


def run_gillespie_batch(
    stg: RecoverySTG,
    horizon: float,
    replications: int,
    workers: int = 1,
    seed: int = 0,
    start: Optional[State] = None,
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> GillespieBatchResult:
    """Run ``replications`` independent Gillespie trajectories.

    Parameters
    ----------
    stg:
        The recovery STG (picklable: the standard rate schedules are
        built from module-level functions).
    horizon:
        Simulated duration of every replication.
    replications, workers:
        Fan-out shape.  ``workers=1`` runs inline without creating a
        pool; ``workers=K`` uses a ``ProcessPoolExecutor`` and returns
        bit-identical results.
    seed:
        Base seed of the replication seed stream
        (:func:`spawn_seeds`).
    start:
        Optional common start state (default NORMAL).
    health, health_config:
        With a :class:`~repro.obs.health.ModelPrediction`, every
        replication runs under a health monitor and the batch result's
        :attr:`~GillespieBatchResult.conformance` merges the
        per-replication verdicts (both are plain picklable data, so
        they fan out to workers like the STG does).
    profiler:
        Optional started :class:`~repro.obs.perf.PhaseProfiler`; the
        batch records its ``batch.worker`` / ``batch.spawn`` /
        ``batch.fan-out`` split into it (profilers never cross the
        process boundary — pooled workers run unprofiled and report
        wall times instead).

    Raises
    ------
    SimulationError
        For ``replications < 1``, ``workers < 1`` or ``horizon <= 0``.
    """
    _validate(replications, workers, horizon)
    seeds = spawn_seeds(seed, replications)
    t0 = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
    outcomes = _fan_out(
        _timed_gillespie,
        [(stg, horizon, s, start, health, health_config)
         for s in seeds],
        workers,
        profiler=profiler,
    )
    elapsed = time.perf_counter() - t0  # lint: allow[DET001] host benchmark timing, not simulated time
    batch = GillespieBatchResult(
        results=[r for r, _ in outcomes],
        seeds=seeds,
        horizon=horizon,
        workers=workers,
        wall_times=[w for _, w in outcomes],
        elapsed=elapsed,
    )
    _account_fan_out(batch, profiler)
    return batch


def run_fullstack_batch(
    config: FullStackConfig,
    horizon: float,
    replications: int,
    workers: int = 1,
    seed: int = 0,
    record_dir: Optional[str] = None,
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> FullStackBatchResult:
    """Run ``replications`` independent full-stack simulations; same
    contract as :func:`run_gillespie_batch` (including the optional
    ``health`` monitoring, merged conformance verdict, and ``profiler``
    fan-out accounting).

    With ``record_dir``, every replication writes a flight-recorder log
    to ``<record_dir>/rep-NNNN.jsonl`` (seed and config in the header).
    Flight logs carry only simulated time, so the files — like the
    results — are bit-identical across worker counts; with ``health``
    the logs additionally contain each replication's SloTransition /
    DriftDetected verdict events.

    One full-stack extra over the Gillespie batch: at ``workers=1``
    the profiler rides *into* each inline replication, so the deep
    pipeline phases (detect/analyze/heal/…) appear nested under
    ``batch.worker``.  Pooled replications run unprofiled — a profiler
    cannot cross the process boundary.
    """
    _validate(replications, workers, horizon)
    seeds = spawn_seeds(seed, replications)
    record_paths: List[Optional[str]] = [None] * replications
    if record_dir is not None:
        os.makedirs(record_dir, exist_ok=True)
        record_paths = [
            os.path.join(record_dir, f"rep-{i:04d}.jsonl")
            for i in range(replications)
        ]
    inline_prof = profiler if workers == 1 else None
    t0 = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
    outcomes = _fan_out(
        _timed_fullstack,
        [(config, horizon, s, p, health, health_config, inline_prof)
         for s, p in zip(seeds, record_paths)],
        workers,
        profiler=profiler,
    )
    elapsed = time.perf_counter() - t0  # lint: allow[DET001] host benchmark timing, not simulated time
    batch = FullStackBatchResult(
        results=[r for r, _ in outcomes],
        seeds=seeds,
        horizon=horizon,
        workers=workers,
        wall_times=[w for _, w in outcomes],
        elapsed=elapsed,
    )
    _account_fan_out(batch, profiler)
    return batch
