"""Discrete-event simulation core.

A minimal but complete event-driven simulator: a time-ordered event heap,
deterministic tie-breaking, lazy cancellation, and run-until horizons.
Higher layers (:mod:`repro.sim.ctmc_sim`, :mod:`repro.sim.recovery_sim`)
schedule their state changes through it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a simulated clock.

    Parameters
    ----------
    observer:
        Optional hook called with each :class:`Event` right after it
        fires — the tracing layer uses it to mirror simulated time into
        an observability clock.  ``None`` (default) costs one check per
        fired event.
    """

    def __init__(
        self,
        observer: Optional[Callable[[Event], None]] = None,
    ) -> None:
        self._heap: List[Event] = []
        self._now = 0.0
        self._fired = 0
        self._observer = observer

    def set_observer(
        self, observer: Optional[Callable[[Event], None]]
    ) -> None:
        """Install (or remove, with ``None``) the fired-event hook."""
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(time=self._now + delay, action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        event = Event(time=time, action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the next event; ``False`` when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._fired += 1
            if event.action is not None:
                event.action()
            if self._observer is not None:
                self._observer(event)
            return True
        return False

    def run_until(self, horizon: float, max_events: int = 10_000_000) -> None:
        """Fire events until the clock passes ``horizon`` (or quiesce).

        The clock is left at ``horizon`` so time-weighted statistics can
        close their last interval.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > horizon:
                break
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before horizon "
                    f"{horizon} (event storm?)"
                )
            self.step()
            fired += 1
        self._now = max(self._now, horizon)
