"""Events for the discrete-event simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event"]

_event_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Events order by ``(time, sequence)``: ties at equal simulated time
    fire in scheduling order, keeping runs deterministic.

    Attributes
    ----------
    time:
        Simulated firing time.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Debugging label shown in traces.
    cancelled:
        A cancelled event is skipped when popped (lazy deletion).
    """

    time: float
    seq: int = field(compare=True, default_factory=lambda: next(_event_counter))
    action: Optional[Callable[[], None]] = field(compare=False, default=None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
