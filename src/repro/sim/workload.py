"""Random workflow workload generation.

Workflow-level experiments (property tests, baseline comparisons) need
many structurally-diverse workflows with realistic damage-spreading
potential: data flowing between tasks, branch decisions that corrupted
data can flip (the Figure 1 phenomenon), and shared objects through
which damage crosses workflow boundaries.

Generated workflows are sequences of *segments* — single tasks or
diamonds (a branch node choosing between two arms that rejoin) — with
deterministic integer arithmetic for task bodies, so that every
execution (and every recovery re-execution) is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ids.attacks import AttackCampaign
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = ["WorkloadConfig", "Workload", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape parameters for generated workloads.

    Attributes
    ----------
    n_workflows:
        Number of workflow specifications (one run each).
    tasks_per_workflow:
        Approximate task count per workflow (diamonds add arm tasks).
    branch_probability:
        Chance that a segment is a diamond instead of a single task.
    n_shared_objects:
        Globally shared data objects; each is writable by exactly one
        workflow (so recovery correctness does not depend on write-write
        interleaving across workflows) but readable by all — the channel
        through which damage spreads across workflows.
    max_extra_reads:
        Extra upstream objects each task may read beyond its immediate
        predecessor.
    value_modulus:
        Task arithmetic is carried out modulo this prime.
    shared_writes:
        When ``False``, shared objects are read-only constants: the
        workflows become independent of their interleaving (useful for
        invariance properties); damage then spreads only within each
        workflow.
    loop_probability:
        Chance that a segment is a *loop*: a setup task computes a
        data-dependent iteration count (1–3, derived from its inputs),
        and a body task repeats itself that many times.  Because the
        count is data, corrupting an upstream task changes how many
        times the loop runs — the repeated-instance (``t_i^k``)
        recovery cases.
    """

    n_workflows: int = 3
    tasks_per_workflow: int = 8
    branch_probability: float = 0.3
    n_shared_objects: int = 3
    max_extra_reads: int = 2
    value_modulus: int = 10_007
    shared_writes: bool = True
    loop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.n_workflows < 1:
            raise ValueError("n_workflows must be >= 1")
        if self.tasks_per_workflow < 2:
            raise ValueError("tasks_per_workflow must be >= 2")
        if not 0.0 <= self.branch_probability <= 1.0:
            raise ValueError("branch_probability must be in [0, 1]")


@dataclass
class Workload:
    """A generated set of workflows plus their initial data."""

    specs: List[WorkflowSpec]
    initial_data: Dict[str, Any]

    def spec_named(self, workflow_id: str) -> WorkflowSpec:
        """Look up a spec by its workflow id."""
        for spec in self.specs:
            if spec.workflow_id == workflow_id:
                return spec
        raise KeyError(workflow_id)


def _linear_body(
    reads: Sequence[str],
    writes: Sequence[str],
    coeffs: Mapping[str, Tuple[Tuple[int, ...], int]],
    modulus: int,
):
    """Deterministic task body: each output is an affine combination of
    the inputs modulo ``modulus``."""
    reads = tuple(reads)
    writes = tuple(writes)

    def compute(inputs: Mapping[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        values = [int(inputs[name]) for name in reads]
        for name in writes:
            weights, bias = coeffs[name]
            acc = bias
            for w, v in zip(weights, values):
                acc += w * v
            out[name] = acc % modulus
        return out

    return compute


def _parity_choice(key: str, even: str, odd: str):
    """Branch decision: arm by the parity of the branch node's output."""

    def choose(visible: Mapping[str, Any]) -> str:
        return even if int(visible[key]) % 2 == 0 else odd

    return choose


class WorkloadGenerator:
    """Generates reproducible random workloads.

    Parameters
    ----------
    config:
        Shape parameters.
    rng:
        Randomness source; the same seed yields the same workload.
    """

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._config = config if config is not None else WorkloadConfig()
        self._rng = rng if rng is not None else random.Random(0)

    @property
    def config(self) -> WorkloadConfig:
        """The generator's configuration."""
        return self._config

    # -- workload -------------------------------------------------------------

    def generate(self, prefix: str = "W") -> Workload:
        """Generate a fresh workload.

        ``prefix`` namespaces the workflow ids (``W0``, ``W1``, ... by
        default) — generated workloads with distinct prefixes can share
        one epoch manager without instance-name collisions.  Shared
        objects keep their unprefixed names, so workloads generated
        with the same shape agree on their initial values.
        """
        cfg = self._config
        shared = [f"s{i}" for i in range(cfg.n_shared_objects)]
        initial: Dict[str, Any] = {name: i + 1 for i, name in enumerate(shared)}
        specs: List[WorkflowSpec] = []
        for w in range(cfg.n_workflows):
            spec, objects = self._generate_workflow(f"{prefix}{w}", w, shared)
            specs.append(spec)
            initial.update(objects)
        return Workload(specs=specs, initial_data=initial)

    def _generate_workflow(
        self,
        workflow_id: str,
        index: int,
        shared: Sequence[str],
    ) -> Tuple[WorkflowSpec, Dict[str, Any]]:
        cfg = self._config
        rng = self._rng
        builder = workflow(workflow_id)
        # Shared objects this workflow may write (single-writer rule).
        own_shared = [
            s for i, s in enumerate(shared)
            if i % max(1, cfg.n_workflows) == index
        ] if cfg.shared_writes else []
        produced: List[str] = []     # objects written so far (any path)
        objects: Dict[str, Any] = {}
        task_no = 0
        prev_tails: List[str] = []

        def new_task(branching_to: Optional[Tuple[str, str]] = None) -> str:
            nonlocal task_no
            task_no += 1
            tid = f"{workflow_id}_t{task_no}"
            own_obj = f"o_{tid}"
            objects[own_obj] = 0
            reads: List[str] = []
            if produced:
                reads.append(produced[-1])
                pool = produced[:-1] + list(shared)
            else:
                pool = list(shared)
            extra = rng.randint(0, cfg.max_extra_reads)
            for candidate in rng.sample(pool, min(extra, len(pool))):
                if candidate not in reads:
                    reads.append(candidate)
            writes = [own_obj]
            if own_shared and rng.random() < 0.3:
                writes.append(rng.choice(own_shared))
            coeffs = {
                name: (
                    tuple(rng.randint(1, 9) for _ in reads),
                    rng.randint(0, 999),
                )
                for name in writes
            }
            choose = None
            if branching_to is not None:
                choose = _parity_choice(own_obj, *branching_to)
            builder.task(
                tid,
                reads=reads,
                writes=writes,
                compute=_linear_body(
                    reads, writes, coeffs, cfg.value_modulus
                ),
                choose=choose,
            )
            produced.append(own_obj)
            return tid

        def link(tails: List[str], head: str) -> None:
            for tail in tails:
                builder.edge(tail, head)

        def make_loop() -> None:
            """setup → body (repeats toward a data-bounded target) → exit."""
            nonlocal task_no, prev_tails
            setup_id = f"{workflow_id}_t{task_no + 1}"
            body_id = f"{workflow_id}_t{task_no + 2}"
            exit_id = f"{workflow_id}_t{task_no + 3}"
            counter = f"cnt_{setup_id}"
            target = f"lim_{setup_id}"
            acc = f"acc_{body_id}"
            objects[counter] = 0
            objects[target] = 0
            objects[acc] = 0

            setup_reads = [produced[-1]] if produced else [shared[0]]
            task_no += 1
            builder.task(
                setup_id,
                reads=setup_reads,
                writes=[counter, target],
                compute=lambda d, _r=tuple(setup_reads), _c=counter,
                _t=target: {
                    _c: 0,
                    _t: 1 + sum(int(d[k]) for k in _r) % 3,
                },
            )
            task_no += 1
            mod = cfg.value_modulus
            builder.task(
                body_id,
                reads=[counter, target, acc],
                writes=[counter, acc],
                compute=lambda d, _c=counter, _a=acc, _m=mod: {
                    _c: d[_c] + 1,
                    _a: (d[_a] * 3 + d[_c]) % _m,
                },
                # Repeat while the counter climbs toward its
                # data-dependent target, but only inside the band a
                # genuine execution can reach.  The counter counts *up*
                # so corruption cannot stall it: a shifted counter
                # either leaves 0..3 at once or keeps strictly growing
                # and leaves within four iterations — the loop
                # terminates under every shift delta except the one
                # congruent to -1 mod the modulus.
                choose=lambda d, _c=counter, _t=target, _b=body_id,
                _e=exit_id: (
                    _b if 0 <= d[_c] < min(int(d[_t]), 4) else _e
                ),
            )
            task_no += 1
            builder.task(
                exit_id,
                reads=[acc],
                writes=[f"o_{exit_id}"],
                compute=lambda d, _a=acc, _o=f"o_{exit_id}", _m=mod: {
                    _o: (d[_a] + 1) % _m
                },
            )
            objects[f"o_{exit_id}"] = 0
            link(prev_tails, setup_id)
            builder.edge(setup_id, body_id)
            builder.edge(body_id, body_id)
            builder.edge(body_id, exit_id)
            produced.append(acc)
            produced.append(f"o_{exit_id}")
            prev_tails = [exit_id]

        remaining = cfg.tasks_per_workflow
        while remaining > 0:
            make_loop_seg = (
                remaining >= 4 and rng.random() < cfg.loop_probability
            )
            if make_loop_seg:
                make_loop()
                remaining -= 3
                continue
            make_diamond = (
                remaining >= 4 and rng.random() < cfg.branch_probability
            )
            if make_diamond:
                # Names must exist before the branch's choose() closure is
                # built, so pre-allocate the arm task ids.
                arm_a = f"{workflow_id}_t{task_no + 2}"
                arm_b = f"{workflow_id}_t{task_no + 3}"
                branch = new_task(branching_to=(arm_a, arm_b))
                link(prev_tails, branch)
                a = new_task()
                b = new_task()
                assert (a, b) == (arm_a, arm_b)
                builder.edge(branch, a)
                builder.edge(branch, b)
                prev_tails = [a, b]
                remaining -= 3
            else:
                head = new_task()
                link(prev_tails, head)
                prev_tails = [head]
                remaining -= 1
        if len(prev_tails) > 1:
            # Open diamond at the end: add a join task.
            join = new_task()
            link(prev_tails, join)
        return builder.build(), objects

    # -- attacks ---------------------------------------------------------------

    def pick_attacks(
        self,
        workload: Workload,
        n_attacks: int = 1,
        delta: int = 4_242,
    ) -> AttackCampaign:
        """Build a campaign corrupting ``n_attacks`` random tasks.

        Each attacked task has every output shifted by ``delta``
        (mod the configured modulus), which both corrupts downstream
        data and can flip parity-based branch decisions — exercising
        all four conditions of Theorem 1.
        """
        rng = self._rng
        modulus = self._config.value_modulus
        campaign = AttackCampaign()
        choices: List[Tuple[str, str]] = []
        for spec in workload.specs:
            for task_id in spec.tasks:
                choices.append((spec.workflow_id, task_id))
        rng.shuffle(choices)
        for wf_id, task_id in choices[:n_attacks]:
            campaign.shift_outputs(
                task_id,
                delta=delta,
                modulus=modulus,
                label=f"corrupt {wf_id}:{task_id}",
            )
        return campaign
