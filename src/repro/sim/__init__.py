"""Discrete-event simulation of the recovery system.

The paper evaluates its architecture purely analytically (CTMC).  This
package adds an operational layer:

- :mod:`repro.sim.events` / :mod:`repro.sim.simulator` — a generic
  discrete-event simulation core;
- :mod:`repro.sim.ctmc_sim` — an exact stochastic (Gillespie) simulation
  of the recovery pipeline's state process, used to cross-validate the
  CTMC's steady-state and loss-probability results;
- :mod:`repro.sim.workload` — random workflow/attack workload generation
  for workflow-level experiments;
- :mod:`repro.sim.recovery_sim` — end-to-end pipeline runs (engine →
  attack → IDS → analyzer → healer → audit);
- :mod:`repro.sim.baselines` — checkpoint/rollback and redo-everything
  baselines the paper argues against;
- :mod:`repro.sim.batch` — parallel replication fan-out over a process
  pool with deterministic per-replication seed streams.
"""

from repro.sim.architecture_sim import ArchitectureSimulator
from repro.sim.baselines import (
    RecoveryCost,
    checkpoint_rollback_cost,
    dependency_recovery_cost,
    full_redo_cost,
)
from repro.sim.batch import (
    FullStackBatchResult,
    GillespieBatchResult,
    run_fullstack_batch,
    run_gillespie_batch,
    spawn_seeds,
)
from repro.sim.bursty import BurstModel, BurstySimulator
from repro.sim.ctmc_sim import GillespieResult, GillespieSimulator
from repro.sim.events import Event
from repro.sim.fullstack import (
    FullStackConfig,
    FullStackResult,
    FullStackSimulator,
)
from repro.sim.recovery_sim import PipelineResult, run_pipeline
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "Event",
    "Simulator",
    "GillespieSimulator",
    "GillespieResult",
    "GillespieBatchResult",
    "FullStackBatchResult",
    "run_gillespie_batch",
    "run_fullstack_batch",
    "spawn_seeds",
    "ArchitectureSimulator",
    "BurstModel",
    "BurstySimulator",
    "FullStackSimulator",
    "FullStackConfig",
    "FullStackResult",
    "WorkloadGenerator",
    "WorkloadConfig",
    "run_pipeline",
    "PipelineResult",
    "RecoveryCost",
    "checkpoint_rollback_cost",
    "full_redo_cost",
    "dependency_recovery_cost",
]
