"""Full-stack timed simulation: the queueing model wrapped around real
attacks, real damage analysis and real heals.

The other simulators abstract recovery work into exponential service
times.  Here the pipeline is real end to end:

- each *attack arrival* (Poisson, rate λ) executes an actual attacked
  workflow run against the shared store and enqueues a real IDS alert
  (bounded queue — arrivals into a full queue are lost; per Section
  IV-D the administrator ultimately reports lost ones, modeled as
  out-of-band reports at the next repair commit);
- each *scan service* runs the actual recovery analyzer on one alert,
  cross-checking it against the queued units (the μ_k work); its
  simulated duration grows accordingly;
- each *recovery service* drains the whole unit queue (duration
  proportional to the number of units); the drained units' repairs
  **commit** — a real batch heal followed by a Definition 2 audit and
  an epoch roll — as soon as no unreported damage is pending (the
  paper's discipline: the system is back to NORMAL only once all known
  damage is repaired);
- the operating rules are the architecture's: scan priority, analyzer
  blocked by a full recovery queue, no scan/recovery overlap.

The simulation reports state occupancies (comparable to the CTMC's
categories), alert losses, and — because every heal is audited — a
proof that the system stayed strictly correct throughout the run.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analyzer import RecoveryAnalyzer
from repro.core.epochs import EpochManager
from repro.core.plan import RecoveryPlan
from repro.errors import SimulationError
from repro.ids.attacks import AttackCampaign
from repro.markov.stg import StateCategory
from repro.obs.events import (
    AlertEnqueued,
    AlertLost,
    EventBus,
    HealFinished,
    HealStarted,
    StateTransition,
    UnitEmitted,
)
from repro.obs.health import (
    ConformanceReport,
    HealthConfig,
    HealthMonitor,
    ModelPrediction,
)
from repro.obs.perf import PhaseProfiler
from repro.sim.simulator import Simulator
from repro.workflow.data import DataStore
from repro.workflow.spec import WorkflowSpec, workflow

__all__ = [
    "FullStackConfig",
    "FullStackResult",
    "FullStackSimulator",
    "run_replication",
]


def run_replication(
    config: "FullStackConfig",
    horizon: float,
    seed: int,
    bus: Optional[EventBus] = None,
    record_path: Optional[str] = None,
    health: Optional[ModelPrediction] = None,
    health_config: Optional[HealthConfig] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> "FullStackResult":
    """One seeded full-stack replication.

    Module-level (hence picklable) entry point used by
    :mod:`repro.sim.batch`; the frozen :class:`FullStackConfig` plus a
    seed fully determine the run.  With ``record_path``, a
    :class:`~repro.obs.recorder.FlightRecorder` captures the run's full
    event stream to that file; every timestamp is simulated time, so
    the file is a pure function of ``(config, horizon, seed)`` —
    byte-identical no matter which process or worker pool produced it.

    With ``health``, a :class:`~repro.obs.health.HealthMonitor` rides
    the run and the result carries its conformance verdict.  The
    monitor attaches *after* the recorder, so a recorded log orders
    each SloTransition/DriftDetected right after the event that caused
    it — which is what lets ``obs replay`` reproduce the verdict
    sequence bit for bit.

    With ``profiler``, the run's phases accumulate into the caller's
    started :class:`~repro.obs.perf.PhaseProfiler` (see
    :class:`FullStackSimulator`).
    """
    from dataclasses import asdict

    from repro.obs.recorder import FlightRecorder

    recorder: Optional[FlightRecorder] = None
    monitor: Optional[HealthMonitor] = None
    if record_path is not None or health is not None:
        if bus is None:
            bus = EventBus()
    if record_path is not None:
        recorder = FlightRecorder(
            label="fullstack", path=record_path,
            meta={"seed": seed, "horizon": horizon,
                  "config": asdict(config) if config is not None else {}},
        ).attach(bus)
        recorder.mark("start", 0.0, state="NORMAL")
    if health is not None:
        monitor = HealthMonitor(health, config=health_config).attach(bus)
    try:
        result = FullStackSimulator(config, random.Random(seed),
                                    bus=bus,
                                    profiler=profiler).run(horizon)
        if recorder is not None:
            recorder.mark("finalize", horizon)
    finally:
        if recorder is not None:
            recorder.close()
    if monitor is not None:
        result.conformance = monitor.report()
    return result


@dataclass(frozen=True)
class FullStackConfig:
    """Knobs of the full-stack simulation.

    Attributes
    ----------
    arrival_rate:
        λ — attacks (and hence alerts) per time unit.
    scan_time:
        Base simulated duration of analyzing one alert with an empty
        recovery queue; each queued unit adds one more ``scan_time``
        (the measured linear cross-check cost).
    unit_recovery_time:
        Simulated duration of executing one recovery unit; draining
        ``k`` units takes ``k × unit_recovery_time``.
    alert_buffer, recovery_buffer:
        Queue capacities (Section IV-E).
    """

    arrival_rate: float = 1.0
    scan_time: float = 1.0 / 15.0
    unit_recovery_time: float = 1.0 / 20.0
    alert_buffer: int = 8
    recovery_buffer: int = 8

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        if self.scan_time <= 0 or self.unit_recovery_time <= 0:
            raise ValueError("service times must be > 0")
        if self.alert_buffer < 1 or self.recovery_buffer < 1:
            raise ValueError("buffers must be >= 1")

    def stg(self):
        """The CTMC abstraction of this configuration.

        Maps the deterministic service *times* onto the model's rate
        schedules (``μ_k = 1/(k·scan_time)``, ``ξ_k`` likewise — the
        paper's linear degradation), giving the
        :class:`~repro.markov.stg.RecoverySTG` whose steady state is
        the health monitor's null model for this simulator.
        """
        from repro.markov.degradation import inverse_k
        from repro.markov.stg import RecoverySTG

        return RecoverySTG(
            arrival_rate=self.arrival_rate,
            scan=inverse_k(1.0 / self.scan_time),
            recovery=inverse_k(1.0 / self.unit_recovery_time),
            recovery_buffer=self.recovery_buffer,
            alert_buffer=self.alert_buffer,
        )


@dataclass
class FullStackResult:
    """Outcome of one full-stack run.

    Attributes
    ----------
    horizon:
        Simulated duration.
    category_occupancy:
        Fraction of time in NORMAL / SCAN / RECOVERY.
    attacks, alerts_lost:
        Attack runs executed / alerts dropped by the full queue.
    heals, all_heals_audited_ok:
        Committed batch heals, and whether every one of them (plus the
        final sweep) left the system strictly correct.
    repaired_instances:
        Total task instances undone across all heals.
    conformance:
        Per-replication SLO/drift verdict when the run was health-
        monitored (see :func:`run_replication`); ``None`` otherwise.
    """

    horizon: float
    category_occupancy: Dict[StateCategory, float]
    attacks: int
    alerts_lost: int
    heals: int
    all_heals_audited_ok: bool
    repaired_instances: int
    conformance: Optional[ConformanceReport] = None

    @property
    def loss_fraction(self) -> float:
        """Fraction of attacks whose alerts were lost."""
        if self.attacks == 0:
            return 0.0
        return self.alerts_lost / self.attacks


def _victim_spec(name: str) -> WorkflowSpec:
    """The per-attack workflow: reads the shared balance, applies a
    delta, records a receipt (so damage chains across attacks)."""
    return (
        workflow(name)
        .task("apply", reads=["balance"],
              writes=["balance", f"receipt_{name}"],
              compute=lambda d: {
                  "balance": d["balance"] + 10,
                  f"receipt_{name}": d["balance"] + 10,
              })
        .build()
    )


class FullStackSimulator:
    """Timed simulation with a real store, log, analyzer and healer.

    Parameters
    ----------
    config, rng:
        Simulation knobs and randomness source.
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached, the
        whole pipeline publishes typed events stamped with *simulated*
        time — alert arrivals and losses, scan steps (via the real
        analyzer), unit emissions, NORMAL/SCAN/RECOVERY transitions,
        and heal lifecycles including per-task undo/redo from the real
        healer.  ``None`` (default) adds no observable cost.
    profiler:
        Optional :class:`repro.obs.perf.PhaseProfiler` (started by the
        caller); when given, every event-loop callback runs inside an
        attributed phase — detect / buffer-wait / analyze (with the
        analyzer's closure/plan/verify split) / schedule / heal (with
        the healer's undo/settle/reconcile split) / audit — in wall
        time *and* simulated time.
    """

    def __init__(
        self,
        config: Optional[FullStackConfig] = None,
        rng: Optional[random.Random] = None,
        bus: Optional[EventBus] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self._config = config if config is not None else FullStackConfig()
        self._rng = rng if rng is not None else random.Random(0)
        self._bus = bus
        self._profiler = profiler

    def run(self, horizon: float) -> FullStackResult:
        """Simulate ``[0, horizon]``; remaining damage is healed in a
        final sweep so the end-state audit covers everything."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        cfg, rng = self._config, self._rng
        bus = self._bus if self._bus is not None and self._bus.active \
            else None
        prof = self._profiler
        sim = Simulator()

        #: uid → arrival time of accepted alerts (buffer-wait dwell).
        enqueued_at: Dict[str, float] = {}
        #: Simulated duration of the service that just completed, set at
        #: dispatch — the sim-time side of the analyze/heal phases.
        pending_service = {"scan": 0.0, "recovery": 0.0}

        initial = {"balance": 100}
        manager = EpochManager(DataStore(initial), initial)

        alert_queue: List[str] = []          # uids awaiting analysis
        unit_queue: List[RecoveryPlan] = []  # units awaiting execution
        executed_uids: List[str] = []        # drained, not yet committed
        lost_backlog: List[str] = []         # lost alerts (admin reports)
        scanning = False
        recovering = False
        attacks = 0
        alerts_lost = 0
        heals = 0
        repaired = 0
        audits_ok = True

        time_in: Dict[StateCategory, float] = {
            c: 0.0 for c in StateCategory
        }
        last = 0.0

        def category() -> StateCategory:
            if alert_queue or scanning:
                return StateCategory.SCAN
            if unit_queue or recovering:
                return StateCategory.RECOVERY
            return StateCategory.NORMAL

        last_category = StateCategory.NORMAL

        def account() -> None:
            nonlocal last
            now = min(sim.now, horizon)
            time_in[category()] += now - last
            last = now

        def note_state() -> None:
            """Publish a StateTransition if the category changed; call
            after queue/flag mutations so timestamps match the cause."""
            nonlocal last_category
            if bus is None:
                return
            cat = category()
            if cat is not last_category:
                bus.publish(StateTransition(
                    min(sim.now, horizon),
                    old=last_category.name, new=cat.name,
                ))
                last_category = cat

        def commit_repairs() -> None:
            """Real heal of everything drained so far, plus admin
            reports for lost alerts; runs at quiescence."""
            nonlocal heals, repaired, audits_ok
            uids = executed_uids + lost_backlog
            if not uids:
                return
            executed_uids.clear()
            lost_backlog.clear()
            now = min(sim.now, horizon)
            if bus is not None:
                bus.publish(HealStarted(now, malicious=tuple(uids)))
            with (prof.phase("heal") if prof is not None
                  else nullcontext()):
                report = manager.heal(uids, bus=bus, clock=lambda: now,
                                      profiler=prof)
            heals += 1
            repaired += len(report.undone)
            with (prof.phase("audit") if prof is not None
                  else nullcontext()):
                audits_ok = audits_ok and manager.audit().ok
            if bus is not None:
                bus.publish(HealFinished(
                    now,
                    undone=len(report.undone),
                    redone=len(report.redone),
                    kept=len(report.kept),
                    abandoned=len(report.abandoned),
                    new_executions=len(report.new_executions),
                    duration=0.0,  # commits are instantaneous in sim time
                ))

        def dispatch() -> None:
            nonlocal scanning, recovering
            if scanning or recovering:
                return
            blocked = len(unit_queue) >= cfg.recovery_buffer
            if alert_queue and not blocked:
                scanning = True
                duration = cfg.scan_time * (1 + len(unit_queue))
                pending_service["scan"] = duration
                sim.schedule(duration, scan_done, "scan")
            elif unit_queue and (not alert_queue or blocked):
                recovering = True
                duration = cfg.unit_recovery_time * len(unit_queue)
                pending_service["recovery"] = duration
                sim.schedule(duration, recovery_done, "recovery")
            elif not alert_queue and not unit_queue:
                commit_repairs()  # quiescent: repairs take effect

        def attack() -> None:
            # Whole body under "detect": the attacked run, the alert
            # admission decision and the (cheap) dispatch.  dispatch()
            # cannot reach commit_repairs here — the alert queue is
            # never empty after an arrival — so heal/audit stay
            # top-level phases.
            nonlocal attacks, alerts_lost
            with (prof.phase("detect") if prof is not None
                  else nullcontext()):
                account()
                attacks += 1
                name = f"atk{attacks}"
                campaign = AttackCampaign().transform_task(
                    "apply",
                    lambda i, o: {
                        k: (v + 5000 if k == "balance" else v)
                        for k, v in o.items()
                    },
                    workflow_instance=name,
                )
                manager.run_workflow_attacked(
                    _victim_spec(name), campaign, name=name
                )
                uid = campaign.malicious_uids[0]
                if len(alert_queue) >= cfg.alert_buffer:
                    alerts_lost += 1
                    lost_backlog.append(uid)
                    if bus is not None:
                        bus.publish(AlertLost(
                            min(sim.now, horizon), uid=uid,
                            queue_depth=len(alert_queue),
                        ))
                else:
                    alert_queue.append(uid)
                    enqueued_at[uid] = min(sim.now, horizon)
                    if bus is not None:
                        bus.publish(AlertEnqueued(
                            min(sim.now, horizon), uid=uid,
                            queue_depth=len(alert_queue),
                        ))
                sim.schedule(rng.expovariate(cfg.arrival_rate), attack,
                             "attack")
                dispatch()
                note_state()

        def scan_done() -> None:
            # Whole body under "analyze" (the closure/plan split comes
            # from the analyzer's own sub-phases).  dispatch() cannot
            # commit here — the unit queue is never empty after the
            # plan is appended.
            nonlocal scanning
            if prof is not None:
                # Recorded before the phase opens so both land beside
                # (not inside) "analyze", at whatever stack depth this
                # run executes — top level standalone, under
                # "batch.worker" in an inline batch.  Sim-time only:
                # wall stays zero, so attribution is undistorted.
                dwell_now = min(sim.now, horizon)
                queued_at = enqueued_at.pop(alert_queue[0], None)
                if queued_at is not None:
                    prof.add_external("buffer-wait", 0.0,
                                      sim=dwell_now - queued_at)
                # The scan service's simulated duration is the analyze
                # phase's sim-time side.
                prof.add_external("analyze", 0.0,
                                  sim=pending_service["scan"], calls=0)
            with (prof.phase("analyze") if prof is not None
                  else nullcontext()):
                account()
                scanning = False
                uid = alert_queue.pop(0)
                now = min(sim.now, horizon)
                analyzer = RecoveryAnalyzer(
                    manager.log, manager.specs_by_instance,
                    bus=bus, clock=lambda: now, profiler=prof,
                )
                plan = analyzer.analyze([uid],
                                        outstanding=list(unit_queue))
                unit_queue.append(plan)
                if bus is not None:
                    bus.publish(UnitEmitted(
                        now, units=plan.units,
                        queue_depth=len(unit_queue),
                    ))
                dispatch()
                note_state()

        def recovery_done() -> None:
            # The drain itself is "schedule"; dispatch() stays OUTSIDE
            # the phase because quiescence commits repairs here, and
            # the heal/audit phases must stay top-level for honest
            # single-count attribution.
            nonlocal recovering
            if prof is not None:
                # The recovery service's simulated duration is the
                # heal phase's sim-time side; recorded outside the
                # schedule phase so it merges with the wall-time "heal"
                # entry that commit_repairs records at this same depth.
                prof.add_external("heal", 0.0,
                                  sim=pending_service["recovery"],
                                  calls=0)
            with (prof.phase("schedule") if prof is not None
                  else nullcontext()):
                account()
                recovering = False
                if bus is not None:
                    # Realized dispatch order of the drained units,
                    # FIFO across units, Theorem 3 order within each.
                    from repro.workflow.scheduler import (
                        PartialOrderScheduler,
                    )

                    now = min(sim.now, horizon)
                    for plan in unit_queue:
                        PartialOrderScheduler(
                            plan.order, executor=lambda action: None,
                            bus=bus, clock=lambda: now,
                        ).run()
                for plan in unit_queue:
                    executed_uids.extend(plan.alert_uids)
                unit_queue.clear()
            dispatch()
            note_state()

        if cfg.arrival_rate > 0:
            sim.schedule(rng.expovariate(cfg.arrival_rate), attack,
                         "attack")
        sim.run_until(horizon)
        account()

        # Final sweep: heal everything still anywhere in the pipeline.
        executed_uids.extend(alert_queue)
        alert_queue.clear()
        for plan in unit_queue:
            executed_uids.extend(plan.alert_uids)
        unit_queue.clear()
        scanning = recovering = False
        commit_repairs()
        note_state()

        return FullStackResult(
            horizon=horizon,
            category_occupancy={
                c: t / horizon for c, t in time_in.items()
            },
            attacks=attacks,
            alerts_lost=alerts_lost,
            heals=heals,
            all_heals_audited_ok=audits_ok,
            repaired_instances=repaired,
        )
