"""Recovery baselines the paper argues against.

Section I dismisses two classic alternatives:

- **checkpoint rollback** — "rolls back the whole workflow system to a
  specific time.  All work, including both malicious tasks and normal
  tasks, after the specific time will be lost";
- **redo everything** — the degenerate safe strategy: distrust the whole
  log and re-execute it.

This module computes the *cost* of each strategy on the same attacked
log that the dependency-based healer repairs, in directly comparable
units (task executions preserved / re-executed / undone), for the
baseline-comparison benchmark (Extension B in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.healer import HealReport
from repro.workflow.log import SystemLog

__all__ = [
    "RecoveryCost",
    "checkpoint_rollback_cost",
    "full_redo_cost",
    "dependency_recovery_cost",
]


@dataclass(frozen=True)
class RecoveryCost:
    """Comparable cost of one recovery strategy on one attacked log.

    Attributes
    ----------
    strategy:
        Human-readable strategy name.
    preserved:
        Committed task executions whose results survive untouched.
    re_executed:
        Task executions performed during recovery (redos + new paths).
    undone:
        Committed task executions whose effects are removed.
    """

    strategy: str
    preserved: int
    re_executed: int
    undone: int

    @property
    def total_recovery_work(self) -> int:
        """Undo plus re-execution operations."""
        return self.re_executed + self.undone

    def wasted_good_work(self, damaged: int) -> int:
        """Executions discarded although their results were correct.

        ``damaged`` is the true number of incorrect executions (from the
        healer's undo analysis); anything undone beyond that was good
        work thrown away.  Near zero for the dependency-based healer by
        construction; for checkpoints it is everything after the
        rollback point that was not actually damaged.
        """
        return max(0, self.undone - damaged)


def checkpoint_rollback_cost(
    log: SystemLog,
    malicious: Iterable[str],
    checkpoint_seq: Optional[int] = None,
) -> RecoveryCost:
    """Cost of rolling the whole system back to a checkpoint.

    The checkpoint defaults to the instant just before the first
    malicious commit (the *best possible* checkpoint; real systems
    checkpoint periodically and lose even more).  Every record at or
    after the checkpoint is lost and must be re-executed, malicious or
    not.
    """
    records = log.normal_records()
    bad = set(malicious)
    if checkpoint_seq is None:
        bad_seqs = [r.seq for r in records if r.uid in bad]
        checkpoint_seq = min(bad_seqs) if bad_seqs else len(records)
    preserved = sum(1 for r in records if r.seq < checkpoint_seq)
    lost = len(records) - preserved
    return RecoveryCost(
        strategy="checkpoint-rollback",
        preserved=preserved,
        re_executed=lost,
        undone=lost,
    )


def full_redo_cost(log: SystemLog) -> RecoveryCost:
    """Cost of distrusting the entire log: undo and redo everything."""
    n = len(log.normal_records())
    return RecoveryCost(
        strategy="redo-everything",
        preserved=0,
        re_executed=n,
        undone=n,
    )


def dependency_recovery_cost(report: HealReport) -> RecoveryCost:
    """Cost actually paid by the dependency-based healer."""
    return RecoveryCost(
        strategy="dependency-based",
        preserved=len(report.kept),
        re_executed=len(report.redone) + len(report.new_executions),
        undone=len(report.undone),
    )
