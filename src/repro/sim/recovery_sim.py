"""End-to-end pipeline simulation.

Wires the whole system together the way Figure 2 draws it:

    engine runs workflows (under attack) → IDS inspects the log and
    emits alerts → recovery analyzer builds a plan → healer repairs →
    strict-correctness audit checks Definition 2.

:func:`run_pipeline` is the single entry point used by integration
tests, property tests, examples and the baseline benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.analyzer import RecoveryAnalyzer
from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import Healer, HealReport
from repro.core.plan import RecoveryPlan
from repro.ids.attacks import AttackCampaign
from repro.ids.detector import DetectorConfig, IntrusionDetector
from repro.sim.workload import Workload
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine, RunResult
from repro.workflow.log import SystemLog

__all__ = ["PipelineResult", "run_pipeline"]


@dataclass
class PipelineResult:
    """Everything produced by one end-to-end run.

    Attributes
    ----------
    store, log:
        The (healed) system state.
    run_results:
        Per-workflow execution summaries of the attacked run.
    malicious_ground_truth:
        Uids the attack campaign actually tampered with.
    alert_uids:
        Uids the IDS reported — including false alarms, which the
        recovery system cannot distinguish from genuine reports.
    plan:
        The static recovery plan built from the alerts.
    heal:
        What the healer did.
    audit:
        Definition 2 verdict over the healed system.
    """

    store: DataStore
    log: SystemLog
    run_results: List[RunResult]
    malicious_ground_truth: Tuple[str, ...]
    alert_uids: Tuple[str, ...]
    plan: Optional[RecoveryPlan]
    heal: Optional[HealReport]
    audit: Optional[CorrectnessReport]
    initial_data: Dict[str, Any] = field(default_factory=dict)
    specs_by_instance: Dict[str, Any] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """Did the pipeline end in a strictly correct state?"""
        return self.audit is not None and self.audit.ok


def run_pipeline(
    workload: Workload,
    campaign: Optional[AttackCampaign] = None,
    detector_config: Optional[DetectorConfig] = None,
    policy: str = "round_robin",
    seed: int = 0,
    heal: bool = True,
) -> PipelineResult:
    """Run workflows under attack, detect, analyze, heal and audit.

    Parameters
    ----------
    workload:
        Specs and initial data (see
        :class:`~repro.sim.workload.WorkloadGenerator`).
    campaign:
        Attack campaign; ``None`` runs clean (useful for oracles).
    detector_config:
        IDS knobs; defaults to a perfect, instant detector.
    policy:
        Interleaving policy for the engine (``round_robin`` /
        ``sequential`` / ``random``).
    seed:
        Seeds the engine and detector randomness.
    heal:
        Skip analysis/healing when ``False`` (produce the attacked state
        only).
    """
    store = DataStore(workload.initial_data)
    log = SystemLog()
    engine = Engine(store, log, rng=random.Random(seed))
    runs = [engine.new_run(spec, f"{spec.workflow_id}.run") for spec in
            workload.specs]
    run_results = engine.interleave(runs, policy=policy, tamper=campaign)

    ground_truth: Tuple[str, ...] = (
        campaign.malicious_uids if campaign is not None else ()
    )
    if not heal:
        return PipelineResult(
            store=store,
            log=log,
            run_results=run_results,
            malicious_ground_truth=ground_truth,
            alert_uids=(),
            plan=None,
            heal=None,
            audit=None,
            initial_data=dict(workload.initial_data),
            specs_by_instance=engine.specs_by_instance,
        )

    detector = IntrusionDetector(
        campaign if campaign is not None else AttackCampaign(),
        config=detector_config,
        rng=random.Random(seed + 1),
    )
    detector.inspect(log, now=0.0)
    alerts = detector.drain()
    # Per Section IV-D, instances the IDS missed are ultimately reported
    # by the administrator; model that as late manual reports so the
    # recovery input is complete.
    for uid in detector.missed:
        alerts.append(detector.administrator_report(uid))
    alert_uids = tuple(a.uid for a in alerts)

    analyzer = RecoveryAnalyzer(log, engine.specs_by_instance)
    plan = analyzer.analyze(alerts)

    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal(alert_uids)

    audit = audit_strict_correctness(
        engine.specs_by_instance,
        workload.initial_data,
        report.final_history,
        store.snapshot(),
    )
    return PipelineResult(
        store=store,
        log=log,
        run_results=run_results,
        malicious_ground_truth=ground_truth,
        alert_uids=alert_uids,
        plan=plan,
        heal=report,
        audit=audit,
        initial_data=dict(workload.initial_data),
        specs_by_instance=engine.specs_by_instance,
    )
