"""Parameter sensitivity of the recovery system's steady state.

Section VI asks designers to decide *where to spend*: faster base rates
(μ₁, ξ₁), flatter degradation, or bigger buffers.  Elasticities answer
that quantitatively: the percent change of a metric per percent change
of a parameter at the design point,

    E_p = (∂m / m) / (∂p / p)   (central finite differences)

An elasticity of −8 for ξ₁ means a 1 % faster scheduler cuts the metric
(e.g. loss probability) by ≈8 % — far better value than a parameter
with elasticity −0.5.  Buffer size is discrete, so its entry reports
the relative metric change for one extra slot instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ModelError
from repro.markov.degradation import RateFunction, power_law
from repro.markov.metrics import (
    category_probabilities,
    loss_probability,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, StateCategory

__all__ = ["Sensitivity", "loss_sensitivities", "normal_sensitivities"]


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of one metric with respect to one parameter.

    Attributes
    ----------
    parameter:
        ``"lambda"``, ``"mu1"``, ``"xi1"`` or ``"buffer"``.
    base_value:
        Parameter value at the design point.
    metric_at_base:
        Metric value at the design point.
    elasticity:
        ``d(log metric) / d(log parameter)``; for the discrete buffer,
        the relative metric change per added slot.
    """

    parameter: str
    base_value: float
    metric_at_base: float
    elasticity: float


def _metric_at(
    lam: float,
    mu1: float,
    xi1: float,
    buffer_size: int,
    alpha: float,
    metric: Callable[[RecoverySTG], float],
) -> float:
    # Each evaluation builds a fresh STG, but generator assembly hits
    # the per-shape structure cache in repro.markov.stg — a sweep over
    # λ/μ/ξ only refills rate values, never rebuilds the pattern.
    stg = RecoverySTG(
        arrival_rate=lam,
        scan=power_law(mu1, alpha),
        recovery=power_law(xi1, alpha),
        recovery_buffer=buffer_size,
    )
    return metric(stg)


def _sensitivities(
    lam: float,
    mu1: float,
    xi1: float,
    buffer_size: int,
    alpha: float,
    metric: Callable[[RecoverySTG], float],
    rel_step: float,
) -> List[Sensitivity]:
    if not 0 < rel_step < 0.5:
        raise ModelError(f"rel_step must be in (0, 0.5), got {rel_step}")
    base = _metric_at(lam, mu1, xi1, buffer_size, alpha, metric)
    floor = 1e-12
    out: List[Sensitivity] = []
    for name, value in (("lambda", lam), ("mu1", mu1), ("xi1", xi1)):
        lo_params = {"lambda": lam, "mu1": mu1, "xi1": xi1}
        hi_params = dict(lo_params)
        lo_params[name] = value * (1 - rel_step)
        hi_params[name] = value * (1 + rel_step)
        lo = _metric_at(lo_params["lambda"], lo_params["mu1"],
                        lo_params["xi1"], buffer_size, alpha, metric)
        hi = _metric_at(hi_params["lambda"], hi_params["mu1"],
                        hi_params["xi1"], buffer_size, alpha, metric)
        # Central difference of log(metric) w.r.t. log(parameter).
        import math

        d_log_metric = math.log(max(hi, floor)) - math.log(max(lo, floor))
        d_log_param = math.log(1 + rel_step) - math.log(1 - rel_step)
        out.append(
            Sensitivity(name, value, base, d_log_metric / d_log_param)
        )
    # Discrete buffer: relative change for one extra slot.
    bumped = _metric_at(lam, mu1, xi1, buffer_size + 1, alpha, metric)
    rel_change = (bumped - base) / max(base, floor)
    out.append(
        Sensitivity("buffer", float(buffer_size), base, rel_change)
    )
    return out


def loss_sensitivities(
    lam: float = 1.0,
    mu1: float = 15.0,
    xi1: float = 20.0,
    buffer_size: int = 15,
    alpha: float = 1.0,
    rel_step: float = 0.05,
    backend: Optional[str] = None,
) -> List[Sensitivity]:
    """Elasticities of the steady-state **loss probability**.

    ``backend`` is forwarded to every
    :func:`~repro.markov.steady_state.steady_state` solve of the sweep
    (``None`` = auto by state count).
    """

    def metric(stg: RecoverySTG) -> float:
        return loss_probability(
            stg, steady_state(stg.ctmc(), backend=backend)
        )

    return _sensitivities(lam, mu1, xi1, buffer_size, alpha, metric,
                          rel_step)


def normal_sensitivities(
    lam: float = 1.0,
    mu1: float = 15.0,
    xi1: float = 20.0,
    buffer_size: int = 15,
    alpha: float = 1.0,
    rel_step: float = 0.05,
    backend: Optional[str] = None,
) -> List[Sensitivity]:
    """Elasticities of the steady-state **P(NORMAL)**.

    ``backend`` selects the steady-state solver path for every
    evaluation in the sweep, exactly as in
    :func:`loss_sensitivities`.
    """

    def metric(stg: RecoverySTG) -> float:
        pi = steady_state(stg.ctmc(), backend=backend)
        return category_probabilities(stg, pi)[StateCategory.NORMAL]

    return _sensitivities(lam, mu1, xi1, buffer_size, alpha, metric,
                          rel_step)
