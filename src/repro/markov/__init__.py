"""Continuous-Time Markov Chain model of the recovery system.

Implements Sections IV-C through VI of the paper:

- :mod:`repro.markov.degradation` — the ``μ_k = f(μ_1, k)`` and
  ``ξ_k = g(ξ_1, k)`` rate-degradation families;
- :mod:`repro.markov.ctmc` — generic finite-state CTMCs (generator
  matrices, validation);
- :mod:`repro.markov.stg` — the recovery system's state transition graph
  (Figure 3) with finite buffers (Section IV-E);
- :mod:`repro.markov.steady_state` — Equation 1 (``πQ = 0``);
- :mod:`repro.markov.transient` — Equations 2 and 3 (transient
  probabilities and cumulative state times), via uniformization and the
  matrix exponential;
- :mod:`repro.markov.metrics` — loss probability (Definition 3),
  ε-convergence (Definition 4), expected queue lengths;
- :mod:`repro.markov.design` — the Section VI design-guideline
  procedure;
- :mod:`repro.markov.backend` — dense/sparse solver backend selection
  (auto by state count, explicit override, loud failure when scipy is
  missing).
"""

from repro.markov.backend import (
    SPARSE_AUTO_THRESHOLD,
    resolve_backend,
    sparse_available,
)

from repro.markov.calibration import (
    PowerLawFit,
    calibrated_schedules,
    fit_power_law,
    measure_recovery_rates,
    measure_scan_rates,
)
from repro.markov.ctmc import CTMC
from repro.markov.degradation import (
    RateFunction,
    constant,
    geometric,
    inverse_k,
    linear_decay,
    power_law,
)
from repro.markov.design import (
    DesignResult,
    cost_effective_rate,
    design_system,
    peak_resilience,
    sweep_buffer_sizes,
)
from repro.markov.metrics import (
    category_probabilities,
    epsilon_convergence,
    expected_alerts,
    expected_lost_alerts,
    expected_recovery_units,
    loss_probability,
)
from repro.markov.sensitivity import (
    Sensitivity,
    loss_sensitivities,
    normal_sensitivities,
)
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory
from repro.markov.transient import (
    cumulative_times,
    transient_probabilities,
    transient_probabilities_expm,
)

__all__ = [
    "CTMC",
    "SPARSE_AUTO_THRESHOLD",
    "resolve_backend",
    "sparse_available",
    "RateFunction",
    "constant",
    "inverse_k",
    "power_law",
    "geometric",
    "linear_decay",
    "RecoverySTG",
    "State",
    "StateCategory",
    "steady_state",
    "transient_probabilities",
    "transient_probabilities_expm",
    "cumulative_times",
    "loss_probability",
    "category_probabilities",
    "expected_alerts",
    "expected_recovery_units",
    "epsilon_convergence",
    "expected_lost_alerts",
    "design_system",
    "sweep_buffer_sizes",
    "peak_resilience",
    "cost_effective_rate",
    "DesignResult",
    "PowerLawFit",
    "fit_power_law",
    "measure_scan_rates",
    "measure_recovery_rates",
    "calibrated_schedules",
    "Sensitivity",
    "loss_sensitivities",
    "normal_sensitivities",
]
