"""The recovery system's state transition graph (Figure 3).

A state is a pair ``(a, r)``: ``a`` IDS alerts queued, ``r`` units of
recovery tasks queued (one unit per processed alert).  The categories of
Section IV-C:

- ``(0, 0)`` — NORMAL: nothing to analyze, nothing to repair;
- ``(a, r)`` with ``a > 0`` — SCAN: the analyzer processes alerts;
  recovery tasks are **not** executed (a redo might read objects a
  fresh alert is about to mark damaged);
- ``(0, r)`` with ``r > 0`` — RECOVERY: the alert queue is empty; the
  scheduler executes recovery units.

Transitions:

- *arrival* — ``(a, r) → (a+1, r)`` at rate ``λ`` while ``a < A``; when
  the alert buffer is full, new alerts are **lost**;
- *scan* — ``(a, r) → (a-1, r+1)`` at rate ``μ_a`` while ``a > 0`` and
  ``r < R``: the analyzer's work grows with the items in its queue
  (``S:n`` advances at ``μ_n``); when the recovery buffer is full
  (``r = R``) the analyzer is *blocked* (Section IV-E) and alerts pile
  up;
- *recovery* — ``(a, r) → (a, r-1)`` at rate ``ξ_r`` when ``a = 0``
  (RECOVERY state) **or** ``r = R``: a full recovery queue blocks the
  analyzer, so the scheduler drains units even though alerts are
  pending.  Scan and recovery still never run in parallel — exactly one
  of them is enabled in every state — which is the paper's reason the
  system "cannot be modeled by a queuing network".  Without this drain
  rule the state (alert buffer full, recovery buffer full) would be
  absorbing: the analyzer blocked by the full recovery queue and the
  scheduler blocked by pending alerts, a deadlock the paper's system
  clearly does not have (its steady states keep recovering).

Following Section IV-E, an ``n``-sized recovery buffer is modeled as an
``n × n`` STG: both buffers default to the same size.  The *right edge* —
the loss states of Definition 3 — are the states with the **alert queue
full** (``a = A``): these are the states in which newly arriving IDS
alerts are lost.  A full recovery queue is what drives the system there
("as long as the queue of recovery tasks is full, the system will be at
states at the right edge of STG"): with ``r = R`` the analyzer blocks,
alerts accumulate, and the system parks at ``a = A`` until recovery
frees queue space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.degradation import RateFunction, inverse_k

__all__ = ["State", "StateCategory", "RecoverySTG"]


# -- structure cache ---------------------------------------------------------
#
# The *pattern* of STG transitions (which (src, dst) pairs exist, and
# whether each is an arrival / scan / recovery edge with which queue
# length) depends only on the buffer shape (A, R) — never on λ, μ, ξ.
# Parameter sweeps (Figures 4–6, sensitivity analysis, calibration)
# rebuild the generator thousands of times over a handful of shapes, so
# the pattern is computed once per shape and every rebuild is just a
# vectorized fill of the rate values into pre-sized triplet arrays.

_ARRIVAL, _SCAN, _RECOVERY = 0, 1, 2


@dataclass(frozen=True)
class _STGStructure:
    """Transition pattern of an (A, R)-shaped STG, alert-major order."""

    rows: np.ndarray   # source state indices
    cols: np.ndarray   # destination state indices
    kind: np.ndarray   # _ARRIVAL / _SCAN / _RECOVERY per edge
    k: np.ndarray      # queue-length argument of the rate schedule


_STRUCTURE_CACHE: Dict[Tuple[int, int], _STGStructure] = {}


def _stg_structure(alert_buffer: int, recovery_buffer: int) -> _STGStructure:
    """The (cached) transition pattern for buffer shape ``(A, R)``."""
    key = (alert_buffer, recovery_buffer)
    cached = _STRUCTURE_CACHE.get(key)
    if cached is not None:
        return cached
    A, R = alert_buffer, recovery_buffer
    rows: List[int] = []
    cols: List[int] = []
    kind: List[int] = []
    ks: List[int] = []

    def idx(a: int, r: int) -> int:
        return a * (R + 1) + r

    for a in range(A + 1):
        for r in range(R + 1):
            if a < A:
                rows.append(idx(a, r))
                cols.append(idx(a + 1, r))
                kind.append(_ARRIVAL)
                ks.append(0)
            if a > 0 and r < R:
                rows.append(idx(a, r))
                cols.append(idx(a - 1, r + 1))
                kind.append(_SCAN)
                ks.append(a)
            if r > 0 and (a == 0 or r == R):
                rows.append(idx(a, r))
                cols.append(idx(a, r - 1))
                kind.append(_RECOVERY)
                ks.append(r)
    structure = _STGStructure(
        rows=np.asarray(rows, dtype=np.int64),
        cols=np.asarray(cols, dtype=np.int64),
        kind=np.asarray(kind, dtype=np.int64),
        k=np.asarray(ks, dtype=np.int64),
    )
    _STRUCTURE_CACHE[key] = structure
    return structure


class StateCategory(str, Enum):
    """The paper's three state families."""

    NORMAL = "normal"
    SCAN = "scan"
    RECOVERY = "recovery"


@dataclass(frozen=True, order=True)
class State:
    """One STG state: ``alerts`` queued, ``units`` of recovery tasks
    queued."""

    alerts: int
    units: int

    @property
    def category(self) -> StateCategory:
        """NORMAL / SCAN / RECOVERY per Section IV-C."""
        if self.alerts > 0:
            return StateCategory.SCAN
        if self.units > 0:
            return StateCategory.RECOVERY
        return StateCategory.NORMAL

    def __str__(self) -> str:
        if self.category is StateCategory.NORMAL:
            return "N"
        if self.category is StateCategory.SCAN:
            return f"S:{self.alerts}/{self.units}"
        return f"R:{self.units}"


class RecoverySTG:
    """Finite-buffer STG of the attack recovery system.

    Parameters
    ----------
    arrival_rate:
        ``λ`` — Poisson rate of IDS alerts.
    scan:
        ``μ`` schedule: ``scan(k)`` is the alert-processing rate with
        ``k`` alerts queued (``μ_a`` is used in state ``(a, r)``).
    recovery:
        ``ξ`` schedule: ``recovery(r)`` is the unit-execution rate with
        ``r`` units queued.
    recovery_buffer:
        ``R`` — capacity of the recovery-task queue (the paper's
        performance-critical buffer).
    alert_buffer:
        ``A`` — capacity of the alert queue; defaults to ``R`` (the
        paper's square ``n × n`` STG).
    """

    def __init__(
        self,
        arrival_rate: float,
        scan: RateFunction,
        recovery: RateFunction,
        recovery_buffer: int,
        alert_buffer: Optional[int] = None,
    ) -> None:
        if arrival_rate < 0:
            raise ModelError(f"arrival rate must be >= 0, got {arrival_rate}")
        if recovery_buffer < 1:
            raise ModelError(
                f"recovery buffer must be >= 1, got {recovery_buffer}"
            )
        self._lambda = float(arrival_rate)
        self._scan = scan
        self._recovery = recovery
        self._R = int(recovery_buffer)
        self._A = int(alert_buffer) if alert_buffer is not None else self._R
        if self._A < 1:
            raise ModelError(f"alert buffer must be >= 1, got {self._A}")
        self._states: List[State] = [
            State(a, r)
            for a in range(self._A + 1)
            for r in range(self._R + 1)
        ]
        self._ctmc: Optional[CTMC] = None

    # -- parameters ---------------------------------------------------------

    @property
    def arrival_rate(self) -> float:
        """``λ``."""
        return self._lambda

    @property
    def recovery_buffer(self) -> int:
        """``R``."""
        return self._R

    @property
    def alert_buffer(self) -> int:
        """``A``."""
        return self._A

    @property
    def scan_schedule(self) -> RateFunction:
        """The ``μ_k`` schedule."""
        return self._scan

    @property
    def recovery_schedule(self) -> RateFunction:
        """The ``ξ_k`` schedule."""
        return self._recovery

    @property
    def states(self) -> List[State]:
        """All states, alert-major order."""
        return list(self._states)

    # -- structure ------------------------------------------------------------

    def transition_rates(self) -> Dict[Tuple[State, State], float]:
        """Sparse transition-rate map of the STG."""
        rates: Dict[Tuple[State, State], float] = {}
        for s in self._states:
            a, r = s.alerts, s.units
            if a < self._A and self._lambda > 0:
                rates[(s, State(a + 1, r))] = self._lambda
            if a > 0 and r < self._R:
                mu = self._scan(a)
                if mu > 0:
                    rates[(s, State(a - 1, r + 1))] = mu
            if r > 0 and (a == 0 or r == self._R):
                xi = self._recovery(r)
                if xi > 0:
                    rates[(s, State(a, r - 1))] = xi
        return rates

    def ctmc(self) -> CTMC:
        """The STG as a :class:`~repro.markov.ctmc.CTMC` (cached).

        Generator assembly reuses the per-shape transition pattern from
        the module structure cache: only the rate *values* are filled
        in, vectorized, so λ/μ/ξ sweeps at a fixed buffer shape never
        rebuild the pattern from scratch.
        """
        if self._ctmc is None:
            structure = _stg_structure(self._A, self._R)
            vals = np.empty(structure.kind.shape, dtype=float)
            vals[structure.kind == _ARRIVAL] = self._lambda
            # Rate schedules are evaluated once per queue length (the
            # only thing they can depend on), then gathered per edge.
            mu_tab = np.zeros(self._A + 1)
            for a in range(1, self._A + 1):
                mu_tab[a] = self._scan(a)
            xi_tab = np.zeros(self._R + 1)
            for r in range(1, self._R + 1):
                xi_tab[r] = self._recovery(r)
            scan_mask = structure.kind == _SCAN
            rec_mask = structure.kind == _RECOVERY
            vals[scan_mask] = mu_tab[structure.k[scan_mask]]
            vals[rec_mask] = xi_tab[structure.k[rec_mask]]
            keep = vals > 0
            self._ctmc = CTMC._from_triplets(
                self._states,
                structure.rows[keep],
                structure.cols[keep],
                vals[keep],
            )
        return self._ctmc

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Drop the cached CTMC: replication workers rebuild it locally
        (cheap, thanks to the structure cache) instead of shipping the
        whole generator through the process-pool pipe."""
        state = dict(self.__dict__)
        state["_ctmc"] = None
        return state

    # -- state sets -------------------------------------------------------------

    @property
    def normal_state(self) -> State:
        """The NORMAL state ``(0, 0)``."""
        return State(0, 0)

    def loss_states(self) -> List[State]:
        """Definition 3's right edge: alert queue full (``a = A``) —
        the states in which arriving IDS alerts are lost."""
        return [s for s in self._states if s.alerts == self._A]

    def states_of(self, category: StateCategory) -> List[State]:
        """All states in a category."""
        return [s for s in self._states if s.category is category]

    def initial_distribution(self, state: Optional[State] = None) -> np.ndarray:
        """``π(0)`` concentrated on ``state`` (default: NORMAL)."""
        return self.ctmc().point_distribution(
            state if state is not None else self.normal_state
        )

    @classmethod
    def paper_default(
        cls,
        arrival_rate: float = 1.0,
        mu1: float = 15.0,
        xi1: float = 20.0,
        buffer_size: int = 15,
    ) -> "RecoverySTG":
        """The configuration Sections V-A.2/V-B keep fixed:
        ``μ_k = μ_1/k``, ``ξ_k = ξ_1/k``, buffer size 15."""
        return cls(
            arrival_rate=arrival_rate,
            scan=inverse_k(mu1),
            recovery=inverse_k(xi1),
            recovery_buffer=buffer_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoverySTG(λ={self._lambda:g}, μ={self._scan.name}"
            f"@{self._scan.base:g}, ξ={self._recovery.name}"
            f"@{self._recovery.base:g}, A={self._A}, R={self._R})"
        )
