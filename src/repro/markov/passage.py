"""First-passage analysis: how long until the system first loses alerts.

Case 6 of the paper reads resilience off transient plots: "the system
can resist such high attacking rate about 5 time-units".  The underlying
quantity is a first-passage time — the time until the chain first enters
a loss state — and for a CTMC it solves a linear system exactly, no
plotting needed:

    h(i) = 0                        for i in the target set
    Σ_j q_ij · h(j) = −1            otherwise

where ``h(i)`` is the expected hitting time of the target set from
state ``i``.  The same machinery answers "how long does a recovery
excursion last" (hitting NORMAL from an attacked state).

The linear solves follow the shared backend contract
(:mod:`repro.markov.backend`): dense ``numpy.linalg.solve`` or sparse
``scipy.sparse.linalg.spsolve`` on the restricted generator.
Reachability of the target set is computed with a BFS over the reversed
transition graph — ``O(states + transitions)`` — under either backend.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError, NotConvergedError
from repro.markov.backend import require_scipy_sparse, resolve_backend
from repro.markov.ctmc import CTMC
from repro.markov.stg import RecoverySTG, State

__all__ = [
    "expected_hitting_times",
    "hitting_time_cdf",
    "survival_probability",
    "mean_time_to_loss",
    "mean_recovery_excursion",
]


def _states_reaching(chain: CTMC, targets: Iterable[int]) -> set:
    """Every state from which the target set is reachable: BFS from the
    targets over reversed transitions."""
    rows, cols, _ = chain.transitions()
    predecessors: List[List[int]] = [[] for _ in range(chain.n_states)]
    for src, dst in zip(rows, cols):
        predecessors[dst].append(int(src))
    reaching = set(targets)
    frontier = deque(reaching)
    while frontier:
        node = frontier.popleft()
        for pred in predecessors[node]:
            if pred not in reaching:
                reaching.add(pred)
                frontier.append(pred)
    return reaching


def expected_hitting_times(
    chain: CTMC,
    targets: Iterable,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Expected time to first reach ``targets`` from every state.

    Entries are ``inf`` for states from which the target set is
    unreachable.

    Raises
    ------
    ModelError
        If ``targets`` is empty or contains unknown states.
    """
    target_idx = {chain.index_of(t) for t in targets}
    if not target_idx:
        raise ModelError("need at least one target state")
    n = chain.n_states
    mode = resolve_backend(n, backend)
    rest = [i for i in range(n) if i not in target_idx]
    h = np.zeros(n)
    if not rest:
        return h

    reaching = _states_reaching(chain, target_idx)
    unreachable = [i for i in rest if i not in reaching]
    solvable = [i for i in rest if i in reaching]
    for i in unreachable:
        h[i] = np.inf
    if not solvable:
        return h

    rhs = -np.ones(len(solvable))
    try:
        if mode == "sparse":
            _, spla = require_scipy_sparse()
            q = chain.sparse_generator()
            sub = q[solvable, :][:, solvable].tocsc()
            sol = spla.spsolve(sub, rhs)
        else:
            sub = chain.generator[np.ix_(solvable, solvable)]
            sol = np.linalg.solve(sub, rhs)
    except np.linalg.LinAlgError as exc:
        raise NotConvergedError(
            f"hitting-time system is singular: {exc}"
        ) from exc
    sol = np.asarray(sol, dtype=float)
    if not np.isfinite(sol).all():
        raise NotConvergedError("hitting-time system is singular")
    if (sol < -1e-9).any():
        raise NotConvergedError(
            "hitting-time solution has negative entries"
        )
    for idx, i in enumerate(solvable):
        h[i] = sol[idx]
    return h


def hitting_time_cdf(
    chain: CTMC,
    targets: Iterable,
    start,
    times: Sequence[float],
    backend: Optional[str] = None,
) -> np.ndarray:
    """``P(T ≤ t)`` for the first-passage time ``T`` into ``targets``.

    The hitting time of a CTMC is phase-type distributed: with ``Q_s``
    the generator restricted to non-target states,

        P(T ≤ t) = 1 − e_start · exp(Q_s t) · 1

    Parameters
    ----------
    chain, targets:
        As in :func:`expected_hitting_times`.
    start:
        Starting state (must not be a target).
    times:
        Evaluation times (each ≥ 0).
    backend:
        Dense evaluates ``expm(Q_s t)``; sparse applies
        ``expm_multiply`` to the start vector without forming the
        exponential.
    """
    target_idx = {chain.index_of(t) for t in targets}
    if not target_idx:
        raise ModelError("need at least one target state")
    start_idx = chain.index_of(start)
    if start_idx in target_idx:
        return np.ones(len(list(times)))
    mode = resolve_backend(chain.n_states, backend)
    rest = [i for i in range(chain.n_states) if i not in target_idx]
    pos = rest.index(start_idx)
    e = np.zeros(len(rest))
    e[pos] = 1.0
    for t in times:
        if t < 0:
            raise ModelError(f"time must be >= 0, got {t}")

    if mode == "sparse":
        _, spla = require_scipy_sparse()
        q = chain.sparse_generator()
        sub_t = q[rest, :][:, rest].transpose().tocsc()
        out = []
        for t in times:
            surv = float(
                np.asarray(spla.expm_multiply(sub_t * t, e)).sum()
            )
            out.append(min(max(1.0 - surv, 0.0), 1.0))
        return np.array(out)

    from scipy.linalg import expm

    sub = chain.generator[np.ix_(rest, rest)]
    out = []
    for t in times:
        surv = float(e @ expm(sub * t) @ np.ones(len(rest)))
        out.append(min(max(1.0 - surv, 0.0), 1.0))
    return np.array(out)


def survival_probability(
    stg: RecoverySTG,
    t: float,
    start: Optional[State] = None,
    backend: Optional[str] = None,
) -> float:
    """Probability the system loses **no** alert during ``[0, t]``.

    The distributional refinement of Case 6's reading: not just the
    *mean* resistance time but the chance of surviving a burst of a
    given duration.
    """
    chain = stg.ctmc()
    s = start if start is not None else stg.normal_state
    cdf = hitting_time_cdf(chain, stg.loss_states(), s, [t],
                           backend=backend)
    return float(1.0 - cdf[0])


def mean_time_to_loss(
    stg: RecoverySTG,
    start: Optional[State] = None,
    backend: Optional[str] = None,
) -> float:
    """Expected time until the alert buffer first fills, starting from
    ``start`` (default NORMAL) — the exact version of Case 6's
    "resists about 5 time-units" reading."""
    chain = stg.ctmc()
    h = expected_hitting_times(chain, stg.loss_states(), backend=backend)
    s = start if start is not None else stg.normal_state
    return float(h[chain.index_of(s)])


def mean_recovery_excursion(
    stg: RecoverySTG,
    start: State,
    backend: Optional[str] = None,
) -> float:
    """Expected time to return to NORMAL from ``start``.

    With ``start = (a, r)`` describing a burst's aftermath, this is the
    expected duration of the scan+recovery excursion the burst causes.
    """
    chain = stg.ctmc()
    h = expected_hitting_times(chain, [stg.normal_state],
                               backend=backend)
    return float(h[chain.index_of(start)])
