"""Steady-state analysis — Equation 1.

The steady-state probability vector ``π`` of a finite CTMC with generator
``Q`` satisfies ``πQ = 0`` with ``Σ π_i = 1``.  We solve the equivalent
linear system obtained by replacing one balance equation with the
normalization constraint; for an irreducible chain the solution is
unique and strictly positive on every recurrent state.

Two numerically equivalent backends solve that system (see
:mod:`repro.markov.backend` for the selection contract): the dense path
uses ``numpy.linalg.lstsq`` on the full matrix, the sparse path a CSR
factorization via ``scipy.sparse.linalg.spsolve`` — at production
buffer sizes the STG has ~3 transitions per state, so the sparse solve
is orders of magnitude faster and lighter.  The differential test suite
pins both paths together to 1e-8.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ModelError, NotConvergedError
from repro.markov.backend import require_scipy_sparse, resolve_backend
from repro.markov.ctmc import CTMC

__all__ = ["steady_state"]


def _finish(pi: np.ndarray) -> np.ndarray:
    """Shared post-processing: clip noise, validate, renormalize."""
    if not np.isfinite(pi).all():
        raise NotConvergedError(
            "steady-state solve produced non-finite entries "
            "(reducible chain with multiple closed classes?)"
        )
    pi = np.where(np.abs(pi) < 1e-14, 0.0, pi)
    if (pi < -1e-8).any():
        raise NotConvergedError(
            "steady-state solution has negative probabilities "
            "(reducible chain with multiple closed classes?)"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise NotConvergedError("steady-state solution sums to zero")
    return pi / total


def steady_state(chain: Union[CTMC, np.ndarray],
                 atol: float = 1e-8,
                 backend: Optional[str] = None) -> np.ndarray:
    """Solve ``πQ = 0, Σπ = 1`` for a finite CTMC.

    Parameters
    ----------
    chain:
        A :class:`~repro.markov.ctmc.CTMC` or a raw generator matrix.
    atol:
        Residual tolerance for the returned solution; exceeded residuals
        raise :class:`~repro.errors.NotConvergedError`.
    backend:
        ``None`` (auto: dense below the state-count threshold, sparse
        above it when scipy is available), ``"dense"``, or ``"sparse"``.
        An explicit ``"sparse"`` without scipy raises
        :class:`~repro.errors.ModelError` — never a silent dense
        fallback.

    Returns
    -------
    numpy.ndarray
        The stationary distribution, in the chain's state order.
    """
    # Deferred import: repro.obs's package init reaches back into the
    # core/markov layers, so binding at module import would cycle.
    from repro.obs.perf import bump
    bump("ctmc_solver_calls")
    if isinstance(chain, CTMC):
        n = chain.n_states
    else:
        q_arr = np.asarray(chain, dtype=float)
        if q_arr.ndim != 2 or q_arr.shape[0] != q_arr.shape[1]:
            raise ModelError(
                f"generator must be square, got {q_arr.shape}"
            )
        n = q_arr.shape[0]
    mode = resolve_backend(n, backend)

    if mode == "sparse":
        sparse, spla = require_scipy_sparse()
        if isinstance(chain, CTMC):
            q = chain.sparse_generator()
        else:
            q = sparse.csr_matrix(q_arr)
        # πQ = 0  ⇔  Qᵀ πᵀ = 0; replace the last equation with Σπ = 1.
        a = q.transpose().tocoo()
        keep = a.row != n - 1
        rows = np.concatenate([a.row[keep], np.full(n, n - 1)])
        cols = np.concatenate([a.col[keep], np.arange(n)])
        vals = np.concatenate([a.data[keep], np.ones(n)])
        a = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = spla.spsolve(a, b)
        except Exception as exc:
            raise NotConvergedError(
                f"sparse steady-state solve failed: {exc}"
            ) from exc
        pi = _finish(np.asarray(pi, dtype=float))
        residual = np.abs(q.transpose() @ pi).max()
    else:
        q = chain.generator if isinstance(chain, CTMC) else q_arr
        # πQ = 0  ⇔  Qᵀ πᵀ = 0; replace the last equation with Σπ = 1.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi, residuals, rank, _ = np.linalg.lstsq(a, b, rcond=None)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise NotConvergedError(
                f"steady-state solve failed: {exc}"
            ) from exc
        pi = _finish(pi)
        residual = np.abs(pi @ q).max()

    if residual > max(atol, 1e-6):
        raise NotConvergedError(
            f"steady-state residual |πQ| = {residual:g} exceeds tolerance"
        )
    return pi
