"""Steady-state analysis — Equation 1.

The steady-state probability vector ``π`` of a finite CTMC with generator
``Q`` satisfies ``πQ = 0`` with ``Σ π_i = 1``.  We solve the equivalent
linear system obtained by replacing one balance equation with the
normalization constraint; for an irreducible chain the solution is
unique and strictly positive on every recurrent state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ModelError, NotConvergedError
from repro.markov.ctmc import CTMC

__all__ = ["steady_state"]


def steady_state(chain: Union[CTMC, np.ndarray],
                 atol: float = 1e-8) -> np.ndarray:
    """Solve ``πQ = 0, Σπ = 1`` for a finite CTMC.

    Parameters
    ----------
    chain:
        A :class:`~repro.markov.ctmc.CTMC` or a raw generator matrix.
    atol:
        Residual tolerance for the returned solution; exceeded residuals
        raise :class:`~repro.errors.NotConvergedError`.

    Returns
    -------
    numpy.ndarray
        The stationary distribution, in the chain's state order.
    """
    q = chain.generator if isinstance(chain, CTMC) else np.asarray(
        chain, dtype=float
    )
    n = q.shape[0]
    if q.shape != (n, n):
        raise ModelError(f"generator must be square, got {q.shape}")

    # πQ = 0  ⇔  Qᵀ πᵀ = 0; replace the last equation with Σπ = 1.
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi, residuals, rank, _ = np.linalg.lstsq(a, b, rcond=None)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise NotConvergedError(f"steady-state solve failed: {exc}") from exc

    # Clip numerical noise and renormalize.
    pi = np.where(np.abs(pi) < 1e-14, 0.0, pi)
    if (pi < -1e-8).any():
        raise NotConvergedError(
            "steady-state solution has negative probabilities "
            "(reducible chain with multiple closed classes?)"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise NotConvergedError("steady-state solution sums to zero")
    pi = pi / total

    residual = np.abs(pi @ q).max()
    if residual > max(atol, 1e-6):
        raise NotConvergedError(
            f"steady-state residual |πQ| = {residual:g} exceeds tolerance"
        )
    return pi
