"""Numerical backend selection for the CTMC solvers.

The paper's evaluation (Figures 4–6) sweeps λ/μ/ξ and buffer sizes over
the ``(alerts, units)`` state-transition graph.  Small STGs (the paper's
16×16 default) are served perfectly well by dense linear algebra, but
production buffer sizes push the chain into thousands of states where a
dense ``O(n²)`` generator — with only ~3 transitions per state — wastes
both memory and solve time.  Every solver therefore accepts a

    ``backend: Optional[str]``

argument with three values:

- ``None`` (default) — *auto*: dense below
  :data:`SPARSE_AUTO_THRESHOLD` states, sparse (scipy CSR) at or above
  it **when scipy is importable**; without scipy, auto quietly stays
  dense, which is always correct, merely slower;
- ``"dense"`` — force the dense path (used by the differential tests
  and as the numerical reference);
- ``"sparse"`` — force the sparse path.  If scipy is missing this
  raises :class:`~repro.errors.ModelError` with an install hint — an
  explicit request for the fast path must never silently degrade into
  the slow one.

The same contract is shared by ``steady_state``, ``transient_*``, the
passage-time solvers, and :meth:`repro.markov.ctmc.CTMC.sparse_generator`.
"""

from __future__ import annotations

import importlib
from typing import Optional, Tuple

from repro.errors import ModelError

__all__ = [
    "SPARSE_AUTO_THRESHOLD",
    "sparse_available",
    "require_scipy_sparse",
    "resolve_backend",
]

#: State count at which *auto* backend selection switches to sparse.
#: The paper's default 16×16 STG (256 states) stays dense; anything
#: larger — the production sweeps — goes sparse.
SPARSE_AUTO_THRESHOLD = 400


def _import_sparse():
    """Import hook for ``scipy.sparse`` (monkeypatchable in tests)."""
    return importlib.import_module("scipy.sparse")


def _import_sparse_linalg():
    """Import hook for ``scipy.sparse.linalg`` (monkeypatchable)."""
    return importlib.import_module("scipy.sparse.linalg")


def sparse_available() -> bool:
    """``True`` when scipy's sparse stack can be imported."""
    try:
        _import_sparse()
        _import_sparse_linalg()
    except ImportError:
        return False
    return True


def require_scipy_sparse() -> Tuple[object, object]:
    """Return ``(scipy.sparse, scipy.sparse.linalg)`` or raise.

    Raises
    ------
    ModelError
        When scipy is not importable.  The message carries an install
        hint so an explicit ``backend="sparse"`` request fails loudly
        instead of silently running the dense fallback.
    """
    try:
        return _import_sparse(), _import_sparse_linalg()
    except ImportError as exc:
        raise ModelError(
            "backend='sparse' requires scipy, which is not installed "
            "or not importable — install it with `pip install scipy` "
            "or use backend='dense' / backend=None (auto)"
        ) from exc


def resolve_backend(n_states: int, backend: Optional[str] = None) -> str:
    """Resolve a user-facing ``backend`` argument to ``'dense'`` or
    ``'sparse'``.

    Parameters
    ----------
    n_states:
        Size of the chain the solver is about to process.
    backend:
        ``None`` (auto), ``"dense"``, or ``"sparse"``.

    Raises
    ------
    ModelError
        For an unknown backend name, or for an explicit ``"sparse"``
        request when scipy is missing.
    """
    if backend is None:
        if n_states >= SPARSE_AUTO_THRESHOLD and sparse_available():
            return "sparse"
        return "dense"
    if backend == "dense":
        return "dense"
    if backend == "sparse":
        require_scipy_sparse()
        return "sparse"
    raise ModelError(
        f"unknown backend {backend!r}: expected 'dense', 'sparse' or "
        "None (auto)"
    )
