"""Transient analysis — Equations 2 and 3.

Equation 2 (state probabilities at time ``t``)::

    dπ(t)/dt = π(t) Q          ⇒   π(t) = π(0) e^{Qt}

Equation 3 (cumulative expected time spent in each state by ``t``)::

    dl(t)/dt = l(t) Q + π(0)   ⇒   l(t) = π(0) ∫₀ᵗ e^{Qs} ds

Two solvers are provided for Equation 2: *uniformization* (the standard
numerically-robust method, with a rigorous truncation bound) and the
dense matrix exponential (``scipy.linalg.expm``), used to cross-check.
Equation 3 is solved exactly with an augmented matrix exponential:
with ``M = [[Q, 0], [I, 0]]`` and ``y(0) = [l(0), π(0)] = [0, π(0)]``,
``y(t) = y(0) e^{Mt}`` gives ``l(t)`` in its first block.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np
from scipy.linalg import expm

from repro.errors import ModelError
from repro.markov.ctmc import CTMC

__all__ = [
    "transient_probabilities",
    "transient_probabilities_expm",
    "cumulative_times",
]


def _as_generator(chain: Union[CTMC, np.ndarray]) -> np.ndarray:
    if isinstance(chain, CTMC):
        return chain.generator
    q = np.asarray(chain, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ModelError(f"generator must be square, got {q.shape}")
    return q


def transient_probabilities(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
    tol: float = 1e-10,
) -> np.ndarray:
    """Equation 2 by uniformization.

    Writes ``P = I + Q/Λ`` (a stochastic matrix for ``Λ ≥ max |q_ii|``)
    so that ``π(t) = Σ_k e^{-Λt} (Λt)^k / k! · π(0) P^k``; the series is
    truncated once the remaining Poisson mass falls below ``tol``.
    """
    q = _as_generator(chain)
    n = q.shape[0]
    pi0 = np.asarray(pi0, dtype=float)
    if pi0.shape != (n,):
        raise ModelError(
            f"pi0 has shape {pi0.shape}, expected ({n},)"
        )
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    if t == 0:
        return pi0.copy()

    rate = float(np.max(-np.diag(q)))
    if rate <= 0:
        return pi0.copy()  # no transitions at all
    p = np.eye(n) + q / rate

    lam_t = rate * t
    # Poisson(λt) weights, accumulated until the tail is below tol.
    # Weights are tracked in log space until they are comfortably inside
    # the normal float range: switching at the subnormal boundary would
    # freeze the multiplicative recurrence (5e-324 × 1.34 rounds back to
    # 5e-324) and silently drop the entire distribution body.
    result = np.zeros(n)
    vec = pi0.copy()
    log_weight = -lam_t  # log of e^{-λt} (λt)^0 / 0!
    in_log_space = log_weight <= -680.0
    weight = 0.0 if in_log_space else math.exp(log_weight)
    cumulative = weight
    result += weight * vec
    k = 0
    # Upper bound on needed terms: mean + 10 std deviations, at least 32.
    max_terms = int(lam_t + 10.0 * math.sqrt(lam_t) + 32)
    while cumulative < 1.0 - tol and k < max_terms:
        k += 1
        vec = vec @ p
        if in_log_space:
            log_weight += math.log(lam_t) - math.log(k)
            if log_weight > -680.0:
                in_log_space = False
                weight = math.exp(log_weight)
        else:
            weight *= lam_t / k
        result += weight * vec
        cumulative += weight
    # Account for the truncated tail by renormalizing.
    total = result.sum()
    if total > 0:
        result = result / total
    return result


def transient_probabilities_expm(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
) -> np.ndarray:
    """Equation 2 via the dense matrix exponential (cross-check)."""
    q = _as_generator(chain)
    pi0 = np.asarray(pi0, dtype=float)
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    return pi0 @ expm(q * t)


def cumulative_times(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
) -> np.ndarray:
    """Equation 3: expected cumulative time in each state over ``[0, t]``.

    The entries of the result sum to ``t``; dividing by ``t`` gives the
    expected fraction of time per state.
    """
    q = _as_generator(chain)
    n = q.shape[0]
    pi0 = np.asarray(pi0, dtype=float)
    if pi0.shape != (n,):
        raise ModelError(f"pi0 has shape {pi0.shape}, expected ({n},)")
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    if t == 0:
        return np.zeros(n)
    m = np.zeros((2 * n, 2 * n))
    m[:n, :n] = q
    m[n:, :n] = np.eye(n)
    y0 = np.concatenate([np.zeros(n), pi0])
    y = y0 @ expm(m * t)
    return y[:n]
