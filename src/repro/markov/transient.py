"""Transient analysis — Equations 2 and 3.

Equation 2 (state probabilities at time ``t``)::

    dπ(t)/dt = π(t) Q          ⇒   π(t) = π(0) e^{Qt}

Equation 3 (cumulative expected time spent in each state by ``t``)::

    dl(t)/dt = l(t) Q + π(0)   ⇒   l(t) = π(0) ∫₀ᵗ e^{Qs} ds

Two solvers are provided for Equation 2: *uniformization* (the standard
numerically-robust method, with a rigorous truncation bound) and the
matrix exponential, used to cross-check.  Equation 3 is solved exactly
with an augmented matrix exponential: with ``M = [[Q, 0], [I, 0]]`` and
``y(0) = [l(0), π(0)] = [0, π(0)]``, ``y(t) = y(0) e^{Mt}`` gives
``l(t)`` in its first block.

Every solver takes the common ``backend`` argument
(:mod:`repro.markov.backend`): the uniformization series is identical
under both backends — only the matrix–vector product changes, dense
``vec @ P`` versus CSR ``Pᵀ @ vec`` — while the exponential solvers
switch between ``scipy.linalg.expm`` (dense) and
``scipy.sparse.linalg.expm_multiply`` (sparse, never materializing
``e^{Qt}``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

import numpy as np
from scipy.linalg import expm

from repro.errors import ModelError
from repro.markov.backend import require_scipy_sparse, resolve_backend
from repro.markov.ctmc import CTMC

__all__ = [
    "transient_probabilities",
    "transient_probabilities_expm",
    "cumulative_times",
]


def _as_generator(chain: Union[CTMC, np.ndarray]) -> np.ndarray:
    if isinstance(chain, CTMC):
        return chain.generator
    q = np.asarray(chain, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ModelError(f"generator must be square, got {q.shape}")
    return q


def _chain_size(chain: Union[CTMC, np.ndarray]) -> int:
    if isinstance(chain, CTMC):
        return chain.n_states
    q = np.asarray(chain, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ModelError(f"generator must be square, got {q.shape}")
    return q.shape[0]


def _sparse_generator(chain: Union[CTMC, np.ndarray]):
    """The chain as a CSR matrix (requires scipy)."""
    sparse, _ = require_scipy_sparse()
    if isinstance(chain, CTMC):
        return chain.sparse_generator()
    return sparse.csr_matrix(_as_generator(chain))


def _validated_pi0(pi0: np.ndarray, n: int) -> np.ndarray:
    pi0 = np.asarray(pi0, dtype=float)
    if pi0.shape != (n,):
        raise ModelError(f"pi0 has shape {pi0.shape}, expected ({n},)")
    return pi0


def transient_probabilities(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
    tol: float = 1e-10,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Equation 2 by uniformization.

    Writes ``P = I + Q/Λ`` (a stochastic matrix for ``Λ ≥ max |q_ii|``)
    so that ``π(t) = Σ_k e^{-Λt} (Λt)^k / k! · π(0) P^k``; the series is
    truncated once the remaining Poisson mass falls below ``tol``.

    The ``backend`` argument selects dense or CSR matrix–vector
    products (see :mod:`repro.markov.backend`); the series itself is
    identical, so both backends agree to machine precision.
    """
    n = _chain_size(chain)
    pi0 = _validated_pi0(pi0, n)
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    mode = resolve_backend(n, backend)
    if t == 0:
        return pi0.copy()

    if isinstance(chain, CTMC):
        rate = chain.uniformization_rate()
        if chain.nnz == 0:
            rate = 0.0
    else:
        rate = float(np.max(-np.diag(_as_generator(chain))))
    if rate <= 0:
        return pi0.copy()  # no transitions at all

    if mode == "sparse":
        sparse, _ = require_scipy_sparse()
        q = _sparse_generator(chain)
        # vec @ P computed as Pᵀ @ vec with a CSR transpose built once.
        p_t = (sparse.identity(n, format="csr")
               + q.transpose().tocsr() / rate)

        def step(vec: np.ndarray) -> np.ndarray:
            return p_t @ vec
    else:
        q = _as_generator(chain)
        p = np.eye(n) + q / rate

        def step(vec: np.ndarray) -> np.ndarray:
            return vec @ p

    lam_t = rate * t
    # Poisson(λt) weights, accumulated until the tail is below tol.
    # Weights are tracked in log space until they are comfortably inside
    # the normal float range: switching at the subnormal boundary would
    # freeze the multiplicative recurrence (5e-324 × 1.34 rounds back to
    # 5e-324) and silently drop the entire distribution body.
    result = np.zeros(n)
    vec = pi0.copy()
    log_weight = -lam_t  # log of e^{-λt} (λt)^0 / 0!
    in_log_space = log_weight <= -680.0
    weight = 0.0 if in_log_space else math.exp(log_weight)
    cumulative = weight
    result += weight * vec
    k = 0
    # Upper bound on needed terms: mean + 10 std deviations, at least 32.
    max_terms = int(lam_t + 10.0 * math.sqrt(lam_t) + 32)
    while cumulative < 1.0 - tol and k < max_terms:
        k += 1
        vec = step(vec)
        if in_log_space:
            log_weight += math.log(lam_t) - math.log(k)
            if log_weight > -680.0:
                in_log_space = False
                weight = math.exp(log_weight)
        else:
            weight *= lam_t / k
        result += weight * vec
        cumulative += weight
    # Account for the truncated tail by renormalizing.
    total = result.sum()
    if total > 0:
        result = result / total
    return result


def transient_probabilities_expm(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Equation 2 via the matrix exponential (cross-check).

    Dense: ``π(0) e^{Qt}`` with ``scipy.linalg.expm``.  Sparse:
    ``expm_multiply(Qᵀ t, π(0))`` — the exponential is never formed,
    only its action on the vector.
    """
    n = _chain_size(chain)
    pi0 = _validated_pi0(pi0, n)
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    mode = resolve_backend(n, backend)
    if mode == "sparse":
        _, spla = require_scipy_sparse()
        q = _sparse_generator(chain)
        return np.asarray(
            spla.expm_multiply(q.transpose().tocsc() * t, pi0)
        )
    q = _as_generator(chain)
    return pi0 @ expm(q * t)


def cumulative_times(
    chain: Union[CTMC, np.ndarray],
    pi0: np.ndarray,
    t: float,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Equation 3: expected cumulative time in each state over ``[0, t]``.

    The entries of the result sum to ``t``; dividing by ``t`` gives the
    expected fraction of time per state.  Both backends evaluate the
    same augmented exponential ``y(t) = y(0) e^{Mt}``; the sparse path
    applies ``e^{Mᵀt}`` to ``y(0)`` without materializing it.
    """
    n = _chain_size(chain)
    pi0 = _validated_pi0(pi0, n)
    if t < 0:
        raise ModelError(f"time must be >= 0, got {t}")
    mode = resolve_backend(n, backend)
    if t == 0:
        return np.zeros(n)
    if mode == "sparse":
        sparse, spla = require_scipy_sparse()
        q = _sparse_generator(chain)
        # M = [[Q, 0], [I, 0]]  ⇒  Mᵀ = [[Qᵀ, I], [0, 0]].
        zero = sparse.csr_matrix((n, n))
        m_t = sparse.bmat(
            [[q.transpose().tocsr(), sparse.identity(n, format="csr")],
             [zero, zero]],
            format="csc",
        )
        y0 = np.concatenate([np.zeros(n), pi0])
        y = np.asarray(spla.expm_multiply(m_t * t, y0))
        return y[:n]
    q = _as_generator(chain)
    m = np.zeros((2 * n, 2 * n))
    m[:n, :n] = q
    m[n:, :n] = np.eye(n)
    y0 = np.concatenate([np.zeros(n), pi0])
    y = y0 @ expm(m * t)
    return y[:n]
