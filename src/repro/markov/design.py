"""Section VI: guidelines for designing a recovery system.

The paper gives a step-by-step sizing procedure for target parameters
``λ`` (expected attack rate) and ``ε`` (acceptable steady-state loss
probability):

1. evaluate the degradation schedules ``μ_k``, ``ξ_k`` of the candidate
   analyzing/scheduling algorithms;
2. grow the recovery-task buffer from 2 until the loss probability
   stops improving (it can *worsen* for fast-degrading schedules);
3. accept the first buffer size achieving ε-convergence; otherwise
   report that the algorithms must be redesigned (faster base rates or
   slower degradation);
4. size the alert buffer for the peak (transient) rate, not the mean.

:func:`design_system` automates steps 1–3; step 4 is supported through
:func:`peak_resilience`, which measures how long a system at NORMAL can
absorb a given attack rate before its loss probability exceeds ε (the
paper's Case 6 observation: "the system can resist such high attacking
rate about 5 time-units").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.markov.degradation import RateFunction
from repro.markov.metrics import loss_probability
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG
from repro.markov.transient import transient_probabilities

__all__ = ["DesignResult", "sweep_buffer_sizes", "design_system",
           "peak_resilience", "cost_effective_rate"]


@dataclass
class DesignResult:
    """Outcome of the Section VI sizing procedure.

    Attributes
    ----------
    feasible:
        Whether some buffer size achieved the target ε.
    buffer_size:
        The chosen recovery-task buffer size (smallest achieving ε), or
        the best-effort size when infeasible.
    achieved_epsilon:
        Steady-state loss probability at ``buffer_size``.
    swept:
        ``buffer size → loss probability`` for every size tried.
    """

    feasible: bool
    buffer_size: int
    achieved_epsilon: float
    swept: Dict[int, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable account."""
        verdict = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"design {verdict}: buffer={self.buffer_size}, "
            f"ε={self.achieved_epsilon:.3g} "
            f"(swept {min(self.swept)}..{max(self.swept)})"
        )


def sweep_buffer_sizes(
    arrival_rate: float,
    scan: RateFunction,
    recovery: RateFunction,
    sizes: Optional[List[int]] = None,
) -> Dict[int, float]:
    """Steady-state loss probability for each buffer size (Figure 4's
    x-axis sweep, square ``n × n`` STGs)."""
    if sizes is None:
        sizes = list(range(2, 31))
    out: Dict[int, float] = {}
    for n in sizes:
        stg = RecoverySTG(
            arrival_rate=arrival_rate,
            scan=scan,
            recovery=recovery,
            recovery_buffer=n,
        )
        pi = steady_state(stg.ctmc())
        out[n] = loss_probability(stg, pi)
    return out


def design_system(
    arrival_rate: float,
    epsilon: float,
    scan: RateFunction,
    recovery: RateFunction,
    max_buffer: int = 30,
) -> DesignResult:
    """Steps 1–3 of the Section VI procedure.

    Grows the recovery-task buffer from 2 to ``max_buffer``, stopping
    early once the loss probability starts rising again (larger queues
    only slow the degraded system further), and picks the smallest size
    achieving the target ``epsilon``.
    """
    swept: Dict[int, float] = {}
    best_size, best_loss = 2, float("inf")
    chosen: Optional[int] = None
    rising_streak = 0
    for n in range(2, max_buffer + 1):
        stg = RecoverySTG(
            arrival_rate=arrival_rate,
            scan=scan,
            recovery=recovery,
            recovery_buffer=n,
        )
        lp = loss_probability(stg, steady_state(stg.ctmc()))
        swept[n] = lp
        if lp < best_loss:
            best_loss, best_size = lp, n
            rising_streak = 0
        else:
            rising_streak += 1
        if chosen is None and lp <= epsilon:
            chosen = n
            break
        if rising_streak >= 3:
            break  # loss is getting worse; stop growing the buffer
    if chosen is not None:
        return DesignResult(
            feasible=True,
            buffer_size=chosen,
            achieved_epsilon=swept[chosen],
            swept=swept,
        )
    return DesignResult(
        feasible=False,
        buffer_size=best_size,
        achieved_epsilon=best_loss,
        swept=swept,
    )


def cost_effective_rate(
    arrival_rate: float,
    which: str,
    other_rate: float,
    buffer_size: int = 15,
    tolerance: float = 0.05,
    candidates: Optional[List[float]] = None,
) -> float:
    """The knee of the Section V cost-effectiveness curve.

    Cases 3 and 4 observe that "after exceeding a specific value, μ₁ and
    ξ₁ have no significant impacts on improving the steady probability
    of the NORMAL [state].  There exists a cost effective range."  This
    finds the smallest base rate whose steady-state P(NORMAL) is within
    ``tolerance`` of the best achievable over the candidate range — the
    rate past which spending more buys nothing.

    Parameters
    ----------
    arrival_rate:
        λ of the target environment.
    which:
        ``"mu"`` to sweep the scan rate (``other_rate`` is ξ₁) or
        ``"xi"`` to sweep the recovery rate (``other_rate`` is μ₁).
    other_rate:
        The base rate held fixed.
    buffer_size, tolerance, candidates:
        Sweep configuration; candidates default to 1..30.
    """
    from repro.markov.metrics import category_probabilities
    from repro.markov.stg import StateCategory

    if which not in ("mu", "xi"):
        raise ValueError(f"which must be 'mu' or 'xi', got {which!r}")
    if candidates is None:
        candidates = [float(v) for v in range(1, 31)]
    candidates = sorted(candidates)

    def p_normal(rate: float) -> float:
        mu1, xi1 = (rate, other_rate) if which == "mu" else (other_rate,
                                                             rate)
        stg = RecoverySTG(
            arrival_rate=arrival_rate,
            scan=RateFunction("1/k", mu1, lambda b, k: b / k),
            recovery=RateFunction("1/k", xi1, lambda b, k: b / k),
            recovery_buffer=buffer_size,
        )
        pi = steady_state(stg.ctmc())
        return category_probabilities(stg, pi)[StateCategory.NORMAL]

    values = {rate: p_normal(rate) for rate in candidates}
    best = max(values.values())
    for rate in candidates:
        if values[rate] >= best - tolerance:
            return rate
    return candidates[-1]  # pragma: no cover - best is in values


def peak_resilience(
    stg: RecoverySTG,
    epsilon: float,
    horizon: float = 50.0,
    step: float = 0.25,
) -> float:
    """How long a system starting at NORMAL withstands its configured
    attack rate before the transient loss probability exceeds
    ``epsilon``.

    Returns ``horizon`` when the loss probability never exceeds
    ``epsilon`` within the horizon (the system absorbs the peak).  This
    quantifies the paper's Case 6 remark that an under-provisioned
    system "can resist such high attacking rate about 5 time-units".
    """
    pi0 = stg.initial_distribution()
    chain = stg.ctmc()
    t = step
    while t <= horizon + 1e-12:
        pi_t = transient_probabilities(chain, pi0, t)
        if loss_probability(stg, pi_t) > epsilon:
            return t
        t += step
    return horizon
