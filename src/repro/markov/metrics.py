"""Performance metrics over STG distributions.

Implements Definition 3 (loss probability), Definition 4
(ε-convergence), the category probabilities P(NORMAL) / P(SCAN) /
P(RECOVERY) plotted in Figure 5, and the expected queue lengths of
Figures 5(b)/(d)/(f).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory

__all__ = [
    "loss_probability",
    "category_probabilities",
    "expected_alerts",
    "expected_recovery_units",
    "epsilon_convergence",
    "convergence_time",
    "state_probability",
    "expected_lost_alerts",
    "occupancy_correlation_time",
]


def _check(stg: RecoverySTG, pi: np.ndarray) -> np.ndarray:
    pi = np.asarray(pi, dtype=float)
    if pi.shape != (len(stg.states),):
        raise ModelError(
            f"distribution has shape {pi.shape}, expected "
            f"({len(stg.states)},)"
        )
    return pi


def loss_probability(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Definition 3: probability mass on the STG's right edge.

    ``lp_π = Σ_{i ∈ E} p_i`` where ``E`` is the set of states with the
    recovery-task queue full — the states in which the system is at its
    limit and IDS alerts are (about to be) lost.
    """
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(sum(pi[chain.index_of(s)] for s in stg.loss_states()))


def state_probability(stg: RecoverySTG, pi: np.ndarray, state: State) -> float:
    """Probability of one state under ``pi``."""
    pi = _check(stg, pi)
    return float(pi[stg.ctmc().index_of(state)])


def category_probabilities(
    stg: RecoverySTG, pi: np.ndarray
) -> Dict[StateCategory, float]:
    """Mass on NORMAL / SCAN / RECOVERY (the Figure 5 series)."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    out: Dict[StateCategory, float] = {c: 0.0 for c in StateCategory}
    for s in stg.states:
        out[s.category] += float(pi[chain.index_of(s)])
    return out


def expected_alerts(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Expected number of IDS alerts in the queue under ``pi``."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(
        sum(s.alerts * pi[chain.index_of(s)] for s in stg.states)
    )


def expected_recovery_units(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Expected number of recovery-task units in the queue under ``pi``."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(
        sum(s.units * pi[chain.index_of(s)] for s in stg.states)
    )


def expected_lost_alerts(
    stg: RecoverySTG,
    t: float,
    pi0: Optional[np.ndarray] = None,
) -> float:
    """Expected number of IDS alerts lost over ``[0, t]``.

    Alerts arrive as a Poisson stream of rate λ and are lost exactly
    while the system occupies a loss state, so the expected loss count
    is ``λ · Σ_{s ∈ E} l_s(t)`` with ``l`` the cumulative state times of
    Equation 3.  This quantifies the transient question the paper asks
    of Figure 6: "how many IDS alerts have been lost before the system
    enters its steady state".
    """
    from repro.markov.transient import cumulative_times

    chain = stg.ctmc()
    if pi0 is None:
        pi0 = stg.initial_distribution()
    lt = cumulative_times(chain, pi0, t)
    on_edge = sum(lt[chain.index_of(s)] for s in stg.loss_states())
    return float(stg.arrival_rate * on_edge)


def epsilon_convergence(stg: RecoverySTG,
                        pi: Optional[np.ndarray] = None) -> float:
    """Definition 4: the ``ε`` such that the system is ε-convergent.

    The loss probability at the steady state; computed from ``pi`` when
    given, otherwise from the STG's own steady state.  A 1-convergent
    system is useless; designers aim for ε as small as possible.
    """
    if pi is None:
        pi = steady_state(stg.ctmc())
    return loss_probability(stg, pi)


def occupancy_correlation_time(stg: RecoverySTG) -> float:
    """π-weighted integrated autocorrelation time of the alert levels.

    For each alert-queue level ``k`` the indicator ``1{alerts = k}``
    has an integrated autocorrelation time ``τ_k`` under the chain's
    stationary law; this returns ``Σ_k π_k τ_k`` (each cell weighted by
    its stationary mass), the *design effect* timescale of the
    occupancy histogram: a window of length ``T`` carries roughly
    ``T / (2 τ̄)`` independent histogram observations, not one per
    dwell segment.  The conformance monitor uses this to keep its
    occupancy G-test honest on slowly-mixing workloads, where dwell
    segments are long, few, and heavily dependent.

    Computed exactly from the generator via the Poisson equation: with
    ``f̄ = f − π·f`` the solution of ``Q h = −f̄`` is
    ``h = (1πᵀ − Q)⁻¹ f̄``, the asymptotic variance rate is
    ``2 π·(f̄ ∘ h)``, and ``τ = σ²_as / (2 σ²_f)``.  One dense solve
    over all level indicators at once.
    """
    chain = stg.ctmc()
    pi = steady_state(chain)
    n = len(pi)
    levels = sorted({s.alerts for s in stg.states})
    indicators = np.zeros((n, len(levels)))
    col = {k: j for j, k in enumerate(levels)}
    for s in stg.states:
        indicators[chain.index_of(s), col[s.alerts]] = 1.0
    mass = pi @ indicators
    centered = indicators - mass[np.newaxis, :]
    a = np.outer(np.ones(n), pi) - chain.generator
    h = np.linalg.solve(a, centered)
    asym = 2.0 * np.einsum("i,ij,ij->j", pi, centered, h)
    var = pi @ (centered * centered)
    tau_bar = 0.0
    for j, k in enumerate(levels):
        if var[j] > 1e-15:
            tau_bar += mass[j] * max(asym[j] / (2.0 * var[j]), 0.0)
    return float(max(tau_bar, 0.0))


def convergence_time(
    stg: RecoverySTG,
    tol: float = 1e-3,
    horizon: float = 50.0,
    step: float = 0.5,
    pi0: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
) -> Optional[float]:
    """Time until the transient loss probability settles at ε (Def. 4).

    Scans ``π(t)`` on a ``step``-spaced grid over ``[0, horizon]`` and
    returns the earliest grid time from which the transient loss
    probability stays within ``tol`` of the steady-state ε for the rest
    of the grid — the "how long before the model's promise holds"
    number Figure 6 asks for.  Returns ``None`` when the system has not
    settled by ``horizon``.

    The grid is walked incrementally — each point propagates the
    previous point's distribution by one ``step`` (the Markov property
    makes that exact) — so the total work is one uniformization pass
    over ``[0, horizon]``, not one pass per grid point.  Long horizons
    with coarse steps stay cheap; the slowly-mixing loss tail of the
    paper's configuration needs horizons in the thousands.
    """
    from repro.markov.transient import transient_probabilities

    if tol <= 0:
        raise ModelError(f"tol must be > 0, got {tol}")
    if horizon <= 0 or step <= 0:
        raise ModelError(
            f"horizon and step must be > 0, got {horizon}, {step}"
        )
    chain = stg.ctmc()
    eps = epsilon_convergence(stg)
    if pi0 is None:
        pi0 = stg.initial_distribution()
    pi_t = np.asarray(pi0, dtype=float)
    settled_at: Optional[float] = None
    t = 0.0
    while t <= horizon + 1e-12:
        if abs(loss_probability(stg, pi_t) - eps) <= tol:
            if settled_at is None:
                settled_at = t
        else:
            settled_at = None
        t += step
        if t <= horizon + 1e-12:
            pi_t = transient_probabilities(chain, pi_t, step,
                                           backend=backend)
    return settled_at
