"""Performance metrics over STG distributions.

Implements Definition 3 (loss probability), Definition 4
(ε-convergence), the category probabilities P(NORMAL) / P(SCAN) /
P(RECOVERY) plotted in Figure 5, and the expected queue lengths of
Figures 5(b)/(d)/(f).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.markov.steady_state import steady_state
from repro.markov.stg import RecoverySTG, State, StateCategory

__all__ = [
    "loss_probability",
    "category_probabilities",
    "expected_alerts",
    "expected_recovery_units",
    "epsilon_convergence",
    "state_probability",
    "expected_lost_alerts",
]


def _check(stg: RecoverySTG, pi: np.ndarray) -> np.ndarray:
    pi = np.asarray(pi, dtype=float)
    if pi.shape != (len(stg.states),):
        raise ModelError(
            f"distribution has shape {pi.shape}, expected "
            f"({len(stg.states)},)"
        )
    return pi


def loss_probability(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Definition 3: probability mass on the STG's right edge.

    ``lp_π = Σ_{i ∈ E} p_i`` where ``E`` is the set of states with the
    recovery-task queue full — the states in which the system is at its
    limit and IDS alerts are (about to be) lost.
    """
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(sum(pi[chain.index_of(s)] for s in stg.loss_states()))


def state_probability(stg: RecoverySTG, pi: np.ndarray, state: State) -> float:
    """Probability of one state under ``pi``."""
    pi = _check(stg, pi)
    return float(pi[stg.ctmc().index_of(state)])


def category_probabilities(
    stg: RecoverySTG, pi: np.ndarray
) -> Dict[StateCategory, float]:
    """Mass on NORMAL / SCAN / RECOVERY (the Figure 5 series)."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    out: Dict[StateCategory, float] = {c: 0.0 for c in StateCategory}
    for s in stg.states:
        out[s.category] += float(pi[chain.index_of(s)])
    return out


def expected_alerts(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Expected number of IDS alerts in the queue under ``pi``."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(
        sum(s.alerts * pi[chain.index_of(s)] for s in stg.states)
    )


def expected_recovery_units(stg: RecoverySTG, pi: np.ndarray) -> float:
    """Expected number of recovery-task units in the queue under ``pi``."""
    pi = _check(stg, pi)
    chain = stg.ctmc()
    return float(
        sum(s.units * pi[chain.index_of(s)] for s in stg.states)
    )


def expected_lost_alerts(
    stg: RecoverySTG,
    t: float,
    pi0: Optional[np.ndarray] = None,
) -> float:
    """Expected number of IDS alerts lost over ``[0, t]``.

    Alerts arrive as a Poisson stream of rate λ and are lost exactly
    while the system occupies a loss state, so the expected loss count
    is ``λ · Σ_{s ∈ E} l_s(t)`` with ``l`` the cumulative state times of
    Equation 3.  This quantifies the transient question the paper asks
    of Figure 6: "how many IDS alerts have been lost before the system
    enters its steady state".
    """
    from repro.markov.transient import cumulative_times

    chain = stg.ctmc()
    if pi0 is None:
        pi0 = stg.initial_distribution()
    lt = cumulative_times(chain, pi0, t)
    on_edge = sum(lt[chain.index_of(s)] for s in stg.loss_states())
    return float(stg.arrival_rate * on_edge)


def epsilon_convergence(stg: RecoverySTG,
                        pi: Optional[np.ndarray] = None) -> float:
    """Definition 4: the ``ε`` such that the system is ε-convergent.

    The loss probability at the steady state; computed from ``pi`` when
    given, otherwise from the STG's own steady state.  A 1-convergent
    system is useless; designers aim for ε as small as possible.
    """
    if pi is None:
        pi = steady_state(stg.ctmc())
    return loss_probability(stg, pi)
