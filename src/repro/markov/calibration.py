"""Calibrating the CTMC from the real analyzer and healer.

Section VI, step one: "design and evaluate the performance degradation
of analyzing algorithm and scheduling algorithm.  Evaluate μ_k and ξ_k,
where 1 ≤ k ≤ n."  The paper assumes those schedules are given; this
module *measures* them on the implementation:

- :func:`measure_scan_rates` times the recovery analyzer on alert
  batches of growing size — the processing rate with ``k`` queued
  alerts is ``k / (time to analyze a k-batch)``;
- :func:`measure_recovery_rates` times the healer over incidents with
  growing numbers of recovery units;
- :func:`fit_power_law` fits ``rate_k = r₁ / k^α`` by least squares in
  log-log space, yielding a
  :class:`~repro.markov.degradation.RateFunction` that plugs straight
  into :class:`~repro.markov.stg.RecoverySTG`.

The result closes the loop between the operational system and the
analytic model: the CTMC's parameters come from the code it models.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.analyzer import RecoveryAnalyzer
from repro.errors import ModelError
from repro.markov.degradation import RateFunction, power_law
from repro.sim.recovery_sim import run_pipeline
from repro.sim.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "PowerLawFit",
    "clear_calibration_cache",
    "fit_power_law",
    "measure_scan_rates",
    "measure_recovery_rates",
    "calibrated_schedules",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``rate_k = base / k^alpha``.

    Attributes
    ----------
    base:
        Fitted rate at ``k = 1``.
    alpha:
        Fitted degradation exponent (0 = no degradation).
    residual:
        Root-mean-square error of the fit in log space.
    """

    base: float
    alpha: float
    residual: float

    def as_rate_function(self) -> RateFunction:
        """The fit as a pluggable rate schedule."""
        return power_law(self.base, max(self.alpha, 0.0))


def fit_power_law(rates: Mapping[int, float]) -> PowerLawFit:
    """Fit ``rate_k = base / k^alpha`` to measured ``{k: rate}`` pairs.

    Raises
    ------
    ModelError
        With fewer than two distinct ``k`` values or non-positive rates.
    """
    ks = sorted(rates)
    if len(ks) < 2:
        raise ModelError("need at least two batch sizes to fit")
    if any(rates[k] <= 0 for k in ks):
        raise ModelError("rates must be positive")
    x = np.log([float(k) for k in ks])
    y = np.log([rates[k] for k in ks])
    # y = log(base) − α·x
    a = np.vstack([np.ones_like(x), -x]).T
    (log_base, alpha), *_ = np.linalg.lstsq(a, y, rcond=None)
    fitted = log_base - alpha * x
    residual = float(np.sqrt(np.mean((fitted - y) ** 2)))
    return PowerLawFit(
        base=float(math.exp(log_base)),
        alpha=float(alpha),
        residual=residual,
    )


def _timed(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()  # lint: allow[DET001] host benchmark timing, not simulated time
        fn()
        best = min(best, time.perf_counter() - start)  # lint: allow[DET001] host benchmark timing, not simulated time
    return best


# Building an attacked pipeline (generate a workload, run it with a
# campaign, collect the log) dominates calibration time, and sweeps
# call measure_scan_rates / measure_recovery_rates repeatedly with the
# same seed.  The result is memoized per (seed, n_attacks, tasks); the
# cached log/specs are only *read* by the analyzers built on top.
_PIPELINE_CACHE: Dict[Tuple[int, int, int], Tuple[object, object]] = {}


def clear_calibration_cache() -> None:
    """Drop memoized attacked pipelines (for tests and long sessions)."""
    _PIPELINE_CACHE.clear()


def _attacked_pipeline(seed: int, n_attacks: int, tasks: int = 10):
    key = (seed, n_attacks, tasks)
    cached = _PIPELINE_CACHE.get(key)
    if cached is not None:
        return cached
    gen = WorkloadGenerator(
        WorkloadConfig(n_workflows=4, tasks_per_workflow=tasks,
                       branch_probability=0.3),
        random.Random(seed),
    )
    workload = gen.generate()
    campaign = gen.pick_attacks(workload, n_attacks=n_attacks)
    result = run_pipeline(workload, campaign, heal=False, seed=seed)
    _PIPELINE_CACHE[key] = (workload, result)
    return workload, result


def measure_scan_rates(
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    repeats: int = 3,
) -> Dict[int, float]:
    """Alert-processing rate (alerts per second) with ``k`` items of
    work in the system.

    The rate ``μ_k`` is the speed of admitting one alert while ``k−1``
    recovery units are already queued: the analyzer must cross-check
    the new unit against every outstanding one (Section V-A), so the
    per-alert rate falls as the queue grows.
    """
    workload, attacked = _attacked_pipeline(
        seed, n_attacks=max(max(batch_sizes), 4), tasks=14
    )
    analyzer = RecoveryAnalyzer(attacked.log, attacked.specs_by_instance)
    alerts = list(attacked.malicious_ground_truth)
    if not alerts:
        raise ModelError("attacked pipeline produced no malicious uids")
    # One fixed outstanding unit, replicated, so that only the queue
    # *length* varies between measurements — not the unit contents.
    base_unit = analyzer.analyze([alerts[0]])
    new_alert = alerts[1 % len(alerts)]
    analyzer.analyze([new_alert], outstanding=[base_unit])  # warm-up
    rates: Dict[int, float] = {}
    for k in batch_sizes:
        queued = [base_unit] * (k - 1)
        seconds = _timed(
            lambda q=queued: analyzer.analyze(
                [new_alert], outstanding=q
            ),
            repeats,
        )
        rates[k] = 1.0 / seconds if seconds > 0 else float("inf")
    return rates


def measure_recovery_rates(
    unit_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    repeats: int = 2,
) -> Dict[int, float]:
    """Recovery-task dispatch rate (actions per second) vs queue size.

    "The scheduler needs to check dependence relations to all items in
    queues": dispatching ``minimal(S, ≺)`` means finding an action with
    no pending predecessor, which costs more the more units are queued.
    The measurement times one scheduler dispatch from a partial order
    holding ``k`` units' worth of recovery actions (identical unit
    contents, so only the queue length varies).
    """
    from repro.core.actions import Action
    from repro.workflow.precedence import PartialOrder
    from repro.workflow.scheduler import PartialOrderScheduler

    workload, attacked = _attacked_pipeline(seed, n_attacks=4, tasks=14)
    analyzer = RecoveryAnalyzer(attacked.log, attacked.specs_by_instance)
    alerts = list(attacked.malicious_ground_truth)
    if not alerts:
        raise ModelError("attacked pipeline produced no malicious uids")
    unit = analyzer.analyze(alerts[:1])
    unit_actions = sorted(unit.order.elements())

    def build_order(k: int) -> PartialOrder:
        """A queue of k units: each unit's actions, chained FIFO."""
        order: PartialOrder = PartialOrder()
        previous: list = []
        for i in range(k):
            current = []
            for action in unit_actions:
                tagged = Action(action.kind, f"u{i}:{action.uid}")
                order.add_element(tagged)
                current.append(tagged)
            for before, after in unit.order.edges():
                order.add_edge(
                    Action(before.kind, f"u{i}:{before.uid}"),
                    Action(after.kind, f"u{i}:{after.uid}"),
                )
            for prior in previous:
                order.add_edge(prior, current[0])  # FIFO across units
            previous = current
        return order

    rates: Dict[int, float] = {}
    for k in unit_counts:
        order = build_order(k)

        def dispatch_one(o=order):
            PartialOrderScheduler(o, lambda a: None).step()

        dispatch_one()  # warm-up
        seconds = _timed(dispatch_one, repeats)
        rates[k] = 1.0 / seconds if seconds > 0 else float("inf")
    return rates


def calibrated_schedules(
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
) -> Tuple[PowerLawFit, PowerLawFit]:
    """Measure and fit both schedules; returns ``(scan fit, recovery
    fit)`` ready to instantiate a
    :class:`~repro.markov.stg.RecoverySTG` (after scaling the base
    rates from wall-clock seconds to model time units)."""
    scan = fit_power_law(measure_scan_rates(batch_sizes, seed=seed))
    recovery = fit_power_law(
        measure_recovery_rates(batch_sizes, seed=seed)
    )
    return scan, recovery
