"""Rate-degradation families ``f`` and ``g``.

Section IV-D: alert processing and recovery execution slow down as queues
fill, because the analyzer and scheduler check dependences against every
queued item: ``μ_k = f(μ_1, k)`` and ``ξ_k = g(ξ_1, k)`` with
``μ_1 ≥ μ_2 ≥ ...`` and ``ξ_1 ≥ ξ_2 ≥ ...``.  "We use function f and g to
simulate the degradation of performance when the number of items in
queues increases."

This module provides the standard families used in the evaluation
(Figure 4 sweeps them) plus the exact presets for Figure 4's four panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Tuple

__all__ = [
    "RateFunction",
    "constant",
    "inverse_k",
    "power_law",
    "geometric",
    "linear_decay",
    "fig4_cases",
]


@dataclass(frozen=True)
class RateFunction:
    """A non-increasing rate schedule ``k ↦ rate_k`` for ``k ≥ 1``.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"mu1/k"``).
    base:
        The rate at ``k = 1`` (the paper's ``μ_1`` / ``ξ_1``).
    fn:
        Maps ``(base, k)`` to the rate with ``k`` queued items.
    """

    name: str
    base: float
    fn: Callable[[float, int], float]

    def __call__(self, k: int) -> float:
        """Rate with ``k`` items queued (``k ≥ 1``)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rate = self.fn(self.base, k)
        if rate < 0:
            raise ValueError(
                f"rate function {self.name!r} produced negative rate "
                f"{rate} at k={k}"
            )
        return rate

    def rebased(self, base: float) -> "RateFunction":
        """Same functional form with a different base rate."""
        return RateFunction(self.name, base, self.fn)


# The standard families use module-level functions (plus functools
# partials for parameterized ones) rather than lambdas so a RateFunction
# — and any RecoverySTG holding one — pickles cleanly across the
# process-pool boundary of repro.sim.batch.

def _constant_fn(b: float, k: int) -> float:
    return b


def _inverse_k_fn(b: float, k: int) -> float:
    return b / k


def _power_law_fn(alpha: float, b: float, k: int) -> float:
    return b / (k ** alpha)


def _geometric_fn(ratio: float, b: float, k: int) -> float:
    return b * ratio ** (k - 1)


def _linear_decay_fn(step: float, floor: float, b: float, k: int) -> float:
    return max(b - step * (k - 1), floor)


def constant(base: float) -> RateFunction:
    """No degradation: ``rate_k = rate_1`` for all ``k``."""
    return RateFunction("const", base, _constant_fn)


def inverse_k(base: float) -> RateFunction:
    """Linear-work degradation: ``rate_k = rate_1 / k``.

    Matches an analyzer/scheduler whose per-item cost grows linearly
    with queue length (the realistic case the paper emphasizes).
    """
    return RateFunction("1/k", base, _inverse_k_fn)


def power_law(base: float, alpha: float) -> RateFunction:
    """``rate_k = rate_1 / k^alpha``; ``alpha`` ≈ 0 is "very slow"
    degradation (Figure 4(a)), ``alpha = 1`` is :func:`inverse_k`."""
    return RateFunction(
        f"1/k^{alpha:g}", base, partial(_power_law_fn, alpha)
    )


def geometric(base: float, ratio: float) -> RateFunction:
    """``rate_k = rate_1 * ratio^(k-1)`` with ``0 < ratio ≤ 1``."""
    if not 0 < ratio <= 1:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    return RateFunction(
        f"geo{ratio:g}", base, partial(_geometric_fn, ratio)
    )


def linear_decay(base: float, step: float, floor: float = 1e-3) -> RateFunction:
    """``rate_k = max(rate_1 - step*(k-1), floor)``."""
    return RateFunction(
        f"lin-{step:g}", base, partial(_linear_decay_fn, step, floor)
    )


def fig4_cases(mu1: float, xi1: float) -> Dict[str, Tuple[RateFunction, RateFunction]]:
    """The four ``(f, g)`` pairs of Figure 4.

    - ``(a)`` very slow degradation of both rates — loss probability
      falls monotonically with buffer size;
    - ``(b)`` both degrade as ``1/k`` — loss is U-shaped in buffer size;
    - ``(c)`` only ``ξ`` degrades (``μ`` constant) — the adverse case;
    - ``(d)`` only ``μ`` degrades — better than (c): slowing the scan
      throttles the producer of recovery units while the drain stays
      fast.
    """
    return {
        "a": (power_law(mu1, 0.1), power_law(xi1, 0.1)),
        "b": (inverse_k(mu1), inverse_k(xi1)),
        "c": (constant(mu1), inverse_k(xi1)),
        "d": (inverse_k(mu1), constant(xi1)),
    }
