"""Finite-state Continuous-Time Markov Chains.

A CTMC is characterized by a generator matrix ``Q = (q_ij)`` and an
initial state probability vector ``π(0)``, where ``q_ij`` (``i ≠ j``) is
the transition rate from state ``i`` to state ``j`` and
``q_ii = -Σ_{j≠i} q_ij`` (Section IV-E).  States carry arbitrary hashable
labels so the recovery STG can use ``(alerts, units)`` pairs directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = ["CTMC"]


class CTMC:
    """An explicit finite CTMC over labelled states.

    Build with :meth:`from_rates` (sparse rate dictionary) or pass a
    dense generator directly.  The generator is validated: non-negative
    off-diagonal rates and (approximately) zero row sums.
    """

    def __init__(
        self,
        states: Sequence[Hashable],
        generator: np.ndarray,
        atol: float = 1e-9,
    ) -> None:
        states = list(states)
        if len(set(states)) != len(states):
            raise ModelError("duplicate state labels")
        q = np.asarray(generator, dtype=float)
        if q.shape != (len(states), len(states)):
            raise ModelError(
                f"generator shape {q.shape} does not match "
                f"{len(states)} states"
            )
        off_diag = q.copy()
        np.fill_diagonal(off_diag, 0.0)
        if (off_diag < -atol).any():
            raise ModelError("negative off-diagonal rate in generator")
        row_sums = q.sum(axis=1)
        if np.abs(row_sums).max() > 1e-6:
            raise ModelError(
                f"generator rows must sum to 0 (max |sum| = "
                f"{np.abs(row_sums).max():g})"
            )
        self._states = states
        self._index: Dict[Hashable, int] = {
            s: i for i, s in enumerate(states)
        }
        self._q = q

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rates(
        cls,
        states: Sequence[Hashable],
        rates: Mapping[Tuple[Hashable, Hashable], float],
    ) -> "CTMC":
        """Build from a sparse ``{(src, dst): rate}`` mapping.

        Diagonal entries are derived automatically; zero rates are
        dropped.
        """
        states = list(states)
        index = {s: i for i, s in enumerate(states)}
        n = len(states)
        q = np.zeros((n, n))
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ModelError(f"self-transition on state {src!r}")
            if rate < 0:
                raise ModelError(
                    f"negative rate {rate} for {src!r} → {dst!r}"
                )
            try:
                i, j = index[src], index[dst]
            except KeyError as exc:
                raise ModelError(f"unknown state {exc.args[0]!r}") from None
            q[i, j] += rate
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        return cls(states, q)

    # -- accessors -----------------------------------------------------------

    @property
    def states(self) -> List[Hashable]:
        """State labels, in generator order."""
        return list(self._states)

    @property
    def generator(self) -> np.ndarray:
        """A copy of the generator matrix ``Q``."""
        return self._q.copy()

    def index_of(self, state: Hashable) -> int:
        """Row/column index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelError(f"unknown state {state!r}") from None

    def rate(self, src: Hashable, dst: Hashable) -> float:
        """Transition rate ``src → dst`` (0 when absent)."""
        if src == dst:
            raise ModelError("use exit_rate() for diagonal entries")
        return float(self._q[self.index_of(src), self.index_of(dst)])

    def exit_rate(self, state: Hashable) -> float:
        """Total rate of leaving ``state`` (``-q_ii``)."""
        i = self.index_of(state)
        return float(-self._q[i, i])

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self._states)

    def __len__(self) -> int:
        return len(self._states)

    # -- distributions -----------------------------------------------------------

    def point_distribution(self, state: Hashable) -> np.ndarray:
        """Probability vector concentrated on one state (a valid
        ``π(0)``)."""
        pi = np.zeros(len(self._states))
        pi[self.index_of(state)] = 1.0
        return pi

    def validate_distribution(self, pi: np.ndarray,
                              atol: float = 1e-6) -> np.ndarray:
        """Check ``pi`` is a distribution over this chain's states."""
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (len(self._states),):
            raise ModelError(
                f"distribution has shape {pi.shape}, expected "
                f"({len(self._states)},)"
            )
        if (pi < -atol).any():
            raise ModelError("distribution has negative entries")
        if abs(pi.sum() - 1.0) > atol:
            raise ModelError(
                f"distribution sums to {pi.sum():g}, expected 1"
            )
        return pi

    def uniformization_rate(self) -> float:
        """A rate ``Λ ≥ max_i |q_ii|`` for uniformization."""
        return float(np.max(-np.diag(self._q))) or 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CTMC({len(self._states)} states)"
