"""Finite-state Continuous-Time Markov Chains.

A CTMC is characterized by a generator matrix ``Q = (q_ij)`` and an
initial state probability vector ``π(0)``, where ``q_ij`` (``i ≠ j``) is
the transition rate from state ``i`` to state ``j`` and
``q_ii = -Σ_{j≠i} q_ij`` (Section IV-E).  States carry arbitrary hashable
labels so the recovery STG can use ``(alerts, units)`` pairs directly.

Internally the generator is stored in *triplet* (COO) form — off-diagonal
``(row, col, rate)`` arrays plus the diagonal — because the recovery STG
has only ~3 transitions per state: at production buffer sizes a dense
``O(n²)`` matrix is almost entirely zeros.  The dense matrix
(:attr:`CTMC.generator`) and the scipy CSR matrix
(:meth:`CTMC.sparse_generator`) are both materialized lazily and cached,
so chains built with :meth:`CTMC.from_rates` never pay for a dense
matrix unless a dense solver asks for one.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.markov.backend import require_scipy_sparse

__all__ = ["CTMC"]


class CTMC:
    """An explicit finite CTMC over labelled states.

    Build with :meth:`from_rates` (sparse rate dictionary) or pass a
    dense generator directly.  The generator is validated: non-negative
    off-diagonal rates and (approximately) zero row sums.
    """

    def __init__(
        self,
        states: Sequence[Hashable],
        generator: np.ndarray,
        atol: float = 1e-9,
    ) -> None:
        states = list(states)
        if len(set(states)) != len(states):
            raise ModelError("duplicate state labels")
        q = np.asarray(generator, dtype=float)
        if q.shape != (len(states), len(states)):
            raise ModelError(
                f"generator shape {q.shape} does not match "
                f"{len(states)} states"
            )
        off_diag = q.copy()
        np.fill_diagonal(off_diag, 0.0)
        if (off_diag < -atol).any():
            raise ModelError("negative off-diagonal rate in generator")
        row_sums = q.sum(axis=1)
        if np.abs(row_sums).max() > 1e-6:
            raise ModelError(
                f"generator rows must sum to 0 (max |sum| = "
                f"{np.abs(row_sums).max():g})"
            )
        rows, cols = np.nonzero(off_diag)
        self._init_core(
            states,
            rows.astype(np.int64),
            cols.astype(np.int64),
            off_diag[rows, cols],
            np.diag(q).copy(),
        )
        self._dense = q  # already materialized — keep it cached

    def _init_core(
        self,
        states: List[Hashable],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        diag: np.ndarray,
    ) -> None:
        self._states = states
        self._index: Dict[Hashable, int] = {
            s: i for i, s in enumerate(states)
        }
        self._rows = rows
        self._cols = cols
        self._vals = vals
        self._diag = diag
        self._dense: Optional[np.ndarray] = None
        self._csr = None
        self._rate_lookup: Optional[Dict[Tuple[int, int], float]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rates(
        cls,
        states: Sequence[Hashable],
        rates: Mapping[Tuple[Hashable, Hashable], float],
    ) -> "CTMC":
        """Build from a sparse ``{(src, dst): rate}`` mapping.

        Diagonal entries are derived automatically; zero rates are
        dropped.  The dense matrix is **not** materialized — large
        chains stay in triplet form until a dense solver asks.
        """
        states = list(states)
        if len(set(states)) != len(states):
            raise ModelError("duplicate state labels")
        index = {s: i for i, s in enumerate(states)}
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ModelError(f"self-transition on state {src!r}")
            if rate < 0:
                raise ModelError(
                    f"negative rate {rate} for {src!r} → {dst!r}"
                )
            if rate == 0:
                continue
            try:
                rows.append(index[src])
                cols.append(index[dst])
            except KeyError as exc:
                raise ModelError(f"unknown state {exc.args[0]!r}") from None
            vals.append(float(rate))
        return cls._from_triplets(
            states,
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=float),
        )

    @classmethod
    def _from_triplets(
        cls,
        states: Sequence[Hashable],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> "CTMC":
        """Internal fast path: pre-validated off-diagonal triplets.

        Duplicate ``(row, col)`` entries are summed, matching the
        additive semantics of :meth:`from_rates`.  The diagonal is
        derived from row sums, so the zero-row-sum invariant holds by
        construction.
        """
        states = list(states)
        n = len(states)
        if (vals < 0).any():
            raise ModelError("negative off-diagonal rate in generator")
        if rows.size and (rows == cols).any():
            raise ModelError("self-transition in triplet data")
        # Coalesce duplicates so rate() and the dense/CSR materializers
        # agree on a single entry per (src, dst).
        if rows.size:
            flat = rows * n + cols
            order = np.argsort(flat, kind="stable")
            flat = flat[order]
            vals = vals[order]
            unique_flat, start = np.unique(flat, return_index=True)
            summed = np.add.reduceat(vals, start)
            rows = (unique_flat // n).astype(np.int64)
            cols = (unique_flat % n).astype(np.int64)
            vals = summed
        diag = np.zeros(n)
        np.subtract.at(diag, rows, vals)
        chain = cls.__new__(cls)
        chain._init_core(states, rows, cols, vals, diag)
        return chain

    # -- accessors -----------------------------------------------------------

    @property
    def states(self) -> List[Hashable]:
        """State labels, in generator order."""
        return list(self._states)

    @property
    def generator(self) -> np.ndarray:
        """A copy of the dense generator matrix ``Q`` (materialized
        lazily and cached)."""
        if self._dense is None:
            n = len(self._states)
            q = np.zeros((n, n))
            q[self._rows, self._cols] = self._vals
            q[np.arange(n), np.arange(n)] = self._diag
            self._dense = q
        return self._dense.copy()

    def sparse_generator(self):
        """The generator as a scipy CSR matrix (lazy, cached).

        Raises
        ------
        ModelError
            When scipy is not installed (with an install hint) — see
            :func:`repro.markov.backend.require_scipy_sparse`.
        """
        sparse, _ = require_scipy_sparse()
        if self._csr is None:
            n = len(self._states)
            idx = np.arange(n)
            rows = np.concatenate([self._rows, idx])
            cols = np.concatenate([self._cols, idx])
            vals = np.concatenate([self._vals, self._diag])
            self._csr = sparse.coo_matrix(
                (vals, (rows, cols)), shape=(n, n)
            ).tocsr()
        return self._csr.copy()

    def transitions(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Off-diagonal structure as ``(rows, cols, rates)`` arrays —
        the backend-agnostic view graph algorithms (reachability,
        embedded-chain walks) should use instead of densifying."""
        return self._rows.copy(), self._cols.copy(), self._vals.copy()

    @property
    def nnz(self) -> int:
        """Number of (coalesced) off-diagonal transitions."""
        return int(self._rows.size)

    def index_of(self, state: Hashable) -> int:
        """Row/column index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelError(f"unknown state {state!r}") from None

    def rate(self, src: Hashable, dst: Hashable) -> float:
        """Transition rate ``src → dst`` (0 when absent)."""
        if src == dst:
            raise ModelError("use exit_rate() for diagonal entries")
        if self._rate_lookup is None:
            self._rate_lookup = {
                (int(i), int(j)): float(v)
                for i, j, v in zip(self._rows, self._cols, self._vals)
            }
        return self._rate_lookup.get(
            (self.index_of(src), self.index_of(dst)), 0.0
        )

    def exit_rate(self, state: Hashable) -> float:
        """Total rate of leaving ``state`` (``-q_ii``)."""
        return float(-self._diag[self.index_of(state)])

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self._states)

    def __len__(self) -> int:
        return len(self._states)

    # -- distributions -----------------------------------------------------------

    def point_distribution(self, state: Hashable) -> np.ndarray:
        """Probability vector concentrated on one state (a valid
        ``π(0)``)."""
        pi = np.zeros(len(self._states))
        pi[self.index_of(state)] = 1.0
        return pi

    def validate_distribution(self, pi: np.ndarray,
                              atol: float = 1e-6) -> np.ndarray:
        """Check ``pi`` is a distribution over this chain's states."""
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (len(self._states),):
            raise ModelError(
                f"distribution has shape {pi.shape}, expected "
                f"({len(self._states)},)"
            )
        if (pi < -atol).any():
            raise ModelError("distribution has negative entries")
        if abs(pi.sum() - 1.0) > atol:
            raise ModelError(
                f"distribution sums to {pi.sum():g}, expected 1"
            )
        return pi

    def uniformization_rate(self) -> float:
        """A rate ``Λ ≥ max_i |q_ii|`` for uniformization."""
        return float(np.max(-self._diag)) or 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CTMC({len(self._states)} states)"
