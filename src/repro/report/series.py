"""Named (x, y) series — the data behind a figure panel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["Series", "format_series"]


@dataclass
class Series:
    """One plotted line: a label and its sampled points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append a point."""
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> List[float]:
        """The x coordinates."""
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        """The y coordinates."""
        return [p[1] for p in self.points]

    def y_at(self, x: float, atol: float = 1e-9) -> float:
        """The y value recorded at ``x`` (exact match)."""
        for px, py in self.points:
            if abs(px - x) <= atol:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x}")


def format_series(title: str, series: Sequence[Series],
                  x_label: str = "x") -> str:
    """Render several series sharing an x axis as one text table."""
    from repro.report.tables import format_table

    xs = sorted({x for s in series for x in s.xs})
    columns = [x_label] + [s.label for s in series]
    rows = []
    for x in xs:
        row = [x]
        for s in series:
            try:
                row.append(s.y_at(x))
            except KeyError:
                row.append(float("nan"))
        rows.append(row)
    return format_table(title, columns, rows)
