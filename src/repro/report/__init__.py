"""Result formatting shared by the benchmark harness and examples."""

from repro.report.tables import Table, format_table
from repro.report.series import Series, format_series

__all__ = ["Table", "format_table", "Series", "format_series"]
