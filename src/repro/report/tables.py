"""Plain-text tables for benchmark output.

Every figure-reproduction bench prints the series it computes as an
aligned text table (the numbers behind the paper's plots), so results
are inspectable without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as aligned text."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:
        return self.render()


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render a title, header and rows as aligned text."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * max(len(title), 1)]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
