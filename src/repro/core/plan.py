"""Recovery plans.

A :class:`RecoveryPlan` bundles the outcome of damage analysis for one
batch of IDS alerts: the Theorem 1/2 undo and redo sets (definite +
candidate), and the Theorem 3 partial order over the definite recovery
actions.  The plan corresponds to the paper's "unit of recovery tasks"
(one unit per alert) queued between the recovery analyzer and the
scheduler in Figure 2.

The plan is *static*: candidates are listed, not resolved.  Resolution —
which requires executing redos and re-deciding branches — is the
:class:`~repro.core.healer.Healer`'s job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.core.actions import Action, ActionKind
from repro.core.undo_redo import RedoAnalysis, UndoAnalysis
from repro.workflow.precedence import PartialOrder

__all__ = ["RecoveryPlan"]


@dataclass
class RecoveryPlan:
    """Schedulable outcome of analyzing one batch of alerts.

    Attributes
    ----------
    alert_uids:
        The malicious instances this plan responds to (one per alert).
    undo_analysis, redo_analysis:
        Static Theorem 1 / Theorem 2 results.
    order:
        Theorem 3 partial order over the definite undo/redo actions.
    units:
        Number of recovery-task units (= number of alerts; the CTMC's
        queue items).
    cross_unit_constraints:
        Ordering constraints against *previously queued* recovery units:
        ``(earlier unit's action, this plan's action)`` pairs for every
        conflict (shared instance or overlapping data objects).  The
        analyzer computes these by checking each new alert against all
        outstanding units — the work that makes the alert-processing
        rate ``μ_k`` fall as the recovery queue grows (Section IV-D).
    """

    alert_uids: Tuple[str, ...]
    undo_analysis: UndoAnalysis
    redo_analysis: RedoAnalysis
    order: PartialOrder[Action]
    units: int
    cross_unit_constraints: Tuple[Tuple[Action, Action], ...] = ()

    @property
    def undo_actions(self) -> FrozenSet[Action]:
        """Undo actions for the definite undo set."""
        return frozenset(
            a for a in self.order.elements() if a.kind == ActionKind.UNDO
        )

    @property
    def redo_actions(self) -> FrozenSet[Action]:
        """Redo actions for the definite redo set."""
        return frozenset(
            a for a in self.order.elements() if a.kind == ActionKind.REDO
        )

    @property
    def total_actions(self) -> int:
        """Number of scheduled recovery actions."""
        return len(self.order)

    def schedule(self, rng: Optional[random.Random] = None) -> List[Action]:
        """A linear extension of the plan's partial order.

        The scheduler "is supposed to choose the ``minimal(S, ≺)`` to
        execute"; ties are broken randomly with ``rng`` or
        deterministically without.
        """
        return self.order.topological_order(tiebreak=rng)

    def summary(self) -> str:
        """One-line human-readable account of the plan."""
        ua, ra = self.undo_analysis, self.redo_analysis
        return (
            f"plan: {len(self.alert_uids)} alerts, "
            f"{len(ua.definite)} definite undo "
            f"(+{len(ua.candidates)} candidates), "
            f"{len(ra.definite)} definite redo "
            f"(+{len(ra.candidate_uids)} candidates), "
            f"{len(self.order.edges())} order constraints"
        )
