"""Recovery actions.

Recovery manipulates three kinds of actions over task instances:

- ``undo(t)`` — remove ``t``'s effects by restoring the last clean version
  of every object it wrote;
- ``redo(t)`` — re-execute ``t``'s genuine code against the repaired store;
- normal — an ordinary workflow task scheduled alongside recovery
  (Theorem 4 constrains when it may run).

Actions are hashable values; the partial orders of Theorems 3/4 are built
over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ActionKind", "Action"]


class ActionKind(str, Enum):
    """What a recovery action does to its task instance."""

    UNDO = "undo"
    REDO = "redo"
    NORMAL = "normal"


@dataclass(frozen=True, order=True)
class Action:
    """One schedulable action over the task instance ``uid``."""

    kind: ActionKind
    uid: str

    @staticmethod
    def undo(uid: str) -> "Action":
        """The action ``undo(uid)``."""
        return Action(ActionKind.UNDO, uid)

    @staticmethod
    def redo(uid: str) -> "Action":
        """The action ``redo(uid)``."""
        return Action(ActionKind.REDO, uid)

    @staticmethod
    def normal(uid: str) -> "Action":
        """An ordinary (non-recovery) execution of ``uid``."""
        return Action(ActionKind.NORMAL, uid)

    def __str__(self) -> str:
        if self.kind == ActionKind.NORMAL:
            return self.uid
        return f"{self.kind.value}({self.uid})"
