"""Attack recovery core — the paper's primary contribution.

This package implements Section III (theories of recovery) and Section IV
(the recovery system):

- :mod:`repro.core.actions` — undo/redo/normal recovery actions;
- :mod:`repro.core.undo_redo` — Theorem 1 (undo tasks) and Theorem 2
  (redo tasks), including the *candidate* sets resolved only after redos;
- :mod:`repro.core.partial_orders` — Theorem 3 (orders among recovery
  tasks) and Theorem 4 (orders between recovery and normal tasks);
- :mod:`repro.core.plan` — a schedulable recovery plan;
- :mod:`repro.core.analyzer` — the recovery analyzer of Figure 2, turning
  IDS alerts into recovery plans;
- :mod:`repro.core.healer` — the operational self-healing executor that
  resolves candidates by re-execution and repairs the store and log;
- :mod:`repro.core.axioms` — Axiom 1 and the strict-correctness audit of
  Definition 2;
- :mod:`repro.core.strategies` — the three recovery strategies of
  Section III-D.
"""

from repro.core.actions import Action, ActionKind
from repro.core.analyzer import RecoveryAnalyzer
from repro.core.axioms import (
    CorrectnessReport,
    audit_strict_correctness,
    generates_incorrect_data,
)
from repro.core.concurrent import StrategyOutcome, run_strategy
from repro.core.epochs import EpochManager
from repro.core.healer import HealReport, Healer
from repro.core.partial_orders import recovery_partial_order
from repro.core.plan import RecoveryPlan
from repro.core.strategies import RecoveryStrategy
from repro.core.undo_redo import (
    RedoAnalysis,
    UndoAnalysis,
    find_redo_tasks,
    find_undo_tasks,
)

__all__ = [
    "Action",
    "ActionKind",
    "UndoAnalysis",
    "RedoAnalysis",
    "find_undo_tasks",
    "find_redo_tasks",
    "recovery_partial_order",
    "RecoveryPlan",
    "RecoveryAnalyzer",
    "Healer",
    "HealReport",
    "RecoveryStrategy",
    "audit_strict_correctness",
    "generates_incorrect_data",
    "CorrectnessReport",
    "EpochManager",
    "StrategyOutcome",
    "run_strategy",
]
