"""Theorem 3 and Theorem 4 — partial orders over recovery actions.

Theorem 3 constrains recovery actions against each other; Theorem 4
constrains pending *normal* tasks against recovery actions (with
single-copy data, a normal task touching recovered data must wait for the
recovery of that data).  The rules, with ``→`` any data/control dependence:

========  =====================================================================
Rule      Constraint
========  =====================================================================
T3.1      ``t_i ≺ t_j`` (log) ⇒ ``redo(t_i) ≺ redo(t_j)``
T3.2      ``t_i → t_j`` ⇒ ``redo(t_i) ≺ redo(t_j)``
T3.3      ``undo(t) ≺ redo(t)``
T3.4      ``t_i →a t_j`` ⇒ ``undo(t_j) ≺ redo(t_i)``
T3.5      ``t_i →o t_j`` ⇒ ``undo(t_j) ≺ undo(t_i)``
T3.6–10   dynamic control-path rules resolved during re-execution (the
          :class:`~repro.core.healer.Healer` enforces them operationally)
T4.1      ``t_i →{f,a,o,c} t_j``, ``t_j`` normal ⇒
          ``undo(t_i) ≺ redo(t_i) ≺ t_j``
T4.2      ``t_i →c* t_k``, ``t_k →f* t_j``, ``t_k ∉ L ∪ N``, ``t_j`` normal
          ⇒ ``undo(t_i) ≺ redo(t_i) ≺ t_j``
========  =====================================================================

The static rules (T3.1–T3.5, T4.1–T4.2) are materialized here as edges of
a :class:`~repro.workflow.precedence.PartialOrder` over
:class:`~repro.core.actions.Action` values.  Rules T3.6–T3.10 talk about
``succ(redo(t_i))`` — facts that only exist once redos execute — and are
enforced (and audited) dynamically by the healer.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.actions import Action
from repro.obs.events import OrderConstraint
from repro.workflow.dependency import DependencyAnalyzer
from repro.workflow.precedence import PartialOrder

__all__ = ["recovery_partial_order", "normal_task_constraints"]


def recovery_partial_order(
    analyzer: DependencyAnalyzer,
    undo_set: Iterable[str],
    redo_set: Iterable[str],
    trace: Optional[List[OrderConstraint]] = None,
) -> PartialOrder[Action]:
    """Build the Theorem 3 static partial order over recovery actions.

    Parameters
    ----------
    analyzer:
        Dependency analyzer over the (pre-recovery) system log.
    undo_set:
        Instances to undo.
    redo_set:
        Instances to redo; must be a subset of ``undo_set`` ∪ log (a redo
        without an undo is rejected by rule T3.3's premise).
    trace:
        Optional provenance sink: one
        :class:`~repro.obs.events.OrderConstraint` per edge added,
        tagged with the Theorem 3 rule (``"T3.1"``/``"T3.3"``/
        ``"T3.4"``/``"T3.5"``) that required it.

    Returns
    -------
    PartialOrder[Action]
        Order containing one ``undo`` action per undo instance and one
        ``redo`` action per redo instance, with every applicable
        T3.1–T3.5 edge.  Guaranteed acyclic for consistent inputs;
        callers may re-check with
        :meth:`~repro.workflow.precedence.PartialOrder.check_acyclic`.
    """
    undos = frozenset(undo_set)
    redos = frozenset(redo_set)
    order: PartialOrder[Action] = PartialOrder()

    def add_edge(rule: str, before: Action, after: Action) -> None:
        order.add_edge(before, after)
        if trace is not None:
            trace.append(OrderConstraint(
                0.0, rule=rule, before=str(before), after=str(after),
            ))

    for uid in sorted(undos):
        order.add_element(Action.undo(uid))
    for uid in sorted(redos):
        order.add_element(Action.redo(uid))

    # T3.3: undo(t) ≺ redo(t).
    for uid in sorted(undos & redos):
        add_edge("T3.3", Action.undo(uid), Action.redo(uid))

    # T3.1: log precedence between redo pairs.
    redo_sorted = sorted(redos, key=lambda u: analyzer.record(u).seq)
    for i, earlier in enumerate(redo_sorted):
        for later in redo_sorted[i + 1:]:
            add_edge("T3.1", Action.redo(earlier), Action.redo(later))

    # T3.2, T3.4, T3.5 from the log's data dependences.
    for uid in sorted(undos | redos):
        # flow / control handled by T3.1 edges (dependences imply ≺);
        # anti and output add undo-side constraints.
        for edge in analyzer.anti_edges_from(uid):
            # t_i →a t_j: t_j modified data t_i read.
            if uid in redos and edge.dst in undos:
                add_edge("T3.4", Action.undo(edge.dst), Action.redo(uid))
        for edge in analyzer.output_edges_from(uid):
            # t_i →o t_j: both wrote the same object, t_j later.
            if uid in undos and edge.dst in undos:
                add_edge("T3.5", Action.undo(edge.dst), Action.undo(uid))
    return order


def normal_task_constraints(
    analyzer: DependencyAnalyzer,
    undo_set: Iterable[str],
    redo_set: Iterable[str],
    normal_tasks: Mapping[str, Tuple[FrozenSet[str], FrozenSet[str]]],
    order: Optional[PartialOrder[Action]] = None,
    trace: Optional[List[OrderConstraint]] = None,
) -> PartialOrder[Action]:
    """Add Theorem 4 edges for pending normal tasks.

    Parameters
    ----------
    analyzer:
        Dependency analyzer over the system log.
    undo_set, redo_set:
        As in :func:`recovery_partial_order`.
    normal_tasks:
        Pending (not yet executed) normal tasks: mapping
        ``uid → (read set, write set)`` of *data object names*.
    order:
        Order to extend; a fresh Theorem 3 order is built when omitted.
    trace:
        Optional provenance sink: one
        :class:`~repro.obs.events.OrderConstraint` (rule ``"T4.1"``)
        per edge gating a normal task behind recovery.

    Notes
    -----
    A pending normal task has no log record, so its dependences on
    recovered tasks are judged from object names: it conflicts with a
    recovered instance when it reads an object that instance wrote
    (flow), writes an object that instance read (anti), or writes an
    object that instance wrote (output).  Each conflict yields
    ``undo(t_i) ≺ redo(t_i) ≺ t_j`` (rule T4.1); when ``t_i`` is undone
    but not redone, the normal task waits for the undo.
    """
    undos = frozenset(undo_set)
    redos = frozenset(redo_set)
    if order is None:
        order = recovery_partial_order(analyzer, undos, redos, trace=trace)

    def add_edge(before: Action, after: Action) -> None:
        order.add_edge(before, after)
        if trace is not None:
            trace.append(OrderConstraint(
                0.0, rule="T4.1", before=str(before), after=str(after),
            ))

    for norm_uid, (reads, writes) in sorted(normal_tasks.items()):
        normal_action = Action.normal(norm_uid)
        order.add_element(normal_action)
        for uid in sorted(undos | redos):
            record = analyzer.record(uid)
            rec_reads = set(record.reads)
            rec_writes = set(record.writes)
            conflict = (
                bool(rec_writes & set(reads))    # flow into the normal task
                or bool(rec_reads & set(writes))  # anti
                or bool(rec_writes & set(writes))  # output
            )
            if not conflict:
                continue
            if uid in undos:
                add_edge(Action.undo(uid), normal_action)
            if uid in redos:
                add_edge(Action.redo(uid), normal_action)
    return order
