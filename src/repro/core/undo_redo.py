"""Theorem 1 (undo tasks) and Theorem 2 (redo tasks).

Given the set ``B`` of malicious tasks reported by the IDS, Theorem 1
identifies every instance that generated incorrect data:

1. ``t ∈ B`` — directly malicious;
2. ``∃ t_i ∈ B`` with ``t_i →c* t_j`` and ``t_j ∉ succ(redo(t_i))`` —
   *candidate*: ``t_j`` sits on an execution path that the repaired branch
   may abandon;
3. ``∃ t_i ∈ B, t_i →f* t_j`` — infected through data flow;
4. ``∃ t_i ∈ B, ∃ t_k ∉ L`` with ``t_i →c* t_k``, ``t_k →f* t_j`` and
   ``t_k ∈ succ(redo(t_i))`` — *candidate*: ``t_j`` read data that the
   alternative path's ``t_k`` would have produced.

Conditions 2 and 4 depend on branch decisions taken during recovery, so
their members are *candidates* here; the
:class:`~repro.core.healer.Healer` resolves them by re-execution.

Theorem 2 then says which undone tasks are re-executed: those not control
dependent on another bad task (definite), and those control dependent on a
bad ``t_j`` but still on the re-executed path (candidates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.obs.events import RedoDecision, UndoDecision
from repro.workflow.dependency import DependencyAnalyzer

__all__ = [
    "StaleReadCandidate",
    "UndoAnalysis",
    "RedoAnalysis",
    "find_undo_tasks",
    "find_redo_tasks",
]


@dataclass(frozen=True)
class StaleReadCandidate:
    """One instantiation of Theorem 1 condition 4.

    ``bad_uid →c* unexecuted_task`` and ``unexecuted_task →f* reader_uid``:
    if the redo of ``bad_uid`` routes the workflow through
    ``unexecuted_task``, then ``reader_uid`` read data that is not up to
    date and must be undone.
    """

    bad_uid: str
    unexecuted_task: str
    reader_uid: str
    objects: FrozenSet[str]


@dataclass(frozen=True)
class UndoAnalysis:
    """Result of Theorem 1 over a log and a malicious set ``B``.

    Attributes
    ----------
    malicious:
        Condition 1 — the input set ``B`` (restricted to instances found
        in the log).
    infected:
        Condition 3 — flow closure of ``B`` (excluding ``B`` itself).
    control_candidates:
        Condition 2 — pairs ``(bad uid, dependent uid)``: the dependent is
        undone iff it falls off the path after ``redo(bad uid)``.
    stale_read_candidates:
        Condition 4 — see :class:`StaleReadCandidate`.
    """

    malicious: FrozenSet[str]
    infected: FrozenSet[str]
    control_candidates: FrozenSet[Tuple[str, str]]
    stale_read_candidates: FrozenSet[StaleReadCandidate]

    @property
    def definite(self) -> FrozenSet[str]:
        """Instances certain to need undo (conditions 1 and 3)."""
        return self.malicious | self.infected

    @property
    def candidates(self) -> FrozenSet[str]:
        """Instances whose undo is conditional on redo outcomes."""
        ctrl = {dep for _, dep in self.control_candidates}
        stale = {c.reader_uid for c in self.stale_read_candidates}
        return frozenset((ctrl | stale) - self.definite)

    @property
    def all_possible(self) -> FrozenSet[str]:
        """Upper bound on the undo set (definite plus all candidates)."""
        return self.definite | self.candidates


@dataclass(frozen=True)
class RedoAnalysis:
    """Result of Theorem 2 over an undo set.

    Attributes
    ----------
    definite:
        Condition 1 — undone instances not control dependent on any other
        bad instance; they are certainly re-executed.
    candidates:
        Condition 2 — pairs ``(controlling bad uid, dependent uid)``: the
        dependent is redone iff it remains on the re-executed path.
    """

    definite: FrozenSet[str]
    candidates: FrozenSet[Tuple[str, str]]

    @property
    def candidate_uids(self) -> FrozenSet[str]:
        """Instances whose redo depends on re-executed branch decisions."""
        return frozenset(dep for _, dep in self.candidates)


def _traced_flow_closure(
    analyzer: DependencyAnalyzer,
    seeds: FrozenSet[str],
    trace: List[UndoDecision],
) -> FrozenSet[str]:
    """Flow closure of ``seeds`` with one T1.3 provenance record per
    infected instance: the dependency path that first reached it and
    the data objects of the final edge.

    Produces exactly the same set as
    :meth:`~repro.workflow.dependency.DependencyAnalyzer.flow_closure`;
    only the bookkeeping differs.
    """
    parent: Dict[str, Tuple[str, FrozenSet[str]]] = {}
    seen: Set[str] = set()
    frontier: List[str] = list(seeds)
    while frontier:
        uid = frontier.pop()
        for edge in analyzer.flow_dependents(uid):
            if edge.dst not in seen:
                seen.add(edge.dst)
                parent[edge.dst] = (edge.src, edge.objects)
                frontier.append(edge.dst)
    infected = frozenset(seen) - seeds
    for uid in sorted(infected):
        chain: List[str] = []
        objects = parent[uid][1]
        cur = uid
        while cur in parent and parent[cur][0] not in chain:
            src = parent[cur][0]
            chain.append(src)
            cur = src
            if cur in seeds:
                break
        trace.append(UndoDecision(
            0.0, uid=uid, condition="T1.3",
            via=tuple(reversed(chain)),
            objects=tuple(sorted(objects)),
        ))
    return infected


def find_undo_tasks(
    analyzer: DependencyAnalyzer,
    malicious: Iterable[str],
    trace: Optional[List[UndoDecision]] = None,
) -> UndoAnalysis:
    """Apply Theorem 1: find definite and candidate undo instances.

    Parameters
    ----------
    analyzer:
        Dependency analyzer over the system log (with specs registered,
        needed for control dependences and condition 4).
    malicious:
        Uids of the instances reported malicious (the set ``B``).
    trace:
        Optional provenance sink: when given, one
        :class:`~repro.obs.events.UndoDecision` (time ``0.0`` — the
        publisher stamps it) is appended per ``(instance, condition)``
        that fired, carrying the dependency path and objects that
        triggered it.  ``None`` (default) records nothing and costs
        nothing.
    """
    log = analyzer.log
    bad_in_log = frozenset(u for u in malicious if u in log)

    if trace is not None:
        for bad in sorted(bad_in_log):
            trace.append(UndoDecision(0.0, uid=bad, condition="T1.1"))

    # Condition 3: flow closure of B.
    if trace is not None:
        infected = _traced_flow_closure(analyzer, bad_in_log, trace)
    else:
        infected = analyzer.flow_closure(bad_in_log) - bad_in_log

    closure = bad_in_log | infected

    # Condition 2: control dependents (in the log) of any bad task.
    control_candidates: Set[Tuple[str, str]] = set()
    for bad in sorted(closure):
        for dep in analyzer.control_dependents(bad):
            control_candidates.add((bad, dep))
            if trace is not None:
                trace.append(UndoDecision(
                    0.0, uid=dep, condition="T1.2", via=(bad,),
                ))

    # Condition 4: readers of data an unexecuted alternative-path task
    # would write.
    stale: Set[StaleReadCandidate] = set()
    for bad in sorted(closure):
        record = analyzer.record(bad)
        wf = record.instance.workflow_instance
        model = analyzer.control_model(wf)
        spec = model.spec
        executed_tasks = {
            r.instance.task_id for r in log.trace(wf)
        }
        bad_task = record.instance.task_id
        for t_k in sorted(spec.tasks):
            if t_k in executed_tasks:
                continue  # t_k ∈ L: not condition 4
            if not model.depends(bad_task, t_k):
                continue  # need t_i →c* t_k
            writes_k = spec.task(t_k).writes
            if not writes_k:
                continue
            # Potential direct flow t_k →f t_j: t_j read an object t_k
            # would write.  Extend transitively through the log's flow
            # edges from those direct readers.
            direct_readers: List[Tuple[str, FrozenSet[str]]] = []
            for r in log.normal_records():
                objs = writes_k & set(r.reads)
                if objs and r.uid != bad:
                    direct_readers.append((r.uid, frozenset(objs)))
            transitive = analyzer.flow_closure(
                uid for uid, _ in direct_readers
            )
            for uid, objs in direct_readers:
                stale.add(StaleReadCandidate(bad, t_k, uid, objs))
                if trace is not None:
                    trace.append(UndoDecision(
                        0.0, uid=uid, condition="T1.4",
                        via=(bad, t_k),
                        objects=tuple(sorted(objs)),
                    ))
            for uid in transitive:
                if uid == bad:
                    continue
                stale.add(
                    StaleReadCandidate(bad, t_k, uid, frozenset())
                )
                if trace is not None:
                    trace.append(UndoDecision(
                        0.0, uid=uid, condition="T1.4",
                        via=(bad, t_k),
                    ))
    return UndoAnalysis(
        malicious=bad_in_log,
        infected=frozenset(infected),
        control_candidates=frozenset(control_candidates),
        stale_read_candidates=frozenset(stale),
    )


def find_redo_tasks(
    analyzer: DependencyAnalyzer,
    undo_set: Iterable[str],
    trace: Optional[List[RedoDecision]] = None,
) -> RedoAnalysis:
    """Apply Theorem 2: split the undo set into definite and candidate
    redos.

    Parameters
    ----------
    analyzer:
        Dependency analyzer over the system log.
    undo_set:
        The bad set ``B`` after Theorem 1 (definite undo instances).
    trace:
        Optional provenance sink: one
        :class:`~repro.obs.events.RedoDecision` per instance, naming
        the Theorem 2 condition (and for T2.2 the controlling bad
        instances) that decided it.
    """
    bad = frozenset(undo_set)
    definite: Set[str] = set()
    candidates: Set[Tuple[str, str]] = set()
    for uid in sorted(bad):
        controllers = set(analyzer.control_sources(uid)) & bad
        controllers.discard(uid)
        if not controllers:
            definite.add(uid)  # condition 1
            if trace is not None:
                trace.append(RedoDecision(0.0, uid=uid, condition="T2.1"))
        else:
            for ctrl in sorted(controllers):
                candidates.add((ctrl, uid))  # condition 2
            if trace is not None:
                trace.append(RedoDecision(
                    0.0, uid=uid, condition="T2.2",
                    via=tuple(sorted(controllers)),
                ))
    return RedoAnalysis(
        definite=frozenset(definite),
        candidates=frozenset(candidates),
    )
