"""The three recovery strategies of Section III-D.

The paper weighs correctness against concurrency:

1. **Strict correctness** — the adopted strategy: normal tasks touching
   recovered data wait until damage analysis is complete (Theorem 4).
   Guarantees correctness *and termination* of recovery.
2. **Risk all** — execute tasks before dependence relations are known.
   Both recovery and normal tasks may be corrupted and need re-repair;
   recovery may never terminate.
3. **Risk normal only** — multi-version data objects break anti-flow and
   output dependences, so normal tasks proceed without blocking while
   recovery stays correct; normal tasks executed on stale snapshots may
   later need repair, and every object pays a version-storage cost.

The enum is consumed by the architecture/simulation layers to decide
blocking behaviour and by the strategy-ablation benchmark.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["RecoveryStrategy"]


class RecoveryStrategy(str, Enum):
    """Which concurrency/correctness trade-off the system runs with."""

    STRICT = "strict"
    RISK_ALL = "risk_all"
    RISK_NORMAL_ONLY = "risk_normal_only"

    @property
    def blocks_normal_tasks(self) -> bool:
        """Must normal tasks wait for damage analysis to finish?

        Only strict correctness blocks them; both risk strategies trade
        that wait for potential re-repair work.
        """
        return self is RecoveryStrategy.STRICT

    @property
    def recovery_guaranteed_terminating(self) -> bool:
        """Is the recovery guaranteed to terminate?

        Risking recovery tasks themselves (``RISK_ALL``) forfeits the
        termination guarantee: corrupted recovery tasks generate ever
        more recovery tasks.
        """
        return self is not RecoveryStrategy.RISK_ALL

    @property
    def requires_multiversion_store(self) -> bool:
        """Does the strategy need multi-version data objects?"""
        return self is RecoveryStrategy.RISK_NORMAL_ONLY

    @property
    def recovery_stays_correct(self) -> bool:
        """Can recovery tasks themselves be corrupted mid-recovery?"""
        return self is not RecoveryStrategy.RISK_ALL

    def describe(self) -> str:
        """One-line description used in reports."""
        return {
            RecoveryStrategy.STRICT: (
                "strict correctness: delay normal tasks during damage "
                "analysis; recovery correct and terminating"
            ),
            RecoveryStrategy.RISK_ALL: (
                "full concurrency: both recovery and normal tasks risk "
                "corruption; termination not guaranteed"
            ),
            RecoveryStrategy.RISK_NORMAL_ONLY: (
                "multi-version concurrency: recovery stays correct, "
                "normal tasks risk repair, extra storage per version"
            ),
        }[self]
