"""Operational comparison of the Section III-D recovery strategies.

The paper's three strategies differ in *when normal tasks may run*
relative to damage analysis:

- **STRICT** — normal tasks submitted during an incident wait until the
  recovery completes; they then execute on clean data and never need
  repair.
- **RISK_NORMAL_ONLY** — normal tasks execute immediately against the
  (possibly corrupted) data; multi-version objects keep recovery itself
  correct, and any normal task that consumed damaged data is repaired by
  the recovery pass.
- **RISK_ALL** — recovery tasks themselves may also consume unanalyzed
  data; correctness and termination are forfeited, so no operational
  executor is provided (the strategy exists as an analytical bound).

:func:`run_strategy` executes a full incident under either operational
strategy and reports the costs; a key emergent property — asserted in
the tests — is that both strategies converge to the *same* final state
(they trade normal-task latency against repair work, not correctness).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.axioms import CorrectnessReport, audit_strict_correctness
from repro.core.healer import HealReport, Healer
from repro.core.strategies import RecoveryStrategy
from repro.errors import RecoveryError
from repro.ids.attacks import AttackCampaign
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = ["StrategyOutcome", "run_strategy"]


@dataclass
class StrategyOutcome:
    """Measured cost of handling one incident under a strategy.

    Attributes
    ----------
    strategy:
        The strategy executed.
    delayed_tasks:
        Normal task executions that had to wait for recovery (STRICT
        delays all of them; the risk strategy none).
    repaired_tasks:
        Normal task executions that consumed damaged data and were
        repaired by the heal (0 under STRICT).
    recovery_operations:
        Total undo + redo + new executions the heal performed.
    storage_versions:
        Data-object versions retained at the end (the multi-version
        strategy's storage bill).
    final_snapshot:
        Data values after the incident is fully handled.
    heal:
        The underlying heal report.
    audit:
        Definition 2 verdict (must hold for both strategies).
    """

    strategy: RecoveryStrategy
    delayed_tasks: int
    repaired_tasks: int
    recovery_operations: int
    storage_versions: int
    final_snapshot: Dict[str, Any]
    heal: HealReport
    audit: CorrectnessReport


def run_strategy(
    strategy: RecoveryStrategy,
    attacked_specs: Sequence[WorkflowSpec],
    pending_specs: Sequence[WorkflowSpec],
    initial_data: Mapping[str, Any],
    campaign: AttackCampaign,
    seed: int = 0,
) -> StrategyOutcome:
    """Handle one incident under ``strategy``.

    The incident: ``attacked_specs`` run while ``campaign`` tampers with
    them; the IDS (modeled as the campaign's ground truth) reports; then
    ``pending_specs`` arrive as normal work *during* the recovery
    window.

    - Under ``STRICT`` the pending workflows run only after the heal.
    - Under ``RISK_NORMAL_ONLY`` they run before it, on whatever data
      the attack left behind, and the heal repairs the fallout.

    Raises
    ------
    RecoveryError
        If ``strategy`` is ``RISK_ALL`` (no terminating executor
        exists — that is the strategy's documented defect).
    """
    if strategy is RecoveryStrategy.RISK_ALL:
        raise RecoveryError(
            "RISK_ALL has no operational executor: recovery tasks may be "
            "corrupted mid-recovery and termination is not guaranteed "
            "(Section III-D)"
        )
    store = DataStore(initial_data)
    log = SystemLog()
    engine = Engine(store, log, rng=random.Random(seed))

    for i, spec in enumerate(attacked_specs):
        run = engine.new_run(spec, f"attacked.{i}.{spec.workflow_id}")
        engine.run_to_completion(run, tamper=campaign)

    pending_named = [
        (f"pending.{i}.{spec.workflow_id}", spec)
        for i, spec in enumerate(pending_specs)
    ]

    delayed = 0
    if strategy is RecoveryStrategy.RISK_NORMAL_ONLY:
        # Normal work proceeds immediately on possibly-dirty data.
        for name, spec in pending_named:
            engine.run_to_completion(engine.new_run(spec, name))
    else:
        delayed = sum(len(spec.tasks) for __, spec in pending_named)

    healer = Healer(store, log, engine.specs_by_instance)
    report = healer.heal(campaign.malicious_uids)

    if strategy is RecoveryStrategy.STRICT:
        # The delayed normal work executes on the healed state.  Its
        # records extend the healed history so the audit covers it.
        history = list(report.final_history)
        from repro.core.axioms import HistoryStep

        for name, spec in pending_named:
            run = engine.new_run(spec, name)
            result = engine.run_to_completion(run)
            for inst in result.instances:
                history.append(
                    HistoryStep(name, inst.task_id, inst.number)
                )
        final_history: Tuple = tuple(history)
    else:
        final_history = report.final_history

    repaired = sum(
        1 for uid in report.undone if uid.startswith("pending.")
    )
    audit = audit_strict_correctness(
        engine.specs_by_instance,
        dict(initial_data),
        final_history,
        store.snapshot(),
    )
    storage = sum(
        len(store.history(name)) for name in store.names()
    )
    return StrategyOutcome(
        strategy=strategy,
        delayed_tasks=delayed,
        repaired_tasks=repaired,
        recovery_operations=report.touched,
        storage_versions=storage,
        final_snapshot=store.snapshot(),
        heal=report,
        audit=audit,
    )
