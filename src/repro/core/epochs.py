"""Multi-epoch operation: healing across sequential attack waves.

The :class:`~repro.core.healer.Healer` treats the log's normal records
as the authoritative history of *one epoch* — the paper's recovery also
runs once the alert queue has drained.  Real systems live longer than
one burst: new workflows run after a recovery, new attacks hit them, and
the next recovery must trust the previous recovery's results rather than
re-derive the world from the original initial data.

:class:`EpochManager` provides that lifecycle:

- workflows execute through engines bound to the current epoch's log;
- ``heal()`` runs the healer against the current epoch and then *rolls*
  the epoch: the healed log is archived, a fresh empty log begins, and
  the current (healed) store versions become the next epoch's trusted
  baseline — later heals measure damage against them, exactly as the
  first heal measures damage against the initial data;
- a combined history across all epochs supports end-to-end
  strict-correctness audits against the original initial data.

One consequence of rolling: alerts naming instances of an already-rolled
epoch are ignored by later heals (their log is archived).  Process every
alert of a burst *before* rolling — which is precisely the paper's
operating discipline: recovery starts only once the alert queue has
drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.axioms import (
    CorrectnessReport,
    HistoryStep,
    audit_strict_correctness,
)
from repro.core.healer import HealReport, Healer
from repro.errors import RecoveryError
from repro.obs.events import HealFinished, HealStarted
from repro.workflow.data import DataStore
from repro.workflow.engine import Engine
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = ["EpochManager"]


class EpochManager:
    """Owns a store and a sequence of log epochs.

    Parameters
    ----------
    store:
        The (shared, versioned) data store.
    initial_data:
        The store's contents at creation — the ground truth for the
        combined audit.
    """

    def __init__(self, store: DataStore,
                 initial_data: Mapping[str, Any]) -> None:
        self._store = store
        self._initial_data = dict(initial_data)
        self._log = SystemLog()
        self._specs: Dict[str, WorkflowSpec] = {}
        self._baseline: Optional[Dict[str, int]] = None
        self._epoch = 0
        self._archived: List[SystemLog] = []
        self._combined_history: List[HistoryStep] = []
        self._instance_seq = 0

    # -- running workflows ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """Index of the current epoch (0 before any heal)."""
        return self._epoch

    @property
    def store(self) -> DataStore:
        """The shared data store."""
        return self._store

    @property
    def log(self) -> SystemLog:
        """The current epoch's log."""
        return self._log

    @property
    def archived_logs(self) -> List[SystemLog]:
        """Logs of completed epochs, oldest first."""
        return list(self._archived)

    @property
    def specs_by_instance(self) -> Dict[str, WorkflowSpec]:
        """Spec of every workflow instance run so far (all epochs)."""
        return dict(self._specs)

    def new_engine(self) -> Engine:
        """An engine bound to the current epoch's log.

        Engines from earlier epochs must not be reused after a heal —
        they hold the archived log.
        """
        return Engine(self._store, self._log)

    def run_workflow(self, spec: WorkflowSpec,
                     name: Optional[str] = None) -> str:
        """Run one workflow instance to completion in the current epoch;
        returns its instance id."""
        return self.run_workflow_attacked(spec, tamper=None, name=name)

    def run_workflow_attacked(self, spec: WorkflowSpec, tamper=None,
                              name: Optional[str] = None) -> str:
        """Like :meth:`run_workflow`, with an optional tamper hook."""
        if name is None:
            name = f"e{self._epoch}.wf{self._instance_seq}"
        self._instance_seq += 1
        if name in self._specs:
            raise RecoveryError(
                f"workflow instance {name!r} already exists (instance ids "
                "must be unique across epochs)"
            )
        engine = self.new_engine()
        run = engine.new_run(spec, name)
        engine.run_to_completion(run, tamper=tamper)
        self._specs[name] = spec
        return name

    # -- healing ----------------------------------------------------------------

    def heal(self, malicious, forged_runs=(), bus=None,
             clock=None, bracket: bool = False,
             profiler=None) -> HealReport:
        """Heal the current epoch, then roll to the next one.

        ``bus``/``clock`` are forwarded to the underlying
        :class:`~repro.core.healer.Healer` for per-task undo/redo
        observability (no-ops when ``None``).  ``bracket=True``
        additionally publishes the ``HealStarted``/``HealFinished``
        pair around the heal — callers that drive the manager directly
        (fleet sweeps, fuzz backlog drains) opt in so the conformance
        monitor sees every undo/redo inside a heal bracket; callers
        already bracketed upstream (``SelfHealingSystem.recovery_step``,
        the fullstack simulator's ``commit_repairs``) keep the default.
        ``profiler`` (a :class:`~repro.obs.perf.PhaseProfiler`) is
        likewise forwarded for the undo/settle/reconcile wall-time
        split.
        """
        publish = (bracket and bus is not None and bus.active)
        started = clock() if (publish and clock is not None) else 0.0
        if publish:
            bus.publish(HealStarted(started, malicious=tuple(malicious)))
        healer = Healer(
            self._store, self._log, self._specs, baseline=self._baseline,
            bus=bus, clock=clock, profiler=profiler,
        )
        report = healer.heal(malicious, forged_runs=forged_runs)
        if publish:
            now = clock() if clock is not None else 0.0
            bus.publish(HealFinished(
                now,
                undone=len(report.undone),
                redone=len(report.redone),
                kept=len(report.kept),
                abandoned=len(report.abandoned),
                new_executions=len(report.new_executions),
                duration=now - started,
            ))
        self._combined_history.extend(report.final_history)
        self._roll_epoch(report)
        return report

    def _roll_epoch(self, report: HealReport) -> None:
        """Archive the healed log and open a fresh epoch."""
        self._archived.append(self._log)
        self._log = SystemLog()
        # The current (healed) store versions become the next epoch's
        # trusted baseline ("the last version before the next attack").
        self._baseline = {
            name: self._store.latest(name).number
            for name in self._store.names()
        }
        self._epoch += 1

    # -- auditing ---------------------------------------------------------------

    @property
    def combined_history(self) -> Tuple[HistoryStep, ...]:
        """Healed history accumulated across all completed epochs."""
        return tuple(self._combined_history)

    def audit(self) -> CorrectnessReport:
        """Audit the accumulated healed history against the *original*
        initial data (Definition 2, end to end across epochs)."""
        return audit_strict_correctness(
            self._specs,
            self._initial_data,
            self.combined_history,
            self._store.snapshot(),
        )
