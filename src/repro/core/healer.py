"""The self-healing executor.

The healer turns the static analyses of Theorems 1–2 into an operational
repair of the data store and log, resolving the *candidate* undo/redo sets
by actually re-executing tasks and re-deciding branches — the procedure
the paper sketches with ``succ(redo(t_i))``.

Algorithm
---------
Given the malicious set ``B`` (from IDS alerts) and any attacker-forged
workflow runs:

**Phase A — undo analysis.**  Compute the flow closure of ``B`` (Theorem
1, conditions 1 and 3).  Every version written by a closure instance is
*dirty*; one ``undo`` record per closure instance is committed (newest
first, honoring rule T3.5's reverse-output-dependence order), realizing
rule T3.3 (``undo(t) ≺ redo(t)``).

**Phase B — settle pass.**  Walk the original log in commit order (rule
T3.1: redos follow log precedence).  Each workflow instance owns a
*walker* tracking the node its healed execution expects next, and the
healer maintains a **settled view** of every data object: its value as of
the already-settled prefix of the healed history.  All recovery reads go
through this view, which is what makes rule T3.4 hold semantically — a
recovery execution can never observe a write that the healed history
orders after it, nor a write that is doomed to be undone.

- a record matching its walker whose reads are clean and whose read
  values equal the settled view is **kept** (its effects stand);
- a record matching its walker but with dirty or stale reads is
  **redone**: the genuine task body re-executes against the view, and its
  branch decision is re-taken — possibly diverging onto a new execution
  path (resolving Theorem 1 condition 2 / Theorem 2 condition 2);
- a record that no longer matches its walker is **abandoned**: undone and
  not redone (Theorem 2 — redoing it would violate the specification);
- when a walker diverges onto path segments never executed before, those
  tasks run inline as **new executions** (Theorem 1 condition 4: their
  writes invalidate stale readers, which are then redone at their own
  log positions).

**Phase C — reconcile.**  The physical store is brought to the settled
view (restoring "the last version before the attack" for objects whose
surviving value predates the damage), so that after ``heal()`` returns,
``store.read(x)`` equals the healed history's final value for every
object — Definition 2's "no incorrect data exists".

Scope note: ``heal()`` treats the log's *normal* records as the
authoritative history.  Heal once per log epoch; to recover from attacks
that arrive after a heal, feed all alerts of the burst to a single
``heal()`` call (this is exactly how the Section IV architecture batches
alerts: SCAN drains the alert queue, then recovery executes).
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.actions import Action
from repro.core.axioms import HistoryStep
from repro.core.undo_redo import UndoAnalysis, find_undo_tasks
from repro.errors import ExecutionError, RecoveryError
from repro.obs.events import EventBus, TaskRedone, TaskUndone
from repro.obs.perf import PhaseProfiler
from repro.workflow.data import TOMBSTONE, DataStore
from repro.workflow.dependency import DependencyAnalyzer
from repro.workflow.log import LogRecord, RecordKind, SystemLog
from repro.workflow.spec import WorkflowSpec
from repro.workflow.task import TaskInstance

__all__ = ["Healer", "HealReport"]

#: Safety bound on new-path executions per workflow during one heal.
_MAX_INLINE_STEPS = 10_000


@dataclass
class HealReport:
    """Everything a heal did, for evaluation and auditing.

    Attributes
    ----------
    malicious:
        The input set ``B`` restricted to logged instances (plus all
        instances of forged runs).
    undone:
        Every instance whose effects were removed, in undo order (a
        redone instance is undone then redone).
    redone:
        Instances re-executed at their original path position.
    kept:
        Instances whose original effects were validated and preserved.
    abandoned:
        Instances undone and *not* redone (fell off the healed path or
        belonged to a forged run) — Theorem 2's negative case.
    new_executions:
        Instances executed for the first time during healing (alternative
        path segments) — Theorem 1 condition 4's ``t_k``.
    final_history:
        The healed history in settle order; feed to
        :func:`repro.core.axioms.audit_strict_correctness`.
    actions:
        The linear sequence of undo/redo actions performed, in order.
    dirty_versions:
        Every ``(object, version)`` judged incorrect during the heal; no
        redo record may have read one of these (rule T3.4's semantic
        audit).
    undo_analysis:
        The static Theorem 1 analysis computed before healing.
    """

    malicious: FrozenSet[str] = frozenset()
    undone: Tuple[str, ...] = ()
    redone: Tuple[str, ...] = ()
    kept: Tuple[str, ...] = ()
    abandoned: Tuple[str, ...] = ()
    new_executions: Tuple[str, ...] = ()
    final_history: Tuple[HistoryStep, ...] = ()
    actions: Tuple[Action, ...] = ()
    dirty_versions: FrozenSet[Tuple[str, int]] = frozenset()
    undo_analysis: Optional[UndoAnalysis] = None

    @property
    def touched(self) -> int:
        """Number of recovery operations performed (undos + redos + new)."""
        return len(self.undone) + len(self.redone) + len(self.new_executions)

    @property
    def preserved_work(self) -> int:
        """Instances whose original work survived (the paper's edge over
        checkpoint rollback, which would discard them)."""
        return len(self.kept)

    def summary(self) -> str:
        """One-line human-readable account of the heal."""
        return (
            f"heal: {len(self.malicious)} malicious, "
            f"{len(self.undone)} undone, {len(self.redone)} redone, "
            f"{len(self.abandoned)} abandoned, "
            f"{len(self.new_executions)} new, {len(self.kept)} kept"
        )


class _Walker:
    """Healed-execution cursor for one workflow instance."""

    __slots__ = ("spec", "expected", "visits", "inline_steps")

    def __init__(self, spec: WorkflowSpec) -> None:
        self.spec = spec
        self.expected: Optional[str] = spec.start
        self.visits: Dict[str, int] = {}
        self.inline_steps = 0

    @property
    def finished(self) -> bool:
        return self.expected is None

    def matches(self, record: LogRecord) -> bool:
        """Is ``record`` the next step of the healed execution?"""
        if self.expected is None:
            return False
        instance = record.instance
        return (
            instance.task_id == self.expected
            and instance.number == self.visits.get(instance.task_id, 0) + 1
        )

    def consume(self, task_id: str) -> int:
        """Advance the visit counter for ``task_id``; returns the visit."""
        n = self.visits.get(task_id, 0) + 1
        self.visits[task_id] = n
        return n


class _SettledView:
    """Value of each data object as of the settled healed-history prefix.

    Recovery reads must observe exactly the writes the healed history
    orders before them — never a doomed original write, never a write the
    history orders later.  The view maps each object to the
    ``(version number, value)`` it holds in the settled prefix, starting
    from the epoch *baseline*: the version each object had before the
    epoch's first normal record (by default, the object's initial
    pre-log version).
    """

    def __init__(
        self,
        store: DataStore,
        baseline: Optional[Mapping[str, int]] = None,
    ) -> None:
        self._store = store
        self._current: Dict[str, Tuple[int, Any]] = {}
        if baseline is not None:
            for name, ver in baseline.items():
                self._current[name] = (ver, store.version(name, ver).value)
        else:
            for name in store.names():
                history = store.history(name)
                if history and history[0].writer is None:
                    self._current[name] = (
                        history[0].number, history[0].value
                    )

    def read(self, name: str) -> Tuple[int, Any]:
        """Settled ``(version, value)`` of ``name``."""
        try:
            return self._current[name]
        except KeyError:
            raise RecoveryError(
                f"object {name!r} has no value in the healed history "
                "(it was created only by undone tasks)"
            ) from None

    def has(self, name: str) -> bool:
        """Does ``name`` have a settled value?"""
        return name in self._current

    def set(self, name: str, version: int, value: Any) -> None:
        """Record that the settled prefix now leaves ``name`` at
        ``(version, value)``."""
        self._current[name] = (version, value)

    def items(self) -> Iterable[Tuple[str, Tuple[int, Any]]]:
        """Iterate over settled ``name → (version, value)`` entries."""
        return self._current.items()


class Healer:
    """Repairs a workflow system in place.

    Parameters
    ----------
    store:
        The (attacked) data store; mutated by healing.
    log:
        The system log; undo/redo records are appended, normal records
        are never rewritten.
    specs_by_instance:
        Spec executed by each workflow instance in the log (from
        :attr:`repro.workflow.engine.Engine.specs_by_instance`).
    baseline:
        Optional mapping ``object name → version number``: the trusted
        pre-epoch state of the store.  Defaults to each object's initial
        (pre-log, writer-less) version.  Used by
        :class:`~repro.core.epochs.EpochManager` so that a heal of a
        later epoch measures damage against the previous epoch's healed
        values instead of the original initial data.
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached, each
        undo/redo publishes a :class:`~repro.obs.events.TaskUndone` /
        :class:`~repro.obs.events.TaskRedone` event.  No-op when
        ``None``.
    clock:
        Timestamp source for published events (default
        ``time.monotonic``).
    profiler:
        Optional :class:`~repro.obs.perf.PhaseProfiler`; when attached,
        :meth:`heal` splits its wall time into the ``heal.undo`` /
        ``heal.settle`` / ``heal.reconcile`` sub-phases (the algorithm's
        Phases A–C).  No-op when ``None``.
    """

    def __init__(
        self,
        store: DataStore,
        log: SystemLog,
        specs_by_instance: Mapping[str, WorkflowSpec],
        baseline: Optional[Mapping[str, int]] = None,
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self._store = store
        self._log = log
        self._specs = dict(specs_by_instance)
        self._baseline = dict(baseline) if baseline is not None else None
        self._bus = bus if bus is not None and bus.active else None
        self._clock = clock if clock is not None else _time.monotonic  # lint: allow[DET001] injectable clock; wall time is the live default
        self._profiler = profiler

    def _note_undo(self, uid: str, reason: str = "",
                   disposition: bool = False) -> None:
        if self._bus is not None:
            self._bus.publish(
                TaskUndone(self._clock(), uid=uid, reason=reason,
                           disposition=disposition)
            )

    def _note_redo(self, uid: str, mode: str = "redo") -> None:
        if self._bus is not None:
            self._bus.publish(
                TaskRedone(self._clock(), uid=uid, mode=mode)
            )

    # -- public API ---------------------------------------------------------

    def heal(
        self,
        malicious: Iterable[str],
        forged_runs: Iterable[str] = (),
    ) -> HealReport:
        """Recover from the malicious instances in ``malicious``.

        Parameters
        ----------
        malicious:
            Uids of instances reported malicious (IDS alerts, set ``B``).
            Uids absent from the log are ignored (alerts about
            never-committed tasks).
        forged_runs:
            Workflow-instance ids the attacker forged wholesale; every
            task of such a run is undone and none redone (Axiom 1
            condition 1: "the task should not be executed").
        """
        prof = self._profiler
        log = self._log
        forged = set(forged_runs)

        # ---- Phase A: undo records for the closure -------------------------
        with (prof.phase("heal.undo") if prof is not None
              else nullcontext()):
            analyzer = DependencyAnalyzer(log, self._specs)

            bad: Set[str] = {u for u in malicious if u in log}
            for record in log.normal_records():
                if record.instance.workflow_instance in forged:
                    bad.add(record.uid)
            undo_analysis = find_undo_tasks(analyzer, bad)
            closure: Set[str] = set(undo_analysis.definite)

            dirty: Set[Tuple[str, int]] = set()
            for uid in closure:
                for name, ver in analyzer.record(uid).writes.items():
                    dirty.add((name, ver))

            undone: List[str] = []
            actions: List[Action] = []

            for uid in sorted(
                closure, key=lambda u: analyzer.record(u).seq,
                reverse=True,
            ):
                record = analyzer.record(uid)
                undone.append(uid)
                actions.append(Action.undo(uid))
                self._note_undo(uid, reason="closure")
                log.commit(
                    record.instance,
                    reads={},
                    writes=dict(record.writes),  # versions invalidated
                    kind=RecordKind.UNDO,
                )

        # ---- Phase B: settle pass -------------------------------------------
        with (prof.phase("heal.settle") if prof is not None
              else nullcontext()):
            view = _SettledView(self._store, self._baseline)
            kept: List[str] = []
            redone: List[str] = []
            abandoned: List[str] = []
            new_execs: List[str] = []
            history: List[HistoryStep] = []

            walkers: Dict[str, _Walker] = {}
            remaining: Dict[str, List[LogRecord]] = {}
            for wf in log.workflow_instances():
                remaining[wf] = list(log.trace(wf))
                if wf not in forged:
                    spec = self._specs.get(wf)
                    if spec is None:
                        raise RecoveryError(
                            f"no spec registered for workflow instance "
                            f"{wf!r}"
                        )
                    walkers[wf] = _Walker(spec)

            for record in log.normal_records():
                wf = record.instance.workflow_instance
                remaining[wf].pop(0)
                if wf in forged:
                    self._abandon(record, closure, dirty, undone,
                                  abandoned, actions)
                    continue
                walker = walkers[wf]
                if not walker.matches(record):
                    self._abandon(record, closure, dirty, undone,
                                  abandoned, actions)
                    continue
                if self._must_redo(record, closure, dirty, view):
                    self._redo(record, walker, view, dirty, undone,
                               redone, actions, history)
                    self._run_inline_until_rejoin(
                        wf, walker, remaining[wf], view, new_execs,
                        actions, history,
                    )
                else:
                    self._keep(record, walker, view, kept, history)

            # Drive any diverged walker that outlived its original trace.
            for wf in log.workflow_instances():
                if wf in forged:
                    continue
                walker = walkers[wf]
                while not walker.finished:
                    self._execute_inline(wf, walker, view, new_execs,
                                         actions, history)

        # ---- Phase C: reconcile the physical store ---------------------------
        with (prof.phase("heal.reconcile") if prof is not None
              else nullcontext()):
            self._reconcile(view)

        return HealReport(
            malicious=frozenset(bad),
            undone=tuple(undone),
            redone=tuple(redone),
            kept=tuple(kept),
            abandoned=tuple(abandoned),
            new_executions=tuple(new_execs),
            final_history=tuple(history),
            actions=tuple(actions),
            dirty_versions=frozenset(dirty),
            undo_analysis=undo_analysis,
        )

    # -- internals -------------------------------------------------------------

    def _must_redo(
        self,
        record: LogRecord,
        closure: Set[str],
        dirty: Set[Tuple[str, int]],
        view: _SettledView,
    ) -> bool:
        """Axiom 1 at settle time: dirty or stale reads force a redo."""
        if record.uid in closure:
            return True
        for name, ver in record.reads.items():
            if (name, ver) in dirty:
                return True
            if not view.has(name):
                return True  # healed history has not produced it (yet)
            __, settled_value = view.read(name)
            if settled_value != self._store.version(name, ver).value:
                return True  # upstream redo produced a different value
        return False

    def _keep(
        self,
        record: LogRecord,
        walker: _Walker,
        view: _SettledView,
        kept: List[str],
        history: List[HistoryStep],
    ) -> None:
        """Preserve a validated record; its writes become the settled
        values."""
        store = self._store
        for name, ver in sorted(record.writes.items()):
            view.set(name, ver, store.version(name, ver).value)
        walker.consume(record.instance.task_id)
        walker.expected = record.chosen
        kept.append(record.uid)
        history.append(
            HistoryStep(
                record.instance.workflow_instance,
                record.instance.task_id,
                record.instance.number,
            )
        )

    def _redo(
        self,
        record: LogRecord,
        walker: _Walker,
        view: _SettledView,
        dirty: Set[Tuple[str, int]],
        undone: List[str],
        redone: List[str],
        actions: List[Action],
        history: List[HistoryStep],
    ) -> None:
        """Re-execute a record's genuine code at its settle position."""
        uid = record.uid
        if uid not in set(undone):
            # Stale-read redo (Theorem 1 cond. 4): its old outputs are
            # incorrect even though it was not in the static closure.
            undone.append(uid)
            actions.append(Action.undo(uid))
            self._note_undo(uid, reason="stale-read")
            for name, ver in record.writes.items():
                dirty.add((name, ver))
            self._log.commit(
                record.instance,
                reads={},
                writes=dict(record.writes),
                kind=RecordKind.UNDO,
            )
        instance = record.instance
        chosen = self._execute(instance, view, kind=RecordKind.REDO)
        walker.consume(instance.task_id)
        walker.expected = chosen
        redone.append(uid)
        actions.append(Action.redo(uid))
        self._note_redo(uid)
        history.append(
            HistoryStep(
                instance.workflow_instance, instance.task_id, instance.number
            )
        )

    def _abandon(
        self,
        record: LogRecord,
        closure: Set[str],
        dirty: Set[Tuple[str, int]],
        undone: List[str],
        abandoned: List[str],
        actions: List[Action],
    ) -> None:
        """Undo a record that the healed execution no longer reaches."""
        uid = record.uid
        for name, ver in record.writes.items():
            dirty.add((name, ver))
        already_undone = uid in set(undone)
        if not already_undone:
            undone.append(uid)
            actions.append(Action.undo(uid))
        # Always announce the abandonment, even when Phase A already
        # rolled the record back as part of the closure: abandonment is
        # the uid's *final disposition*, and without it the event stream
        # cannot distinguish "undone, redo still owed" from "undone and
        # legitimately dropped" (the LTLf redo-follow-through property
        # discharges on this note).  When the closure undo already
        # happened, the note is disposition-only so counters do not see
        # a second undo operation.
        self._note_undo(uid, reason="abandoned",
                        disposition=already_undone)
        if uid not in closure:
            # Closure members already carry a Phase-A undo record.
            self._log.commit(
                record.instance,
                reads={},
                writes=dict(record.writes),
                kind=RecordKind.UNDO,
            )
        abandoned.append(uid)

    def _run_inline_until_rejoin(
        self,
        wf: str,
        walker: _Walker,
        remaining: Sequence[LogRecord],
        view: _SettledView,
        new_execs: List[str],
        actions: List[Action],
        history: List[HistoryStep],
    ) -> None:
        """After a divergence, execute new-path tasks until the healed
        path rejoins the original trace (or finishes)."""
        while not walker.finished:
            expected = walker.expected
            next_visit = walker.visits.get(expected, 0) + 1
            rejoins = any(
                r.instance.task_id == expected
                and r.instance.number == next_visit
                for r in remaining
            )
            if rejoins:
                return  # settle it at its own log position
            self._execute_inline(wf, walker, view, new_execs, actions,
                                 history)

    def _execute_inline(
        self,
        wf: str,
        walker: _Walker,
        view: _SettledView,
        new_execs: List[str],
        actions: List[Action],
        history: List[HistoryStep],
    ) -> None:
        """Execute the walker's expected task as a brand-new instance."""
        task_id = walker.expected
        if task_id is None:  # pragma: no cover - guarded by callers
            raise RecoveryError(f"workflow {wf!r} walker already finished")
        walker.inline_steps += 1
        if walker.inline_steps > _MAX_INLINE_STEPS:
            raise RecoveryError(
                f"workflow {wf!r} exceeded {_MAX_INLINE_STEPS} recovery "
                "executions (non-terminating healed path?)"
            )
        number = walker.consume(task_id)
        instance = TaskInstance(wf, task_id, number)
        chosen = self._execute(instance, view, kind=RecordKind.REDO)
        walker.expected = chosen
        new_execs.append(instance.uid)
        actions.append(Action.redo(instance.uid))
        self._note_redo(instance.uid, mode="new")
        history.append(HistoryStep(wf, task_id, number))

    def _execute(
        self,
        instance: TaskInstance,
        view: _SettledView,
        kind: str,
    ) -> Optional[str]:
        """Run an instance's genuine code against the settled view and
        commit it; returns the (re-)decided successor."""
        store = self._store
        wf = instance.workflow_instance
        spec = self._specs[wf]
        task = spec.task(instance.task_id)

        read_versions: Dict[str, int] = {}
        inputs: Dict[str, Any] = {}
        for name in sorted(task.reads):
            ver, value = view.read(name)
            read_versions[name] = ver
            inputs[name] = value
        try:
            outputs = dict(task.run(inputs))
        except ValueError as exc:
            raise ExecutionError(
                f"recovery execution of {instance.uid} failed: {exc}"
            ) from exc
        write_versions: Dict[str, int] = {}
        for name in sorted(outputs):
            new_ver = store.write(
                name, outputs[name], writer=f"redo:{instance.uid}"
            )
            write_versions[name] = new_ver
            view.set(name, new_ver, outputs[name])
        successors = spec.successors(instance.task_id)
        if not successors:
            chosen: Optional[str] = None
        elif len(successors) == 1:
            chosen = successors[0]
        else:
            visible = dict(inputs)
            visible.update(outputs)
            chosen = task.choose(visible)
            if chosen not in successors:
                raise ExecutionError(
                    f"recovery branch {instance.uid} chose non-successor "
                    f"{chosen!r}"
                )
        self._log.commit(
            instance,
            reads=read_versions,
            writes=write_versions,
            chosen=chosen,
            kind=kind,
        )
        return chosen

    def _reconcile(self, view: _SettledView) -> None:
        """Phase C: make the physical store equal the settled view."""
        store = self._store
        settled = dict(view.items())
        for name in list(store.names()):
            latest = store.latest(name)
            if name in settled:
                version, value = settled[name]
                if latest.number != version and latest.value != value:
                    store.write(name, value, writer="heal:reconcile")
            else:
                # Object exists only through undone writes; restore its
                # trusted baseline value if one exists, else mark it
                # removed.
                if self._baseline is not None and name in self._baseline:
                    base = store.version(name, self._baseline[name])
                    if latest.value != base.value:
                        store.write(name, base.value,
                                    writer="heal:reconcile")
                    continue
                history = store.history(name)
                if self._baseline is None and history[0].writer is None:
                    if latest.value != history[0].value:
                        store.write(
                            name, history[0].value, writer="heal:reconcile"
                        )
                elif latest.value is not TOMBSTONE:
                    store.write(name, TOMBSTONE, writer="heal:reconcile")
