"""The recovery analyzer of the Figure 2 architecture.

"The recovery analyzer generates recovery tasks, works out related
partial orders, and puts them in the queue of recovery tasks."  This
module is that component: it consumes IDS alerts and produces
:class:`~repro.core.plan.RecoveryPlan` objects, one unit of recovery
tasks per alert.

The analyzer is purely analytical — it never executes anything and never
mutates the log or store.  Its cost grows with the number of recovery
tasks already outstanding (it must check dependences against all of
them), which is exactly the ``μ_k`` degradation the CTMC models; see
:func:`RecoveryAnalyzer.analysis_cost`.
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from dataclasses import replace
from typing import (
    Callable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.partial_orders import recovery_partial_order
from repro.core.plan import RecoveryPlan
from repro.core.undo_redo import find_redo_tasks, find_undo_tasks
from repro.ids.alerts import Alert
from repro.obs.events import (
    EventBus,
    OrderConstraint,
    RedoDecision,
    ScanStep,
    UndoDecision,
)
from repro.obs.perf import PhaseProfiler, bump
from repro.workflow.dependency import DependencyAnalyzer
from repro.workflow.log import SystemLog
from repro.workflow.spec import WorkflowSpec

__all__ = ["RecoveryAnalyzer"]


class RecoveryAnalyzer:
    """Turns IDS alerts into recovery plans.

    Parameters
    ----------
    log:
        The system log to analyze.
    specs_by_instance:
        Spec executed by each workflow instance in the log.
    bus:
        Optional :class:`repro.obs.events.EventBus`; when attached, each
        :meth:`analyze` call publishes a
        :class:`~repro.obs.events.ScanStep` carrying its dependence-check
        cost.  No-op when ``None``.
    clock:
        Timestamp source for published events (default
        ``time.monotonic``).
    profiler:
        Optional :class:`~repro.obs.perf.PhaseProfiler`; when attached,
        each :meth:`analyze` splits its wall time into the
        ``analyze.closure`` (Theorem 1/2 dependency closure) and
        ``analyze.plan`` (Theorem 3/4 ordering + cross-unit checks)
        sub-phases.  No-op when ``None``.
    """

    def __init__(
        self,
        log: SystemLog,
        specs_by_instance: Mapping[str, WorkflowSpec],
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self._log = log
        self._specs = dict(specs_by_instance)
        self._dep: Optional[DependencyAnalyzer] = None
        self._bus = bus
        self._clock = clock if clock is not None else _time.monotonic  # lint: allow[DET001] injectable clock; wall time is the live default
        self._profiler = profiler

    def _dependency_analyzer(self) -> DependencyAnalyzer:
        if self._dep is None or len(self._dep.log) != len(self._log):
            # ROADMAP item 2(b)'s measured embarrassment: the closure
            # machinery is rebuilt from scratch here — once per analyzer
            # in standalone mode, once per *alert* in manager mode
            # (the log rolls with every epoch).  Counted so the profile
            # names it as a line item instead of burying it in
            # "analyze" time.
            bump("closure_recomputations")
            self._dep = DependencyAnalyzer(self._log, self._specs)
        return self._dep

    def analyze(
        self,
        alerts: Sequence[Union[Alert, str]],
        outstanding: Sequence[RecoveryPlan] = (),
    ) -> RecoveryPlan:
        """Process a batch of alerts into one recovery plan.

        Parameters
        ----------
        alerts:
            IDS alerts (or bare instance uids).  Alerts naming instances
            absent from the log are counted but contribute no actions
            (false alarms about uncommitted tasks).
        outstanding:
            Recovery units already queued but not yet executed.  "The
            analyzer needs to check all dependence relations among
            existing recovery tasks to generate a correct recovery
            scheme after a new IDS alert arrives" (Section V-A): every
            action of the new plan is checked against every outstanding
            action, and conflicts become cross-unit ordering
            constraints.  This check is the linear-in-queue-length work
            behind the CTMC's decreasing ``μ_k``.
        """
        uids: List[str] = []
        for alert in alerts:
            uid = alert.uid if isinstance(alert, Alert) else alert
            uids.append(uid)
        prof = self._profiler
        tracing = self._bus is not None and self._bus.active
        undo_trace: Optional[List[UndoDecision]] = [] if tracing else None
        redo_trace: Optional[List[RedoDecision]] = [] if tracing else None
        order_trace: Optional[List[OrderConstraint]] = \
            [] if tracing else None
        with (prof.phase("analyze.closure") if prof is not None
              else nullcontext()):
            analyzer = self._dependency_analyzer()
            undo_analysis = find_undo_tasks(analyzer, uids,
                                            trace=undo_trace)
            redo_analysis = find_redo_tasks(
                analyzer, undo_analysis.definite, trace=redo_trace
            )
        with (prof.phase("analyze.plan") if prof is not None
              else nullcontext()):
            order = recovery_partial_order(
                analyzer,
                undo_set=undo_analysis.definite,
                redo_set=redo_analysis.definite,
                trace=order_trace,
            )
            order.check_acyclic()
            cross = self._cross_unit_constraints(analyzer, order,
                                                 outstanding)
        if tracing:
            now = self._clock()
            # Provenance first (why each action exists and how it is
            # ordered), then the ScanStep that closes the analysis.
            for decision in undo_trace + redo_trace + order_trace:
                self._bus.publish(replace(decision, time=now))
            for prior, action in cross:
                self._bus.publish(OrderConstraint(
                    now, rule="XU", before=str(prior), after=str(action),
                ))
            outstanding_units = sum(p.units for p in outstanding)
            self._bus.publish(ScanStep(
                now,
                uid=uids[0] if uids else "",
                outstanding_units=outstanding_units,
                cost=self.analysis_cost(outstanding_units),
            ))
        return RecoveryPlan(
            alert_uids=tuple(uids),
            undo_analysis=undo_analysis,
            redo_analysis=redo_analysis,
            order=order,
            units=len(uids),
            cross_unit_constraints=cross,
        )

    def _cross_unit_constraints(
        self,
        analyzer: DependencyAnalyzer,
        order,
        outstanding: Sequence[RecoveryPlan],
    ):
        """Order the new plan's actions after every conflicting action
        of every outstanding unit (FIFO across units)."""
        new_actions = sorted(order.elements())
        if not outstanding or not new_actions:
            return ()
        footprints = {}
        for action in new_actions:
            record = analyzer.record(action.uid)
            footprints[action] = (
                set(record.reads), set(record.writes)
            )
        constraints = []
        for plan in outstanding:
            for prior in sorted(plan.order.elements()):
                try:
                    prior_record = analyzer.record(prior.uid)
                except Exception:
                    continue  # unit from an older log epoch
                p_reads = set(prior_record.reads)
                p_writes = set(prior_record.writes)
                for action in new_actions:
                    reads, writes = footprints[action]
                    conflict = (
                        action.uid == prior.uid
                        or bool(p_writes & reads)
                        or bool(p_reads & writes)
                        or bool(p_writes & writes)
                    )
                    if conflict:
                        constraints.append((prior, action))
        return tuple(constraints)

    def analysis_cost(self, outstanding_units: int) -> int:
        """Dependence checks needed to admit one more alert when
        ``outstanding_units`` recovery units are already queued.

        The analyzer compares the new alert's damage against every
        outstanding recovery task — a linear factor that makes the
        per-alert processing rate fall as the queue grows.  This is the
        paper's motivation for ``μ_k = f(μ_1, k)`` with ``μ_k``
        decreasing in ``k``; the default CTMC family ``μ_k = μ_1 / k``
        corresponds to this linear cost.
        """
        return max(1, outstanding_units) * max(1, len(self._log))
